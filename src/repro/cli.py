"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — enumerate the registered experiments;
* ``run <experiment-id> [--scale smoke|paper]`` — run one experiment and
  print its paper-style report;
* ``compare <workload> [--requests N] [--abtb N]`` — quick base-vs-
  enhanced comparison of one workload;
* ``chaos`` — seeded fault-injection campaign audited by the stale-target
  correctness oracle (exit 0 iff the campaign verdict is OK);
* ``campaign`` — hardened (workload × ABTB) sweep with per-run timeout,
  retry with backoff, and JSON checkpoint/resume.
"""

from __future__ import annotations

import argparse
import sys

from repro import quick_comparison
from repro.errors import ReproError
from repro.experiments import PAPER, SMOKE, RetryPolicy, all_experiments, get, run_campaign
from repro.workloads import ALL_WORKLOADS


def _cmd_list(_args: argparse.Namespace) -> int:
    experiments = all_experiments()
    width = max(len(eid) for eid in experiments)
    for eid, exp in sorted(experiments.items()):
        print(f"{eid:<{width}}  {exp.paper_ref:<18}  {exp.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = PAPER if args.scale == "paper" else SMOKE
    ids = sorted(all_experiments()) if args.experiment == "all" else [args.experiment]
    ok = True
    for eid in ids:
        report = get(eid).run(scale)
        print(report.render())
        print()
        ok = ok and report.all_shapes_hold
    return 0 if ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    result = quick_comparison(args.workload, args.requests, args.abtb)
    base, enh = result["base"], result["enhanced"]
    print(f"workload  : {args.workload}")
    print(f"requests  : {args.requests}   ABTB entries: {args.abtb}")
    print(f"skip rate : {result['skip_rate']:.1%}")
    print(f"speedup   : {result['speedup']:.4f}x")
    print(f"{'counter (PKI)':<24}{'base':>10}{'enhanced':>10}")
    for metric, value in base.table4_row().items():
        print(f"{metric:<24}{value:>10.3f}{enh.table4_row()[metric]:>10.3f}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import CampaignConfig, run_campaign as run_chaos_campaign

    cfg = CampaignConfig(
        seed=args.seed,
        min_faults=args.min_faults,
        rate=args.rate,
        requests=args.requests,
        use_bloom=not args.no_bloom,
        software_invalidate=not args.no_bloom,
        workloads=tuple(args.workloads),
        abtb_entries=args.abtb,
    )
    report = run_chaos_campaign(cfg)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    scale = PAPER if args.scale == "paper" else SMOKE
    result = run_campaign(
        args.workloads,
        scale,
        abtb_sizes=tuple(args.abtb),
        checkpoint_path=args.checkpoint,
        policy=RetryPolicy(timeout_s=args.timeout, max_retries=args.retries),
    )
    print(result.render())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Architectural Support for Dynamic Linking' (ASPLOS 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list'), or 'all'")
    run.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare", help="base vs enhanced on one workload")
    compare.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    compare.add_argument("--requests", type=int, default=80)
    compare.add_argument("--abtb", type=int, default=256)
    compare.set_defaults(func=_cmd_compare)

    chaos = sub.add_parser("chaos", help="fault-injection campaign with correctness oracle")
    chaos.add_argument("--seed", type=int, default=2025)
    chaos.add_argument("--min-faults", type=int, default=1000, help="keep running rounds until this many faults landed")
    chaos.add_argument("--rate", type=float, default=0.01, help="per-event injection probability")
    chaos.add_argument("--requests", type=int, default=24, help="requests per instrumented run")
    chaos.add_argument("--abtb", type=int, default=64)
    chaos.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(ALL_WORKLOADS),
        default=["memcached", "apache"],
    )
    chaos.add_argument(
        "--no-bloom",
        action="store_true",
        help="disable the Bloom filter AND the software invalidation contract: "
        "the campaign then passes only if the §3.4 hazard fires and is detected",
    )
    chaos.set_defaults(func=_cmd_chaos)

    campaign = sub.add_parser("campaign", help="hardened (workload x ABTB) sweep")
    campaign.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(ALL_WORKLOADS),
        default=sorted(ALL_WORKLOADS),
    )
    campaign.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    campaign.add_argument("--abtb", type=int, nargs="+", default=[256])
    campaign.add_argument("--checkpoint", default=None, help="JSON checkpoint path (resume skips completed pairs)")
    campaign.add_argument("--timeout", type=float, default=None, help="per-run timeout in seconds")
    campaign.add_argument("--retries", type=int, default=2, help="retries per pair for transient failures")
    campaign.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Model errors (:class:`ReproError`) surface as a one-line message and
    exit code 1 rather than a traceback; genuine bugs still raise.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
