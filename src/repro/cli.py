"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — enumerate the registered experiments (``--json`` for tools);
* ``run <experiment-id> [--scale smoke|paper]`` — run one experiment and
  print its paper-style report;
* ``compare <workload> [--requests N] [--abtb N]`` — quick base-vs-
  enhanced comparison of one workload;
* ``profile <workload>`` — enhanced-config run with the hot-trampoline
  profiler: top-N call-site table plus a Chrome/Perfetto trace;
* ``chaos`` — seeded fault-injection campaign audited by the stale-target
  correctness oracle (exit 0 iff the campaign verdict is OK);
* ``campaign`` — hardened (workload × ABTB) sweep with per-run timeout,
  retry with backoff, and integrity-checked checkpoint/resume; with
  ``--supervise`` the shards run under the self-healing supervisor
  (heartbeats, hang detection, requeue, quarantine, salvage) and the
  command exits 0 when complete, 3 when complete-but-degraded
  (quarantined shards, partial manifest), 1 on failure;
* ``sweep run|resume|report`` — declarative design-space exploration
  (see ``docs/EXPERIMENTS.md``): expand a JSON axis matrix over
  workloads × ABTB geometry × Bloom × front-end predictors, execute it
  sharded with checkpoint resume and shared trace/machine caches, and
  emit Pareto-frontier / sensitivity / best-point artifacts plus a
  self-contained HTML report under ``<out>/analysis/``;
* ``difftest`` — differential correctness matrix: the batched backend
  must match the reference interpreter counter-for-counter on every
  selected workload profile, base and enhanced (exit 0 iff clean);
* ``incidents`` — validate and summarise a JSONL incident log produced
  by ``campaign --incidents-out`` (exit 0 iff schema-valid and every
  ``--require`` kind is present);
* ``dash --from DIR`` — render the zero-dependency campaign dashboard
  offline from exported artifacts (``metrics.jsonl``, ``incidents.jsonl``,
  ``events.jsonl``, ``profile.json``, ``trace.json``) — the same page a
  running manager serves live at ``GET /dash``;
* ``serve`` / ``worker`` / ``submit`` — the fault-tolerant campaign
  *service* (see ``docs/SERVICE.md``): ``serve`` runs the manager (REST
  API, lease-based shard queue, write-ahead journal, content-addressed
  result store), ``worker`` pulls and executes shard leases against a
  manager, and ``submit`` submits a campaign and waits, with the same
  0/3/1 exit-code convention as ``campaign``.  ``serve --follow URL``
  runs a *standby* manager instead: it tails the leader's journal over
  the replication endpoints and promotes itself (bumped fencing epoch)
  when the leader is lost.  ``worker --manager`` accepts several URLs —
  an ordered failover list.  SIGTERM is graceful everywhere: the manager
  snapshots its journal, workers drain the shard in hand, ``campaign``
  flushes its checkpoint and exits 130;
* ``drill`` — the fleet-level HA chaos drill (see
  ``docs/SERVICE.md``): leader kill, standby promotion, network fault
  injection and partition windows over a live campaign, asserting the
  result counter-identical to a serial run (exit 0/3/1);
* ``service gc`` — campaign-aware result-store retention: evict stored
  shard results by age/count, never touching one referenced by a live
  campaign.

``compare`` and ``campaign`` accept ``--backend {reference,batched}`` to
pick the simulation engine; the batched backend is the vectorized hot
path whose equivalence ``difftest`` enforces.

``run``, ``compare``, ``profile``, ``chaos`` and ``campaign`` all accept
the observability flags ``--trace-out``, ``--metrics-out`` and
``--sample-every`` (see ``docs/OBSERVABILITY.md``).  ``run`` records
per-experiment spans and shape-check counters; the simulator-level
commands additionally capture linker/engine/chaos instants, perf-counter
time series, and reconstructed request spans on the simulated clock.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time

from repro import __version__, quick_comparison
from repro.errors import ReproError
from repro.experiments import PAPER, SMOKE, RetryPolicy, all_experiments, get, run_campaign
from repro.obs import Observability
from repro.workloads import ALL_WORKLOADS


def _report_exports(obs: Observability | None) -> None:
    """Print where observability artefacts landed (stderr, so stdout
    stays parseable)."""
    if obs is None:
        return
    for path in obs.export():
        print(f"observability: wrote {path}", file=sys.stderr)


def _cmd_list(args: argparse.Namespace) -> int:
    experiments = all_experiments()
    if args.json:
        payload = {
            eid: {"paper_ref": exp.paper_ref, "description": exp.description}
            for eid, exp in sorted(experiments.items())
        }
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(eid) for eid in experiments)
    for eid, exp in sorted(experiments.items()):
        print(f"{eid:<{width}}  {exp.paper_ref:<18}  {exp.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = PAPER if args.scale == "paper" else SMOKE
    ids = sorted(all_experiments()) if args.experiment == "all" else [args.experiment]
    obs = Observability.from_flags(args)
    ok = True
    for eid in ids:
        if obs is not None and obs.tracer is not None:
            with obs.tracer.span(f"experiment {eid}", category="experiment"):
                report = get(eid).run(scale)
        else:
            report = get(eid).run(scale)
        print(report.render())
        print()
        held = report.all_shapes_hold
        if obs is not None and obs.metrics is not None:
            key = "experiments.shapes_held" if held else "experiments.shapes_failed"
            obs.metrics.counter(key).inc()
        ok = ok and held
    _report_exports(obs)
    return 0 if ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    obs = Observability.from_flags(args)
    result = quick_comparison(
        args.workload, args.requests, args.abtb, obs=obs, backend=args.backend
    )
    base, enh = result["base"], result["enhanced"]
    print(f"workload  : {args.workload}")
    print(f"requests  : {args.requests}   ABTB entries: {args.abtb}")
    print(f"skip rate : {result['skip_rate']:.1%}")
    print(f"speedup   : {result['speedup']:.4f}x")
    print(f"{'counter (PKI)':<24}{'base':>10}{'enhanced':>10}")
    for metric, value in base.table4_row().items():
        print(f"{metric:<24}{value:>10.3f}{enh.table4_row()[metric]:>10.3f}")
    _report_exports(obs)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core import MechanismConfig, TrampolineSkipMechanism
    from repro.uarch import CPU
    from repro.workloads import Workload

    trace_out = args.trace_out or f"{args.workload}.profile.trace.json"
    obs = Observability(
        trace_out=trace_out,
        metrics_out=args.metrics_out,
        sample_every=args.sample_every,
        profile=True,
    )
    cfg = ALL_WORKLOADS[args.workload].config()
    workload = Workload(cfg)
    obs.attach_workload(workload)
    mechanism = TrampolineSkipMechanism(MechanismConfig(abtb_entries=args.abtb))
    cpu = CPU(mechanism=mechanism, hooks=obs.hooks())
    stream = obs.instrument(workload.trace(args.requests), cpu, args.workload)
    cpu.run(stream)
    obs.finish_run(cpu, args.workload)
    counters = cpu.finalize()

    print(f"workload  : {args.workload}   requests: {args.requests}   "
          f"ABTB entries: {args.abtb}")
    print()
    print(obs.profiler.table(top=args.top).render())
    print()
    for line in obs.profiler.summary_lines(counters):
        print(line)
    if args.profile_out:
        obs.profiler.write_json(args.profile_out, top=max(args.top, 20))
        print(f"observability: wrote {args.profile_out}", file=sys.stderr)
    _report_exports(obs)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import CampaignConfig, run_campaign as run_chaos_campaign

    cfg = CampaignConfig(
        seed=args.seed,
        min_faults=args.min_faults,
        rate=args.rate,
        requests=args.requests,
        use_bloom=not args.no_bloom,
        software_invalidate=not args.no_bloom,
        workloads=tuple(args.workloads),
        abtb_entries=args.abtb,
    )
    obs = Observability.from_flags(args)
    report = run_chaos_campaign(cfg, obs=obs)
    print(report.render())
    _report_exports(obs)
    return 0 if report.ok else 1


def _parse_fault_spec(spec: str | None) -> tuple[str, int]:
    """``MATCH[:N]`` → (match, attempts); N defaults to 1."""
    if not spec:
        return "", 0
    match, sep, count = spec.rpartition(":")
    if sep and count.isdigit():
        return match, int(count)
    return spec, 1


def _install_sigterm_handler() -> None:
    """Make SIGTERM behave like Ctrl-C so one KeyboardInterrupt path
    covers both: flush checkpoints, record the shutdown incident, exit
    130 — never die mid-write.  No-op outside the main thread (tests)."""

    def raise_interrupt(signum, frame):  # noqa: ARG001
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, raise_interrupt)
    except ValueError:  # not the main thread
        pass


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.resilience import (
        FaultPlan,
        IncidentRecorder,
        SupervisorPolicy,
        WatchdogPolicy,
    )

    scale = PAPER if args.scale == "paper" else SMOKE
    obs = Observability.from_flags(args)

    want_recorder = bool(
        args.supervise or args.incidents_out or args.manifest or args.watchdog_every
    )
    recorder = None
    if want_recorder:
        recorder = obs.incident_recorder() if obs is not None else IncidentRecorder()

    kill_match, kill_attempts = _parse_fault_spec(args.chaos_kill)
    hang_match, hang_attempts = _parse_fault_spec(args.chaos_hang)
    fault_plan = None
    if kill_match or hang_match or args.chaos_diverge:
        fault_plan = FaultPlan(
            kill_match=kill_match,
            kill_attempts=kill_attempts,
            kill_after_spill=args.chaos_kill_after_spill,
            hang_match=hang_match,
            hang_attempts=hang_attempts,
            diverge_match=args.chaos_diverge or "",
        )
    watchdog = (
        WatchdogPolicy(check_every=args.watchdog_every) if args.watchdog_every else None
    )
    supervisor_policy = None
    if args.supervise:
        supervisor_policy = SupervisorPolicy(
            shard_deadline_s=args.shard_deadline,
            max_shard_failures=args.max_shard_failures,
        )

    _install_sigterm_handler()
    try:
        result = run_campaign(
            args.workloads,
            scale,
            abtb_sizes=tuple(args.abtb),
            checkpoint_path=args.checkpoint,
            policy=RetryPolicy(timeout_s=args.timeout, max_retries=args.retries),
            obs=obs,
            jobs=args.jobs,
            machine_cache_dir=args.machine_cache,
            trace_cache_dir=args.trace_cache,
            backend=args.backend,
            recorder=recorder,
            supervise=args.supervise,
            supervisor_policy=supervisor_policy,
            fault_plan=fault_plan,
            manifest_path=args.manifest,
            watchdog=watchdog,
        )
    except KeyboardInterrupt:
        # run_campaign has already flushed the checkpoint and recorded
        # the shutdown incident; finish the exports it can't know about.
        if recorder is not None and args.incidents_out:
            recorder.write_jsonl(args.incidents_out)
        _report_exports(obs)
        print(
            "campaign: interrupted — checkpoint flushed, resume to continue",
            file=sys.stderr,
        )
        return 130
    print(result.render())
    if recorder is not None and args.incidents_out:
        recorder.write_jsonl(args.incidents_out)
        print(
            f"incidents: wrote {args.incidents_out} ({len(recorder)} record(s))",
            file=sys.stderr,
        )
    if args.manifest:
        print(f"manifest: wrote {args.manifest}", file=sys.stderr)
    _report_exports(obs)
    if result.failed:
        return 1
    if result.degraded:
        return 3  # completed, but quarantined shards are missing
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.resilience import IncidentRecorder, SupervisorPolicy
    from repro.service.api import ManagerServer
    from repro.service.manager import CampaignManager
    from repro.service.standby import StandbyManager

    _install_sigterm_handler()
    recorder = IncidentRecorder()
    policy = SupervisorPolicy(
        shard_deadline_s=args.lease_ttl,
        max_shard_failures=args.max_shard_failures,
    )
    try:
        if args.follow:
            standby = StandbyManager(
                args.data_dir,
                leader_url=args.follow,
                policy=policy,
                recorder=recorder,
                poll_interval_s=args.follow_poll,
                misses_to_promote=args.misses_to_promote,
                snapshot_every=args.snapshot_every,
            )
            print(
                f"serve: standby following {args.follow} "
                f"(data: {args.data_dir}; promotes after "
                f"{args.misses_to_promote} missed pull(s))",
                flush=True,
            )
            manager = standby.run()
            if manager is None:  # stopped before the leader was lost
                return 0
            print(
                f"serve: PROMOTED to leader at epoch {manager.epoch} "
                f"({len(manager.campaigns)} campaign(s) recovered)",
                flush=True,
            )
        else:
            manager = CampaignManager(
                args.data_dir,
                policy=policy,
                recorder=recorder,
                snapshot_every=args.snapshot_every,
            )
        server = ManagerServer(
            manager, host=args.host, port=args.port, verbose=args.verbose
        )
    except KeyboardInterrupt:
        print("serve: shutting down gracefully", file=sys.stderr)
        return 0
    try:
        server.start()
        print(
            f"serve: manager listening on {server.url} "
            f"(data: {args.data_dir}, lease TTL {args.lease_ttl:.1f}s, "
            f"epoch {manager.epoch})",
            flush=True,
        )
        server.serve_wait()
        return 0
    except KeyboardInterrupt:
        print("serve: shutting down gracefully", file=sys.stderr)
        return 0
    finally:
        server.stop(graceful=True)
        if args.incidents_out:
            recorder.write_jsonl(args.incidents_out)
            print(
                f"incidents: wrote {args.incidents_out} ({len(recorder)} record(s))",
                file=sys.stderr,
            )


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import ManagerClient, WorkerAgent, WorkerChaos

    stop = threading.Event()

    def drain(signum, frame):  # noqa: ARG001
        # Graceful drain: finish + deliver the shard in hand, then exit.
        stop.set()

    try:
        signal.signal(signal.SIGTERM, drain)
    except ValueError:
        pass
    chaos = None
    if args.chaos_kill_after or args.chaos_hang_after:
        chaos = WorkerChaos(
            kill_after_leases=args.chaos_kill_after,
            hang_after_leases=args.chaos_hang_after,
        )
    agent = WorkerAgent(
        ManagerClient(args.manager),
        name=args.name,
        poll_interval_s=args.poll_interval,
        max_idle_s=args.max_idle,
        machine_cache_dir=args.machine_cache,
        trace_cache_dir=args.trace_cache,
        chaos=chaos,
        stop_event=stop,
    )
    stats = agent.run()
    print(
        f"worker {stats['worker_id']}: {stats['shards_done']} shard(s) done, "
        f"{stats['shards_failed']} failed, {stats['leases_lost']} lease(s) lost"
        + (" (manager went away; drained)" if stats.get("manager_lost") else "")
    )
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    from repro.chaos.net import NetFaultPolicy
    from repro.service.drill import DrillSpec, run_drill

    _install_sigterm_handler()
    net = None
    if args.net_off:
        net = NetFaultPolicy(seed=args.seed)  # all probabilities zero
    spec = DrillSpec(
        workloads=tuple(args.workloads),
        abtb_sizes=tuple(args.abtb),
        scale=args.scale,
        backend=args.backend,
        seed=args.seed,
        workers=args.workers,
        vanish_worker_lease=0 if args.no_vanish else 1,
        partition_window_s=args.partition_window,
        net=net,
        shard_deadline_s=args.lease_ttl,
        deadline_s=args.deadline,
    )
    try:
        report = run_drill(
            spec,
            args.root,
            log=(lambda line: print(f"drill: {line}", flush=True))
            if args.verbose
            else (lambda line: None),
        )
    except KeyboardInterrupt:
        print("drill: interrupted", file=sys.stderr)
        return 130
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
        print(f"drill: wrote report {args.report_out}", file=sys.stderr)
    return report.exit_code


def _cmd_service_gc(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.resilience import IncidentRecorder
    from repro.service.gc import ResultGcPolicy, collect_garbage

    try:
        policy = ResultGcPolicy(
            max_age_s=args.max_age_s,
            max_count=args.max_count,
            dry_run=args.dry_run,
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recorder = IncidentRecorder()
    report = collect_garbage(args.data_dir, policy, recorder=recorder)
    verb = "would evict" if report.dry_run else "evicted"
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"gc: {report.examined} result(s) examined, "
            f"{report.protected} protected by live campaigns, "
            f"{verb} {len(report.evicted)} "
            f"({report.reclaimed_bytes} byte(s))"
        )
        for key in report.evicted:
            print(f"  {verb} {key}")
    if args.incidents_out:
        recorder.write_jsonl(args.incidents_out)
        print(
            f"incidents: wrote {args.incidents_out} ({len(recorder)} record(s))",
            file=sys.stderr,
        )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.experiments.runner import CampaignResult
    from repro.service.worker import ManagerClient

    _install_sigterm_handler()
    client = ManagerClient(args.manager)
    spec = {
        "workloads": args.workloads,
        "abtb_sizes": args.abtb,
        "scale": args.scale,
        "backend": args.backend,
        "seed": args.seed,
        "timeout_s": args.timeout,
        "max_retries": args.retries,
        "watchdog_every": args.watchdog_every,
    }
    status, response = client.post("/campaigns", spec)
    if status != 201:
        print(f"error: submit rejected ({status}): {response.get('error')}", file=sys.stderr)
        return 1
    campaign_id = response["campaign_id"]
    print(f"submit: campaign {campaign_id} accepted", flush=True)
    if not args.wait:
        return 0

    last_counts = None
    state = "running"
    while True:
        status, body = client.get(f"/campaigns/{campaign_id}")
        if status == 200:
            state = body.get("state", "running")
            counts = body.get("shards", {})
            if counts != last_counts:
                last_counts = counts
                print(
                    f"submit: {campaign_id} {state} — "
                    f"{counts.get('completed', 0)}/{counts.get('total', 0)} done, "
                    f"{counts.get('leased', 0)} leased, "
                    f"{counts.get('quarantined', 0)} quarantined",
                    flush=True,
                )
            if state in ("complete", "degraded", "cancelled"):
                break
        time.sleep(args.poll_interval)

    if args.incidents_out:
        _, text = client.get_text("/incidents")
        with open(args.incidents_out, "w") as fh:
            fh.write(text)
        print(f"incidents: wrote {args.incidents_out}", file=sys.stderr)
    if state == "cancelled":
        print(f"submit: campaign {campaign_id} was cancelled", file=sys.stderr)
        return 1
    status, body = client.get(f"/campaigns/{campaign_id}/result")
    if status != 200:
        print(f"error: result unavailable ({status}): {body.get('error')}", file=sys.stderr)
        return 1
    result = CampaignResult(
        completed=body["completed"],
        failed=body["failed"],
        attempts=body["attempts"],
        resumed=body["resumed"],
        quarantined=body["quarantined"],
    )
    print(result.render())
    if result.failed:
        return 1
    if result.degraded:
        return 3
    return 0


def _cmd_incidents(args: argparse.Namespace) -> int:
    from repro.resilience import validate_incident_log
    from repro.resilience.incidents import load_incident_log

    problems = validate_incident_log(args.path)
    if problems:
        for problem in problems:
            print(f"{args.path}: {problem}", file=sys.stderr)
        print(f"incidents: INVALID ({len(problems)} problem(s))")
        return 1
    incidents = load_incident_log(args.path)
    counts: dict[str, int] = {}
    for incident in incidents:
        counts[incident.kind] = counts.get(incident.kind, 0) + 1
    if args.json:
        print(json.dumps({"total": len(incidents), "counts": counts}, indent=2, sort_keys=True))
    else:
        print(f"incidents: {len(incidents)} record(s), schema valid")
        for kind, count in sorted(counts.items()):
            print(f"  {kind:<28} {count}")
        if args.verbose:
            for incident in incidents:
                print(f"  [{incident.severity}] {incident.kind}: {incident.message}")
    missing = [kind for kind in args.require if kind not in counts]
    if missing:
        print(f"incidents: required kind(s) missing: {', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import load_snapshot_from_dir, write_dashboard

    try:
        snapshot = load_snapshot_from_dir(args.artifacts)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = write_dashboard(snapshot, args.out)
    print(
        f"dash: wrote {out} — {len(snapshot['series'])} series, "
        f"{len(snapshot['events'])} event(s), "
        f"{len(snapshot['incidents'])} incident(s)"
        + (", trampoline profile" if snapshot["profile"] else "")
    )
    return 0


def _cmd_difftest(args: argparse.Namespace) -> int:
    from repro.difftest import run_matrix

    reports = run_matrix(
        workloads=args.workloads,
        abtb_sizes=tuple(args.abtb),
        requests=args.requests,
        seed=args.seed,
        batch_events=args.batch_events,
    )
    ok = True
    for report in reports:
        print(report.render())
        ok = ok and report.ok
    diverged = sum(not r.ok for r in reports)
    print(
        f"difftest: {len(reports) - diverged}/{len(reports)} profile(s) identical"
        + (f", {diverged} DIVERGED" if diverged else "")
    )
    return 0 if ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.runner import RetryPolicy as _RetryPolicy
    from repro.sweep import DEFAULT_POLICY, SweepSpec, report_sweep, run_sweep

    if args.action == "report":
        result = report_sweep(args.out)
        print(result.render())
        return 0

    spec = None
    if args.action == "run":
        spec = SweepSpec.load(args.spec)
    policy = DEFAULT_POLICY
    if args.timeout is not None or args.retries is not None:
        policy = _RetryPolicy(
            timeout_s=args.timeout,
            max_retries=args.retries if args.retries is not None else 2,
            backoff_max_s=DEFAULT_POLICY.backoff_max_s,
            jitter=DEFAULT_POLICY.jitter,
        )
    _install_sigterm_handler()
    try:
        result = run_sweep(spec, args.out, jobs=args.jobs, policy=policy)
    except KeyboardInterrupt:
        print(
            "sweep: interrupted — checkpoint flushed, "
            "'repro sweep resume' to continue",
            file=sys.stderr,
        )
        return 130
    print(result.render())
    if result.campaign.failed:
        return 1
    if result.campaign.degraded:
        return 3
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.uarch.machine import MachineState

    if args.action == "save":
        from repro.core import MechanismConfig, TrampolineSkipMechanism
        from repro.trace.engine import TraceCursor
        from repro.uarch import CPU
        from repro.workloads import Workload

        cfg = ALL_WORKLOADS[args.workload].config()
        workload = Workload(cfg)
        mechanism = None
        if args.enhanced:
            mechanism = TrampolineSkipMechanism(MechanismConfig(abtb_entries=args.abtb))
        cpu = CPU(mechanism=mechanism)
        cursor = TraceCursor(workload.startup_trace())
        cpu.run(cursor)
        workload.reset_usage_stats()
        if args.requests:
            cursor = TraceCursor(
                workload.trace(args.requests, include_marks=False),
                base_index=cursor.index,
            )
            cpu.run(cursor)
        cpu.finalize()
        state = MachineState.capture(
            cpu,
            trace_position=cursor.index,
            meta={
                "workload": args.workload,
                "warmup_requests": args.requests,
                "label": "enhanced" if args.enhanced else "base",
            },
        )
        state.save(args.out)
        print(f"checkpoint: wrote {args.out} "
              f"({cpu.counters.instructions} instructions simulated)")
        return 0

    state = MachineState.load(args.path)
    if args.action == "verify":
        state.validate_roundtrip()  # raises ReproError on divergence
        print(f"checkpoint: {args.path} OK "
              f"(version {state.version}, round-trip validated)")
        return 0

    # info
    counters = state.cpu["components"].get("counters", {})
    print(f"path           : {args.path}")
    print(f"version        : {state.version}")
    print(f"trace position : {state.trace_position}")
    print(f"mechanism      : "
          f"{'none' if state.mechanism_config is None else state.mechanism_config}")
    print(f"components     : {', '.join(sorted(state.cpu['components']))}")
    print(f"instructions   : {counters.get('instructions', '?')}")
    print(f"cycles         : {state.cpu.get('cycles', '?')}")
    for key, value in sorted(state.meta.items()):
        print(f"meta.{key:<10}: {value}")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser, sample_default: int = 0) -> None:
    """The shared observability flag group (off by default: all three
    unset keeps the simulator on its null-sink fast path)."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON (open in Perfetto / chrome://tracing)",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write metric series (JSON lines, or Prometheus text if PATH ends in .prom)",
    )
    group.add_argument(
        "--sample-every",
        type=int,
        default=sample_default,
        metavar="N",
        help="snapshot perf-counter deltas every N instructions (0 disables sampling)"
        + (f" [default: {sample_default}]" if sample_default else ""),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Architectural Support for Dynamic Linking' (ASPLOS 2015)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list registered experiments")
    list_p.add_argument("--json", action="store_true", help="machine-readable output")
    list_p.set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list'), or 'all'")
    run.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    _add_obs_flags(run)
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare", help="base vs enhanced on one workload")
    compare.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    compare.add_argument("--requests", type=int, default=80)
    compare.add_argument("--abtb", type=int, default=256)
    compare.add_argument(
        "--backend", choices=("reference", "batched"), default="reference",
        help="simulation engine (batched = vectorized hot path; "
        "identical counters, enforced by 'difftest')",
    )
    _add_obs_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    profile = sub.add_parser(
        "profile",
        help="hot-trampoline profile of one workload (enhanced config)",
    )
    profile.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    profile.add_argument("--requests", type=int, default=80)
    profile.add_argument("--abtb", type=int, default=256)
    profile.add_argument("--top", type=int, default=10, help="call sites to show")
    profile.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="write the top-site profile as JSON (feeds 'dash --from')",
    )
    _add_obs_flags(profile, sample_default=2000)
    profile.set_defaults(func=_cmd_profile)

    chaos = sub.add_parser("chaos", help="fault-injection campaign with correctness oracle")
    chaos.add_argument("--seed", type=int, default=2025)
    chaos.add_argument("--min-faults", type=int, default=1000, help="keep running rounds until this many faults landed")
    chaos.add_argument("--rate", type=float, default=0.01, help="per-event injection probability")
    chaos.add_argument("--requests", type=int, default=24, help="requests per instrumented run")
    chaos.add_argument("--abtb", type=int, default=64)
    chaos.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(ALL_WORKLOADS),
        default=["memcached", "apache"],
    )
    chaos.add_argument(
        "--no-bloom",
        action="store_true",
        help="disable the Bloom filter AND the software invalidation contract: "
        "the campaign then passes only if the §3.4 hazard fires and is detected",
    )
    _add_obs_flags(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    campaign = sub.add_parser("campaign", help="hardened (workload x ABTB) sweep")
    campaign.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(ALL_WORKLOADS),
        default=sorted(ALL_WORKLOADS),
    )
    campaign.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    campaign.add_argument("--abtb", type=int, nargs="+", default=[256])
    campaign.add_argument("--checkpoint", default=None, help="JSON checkpoint path (resume skips completed pairs)")
    campaign.add_argument("--timeout", type=float, default=None, help="per-run timeout in seconds")
    campaign.add_argument("--retries", type=int, default=2, help="retries per pair for transient failures")
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard pairs over N worker processes (results are byte-identical to serial)",
    )
    campaign.add_argument(
        "--machine-cache",
        default=None,
        metavar="DIR",
        help="directory of warm-machine checkpoints; repeat runs (and the shared "
        "base machine of an ABTB sweep) restore warm-up instead of re-simulating",
    )
    campaign.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="content-addressed trace store; with --backend batched each workload's "
        "trace is generated and serialised once, then loaded as structured-array "
        "batches by every pair, shard and repeat run",
    )
    campaign.add_argument(
        "--backend", choices=("reference", "batched"), default="reference",
        help="simulation engine for every pair, serial or sharded",
    )
    resilience = campaign.add_argument_group("resilience")
    resilience.add_argument(
        "--supervise", action="store_true",
        help="run shards under the self-healing supervisor: heartbeats, hang "
        "detection, kill-and-requeue with backoff, quarantine, spill salvage "
        "(exit 3 = completed degraded)",
    )
    resilience.add_argument(
        "--shard-deadline", type=float, default=120.0, metavar="SECONDS",
        help="heartbeat silence after which a supervised worker is declared "
        "hung and killed [default: 120]",
    )
    resilience.add_argument(
        "--max-shard-failures", type=int, default=3, metavar="N",
        help="process-level failures before a shard is quarantined [default: 3]",
    )
    resilience.add_argument(
        "--incidents-out", default=None, metavar="PATH",
        help="write the campaign's incident log as JSON lines (see 'incidents')",
    )
    resilience.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write an integrity-checked end-of-campaign manifest "
        "(partial results, quarantined shards, incident counts)",
    )
    resilience.add_argument(
        "--watchdog-every", type=int, default=0, metavar="N",
        help="with --backend batched: cross-check against the reference "
        "interpreter every N sync points; on divergence, record an incident "
        "and fall back to the reference backend (0 disables)",
    )
    resilience.add_argument(
        "--chaos-kill", default=None, metavar="MATCH[:N]",
        help="fault injection (tests/CI): SIGKILL the worker of shards whose "
        "key contains MATCH on their first N attempts [default N: 1]",
    )
    resilience.add_argument(
        "--chaos-kill-after-spill", action="store_true",
        help="with --chaos-kill: kill after the spill checkpoint is written, "
        "exercising salvage instead of requeue",
    )
    resilience.add_argument(
        "--chaos-hang", default=None, metavar="MATCH[:N]",
        help="fault injection: wedge the worker of matching shards "
        "(no heartbeats) on their first N attempts",
    )
    resilience.add_argument(
        "--chaos-diverge", default=None, metavar="MATCH",
        help="fault injection: force a watchdog divergence on matching shards "
        "(requires --backend batched and --watchdog-every)",
    )
    _add_obs_flags(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    difftest = sub.add_parser(
        "difftest",
        help="prove the batched backend matches the reference counter-for-counter",
    )
    difftest.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(ALL_WORKLOADS),
        default=sorted(ALL_WORKLOADS),
    )
    difftest.add_argument(
        "--abtb", type=int, nargs="+", default=[64, 256],
        help="enhanced-machine ABTB sizes (base is always included)",
    )
    difftest.add_argument("--requests", type=int, default=12, help="requests per profile")
    difftest.add_argument("--seed", type=int, default=None, help="workload seed override")
    difftest.add_argument(
        "--batch-events", type=int, default=4096,
        help="batch size of the fast backend under test",
    )
    difftest.set_defaults(func=_cmd_difftest)

    sweep = sub.add_parser(
        "sweep",
        help="declarative design-space sweep: expand an axis matrix, run it "
        "sharded with checkpoint resume, emit Pareto/sensitivity analysis",
    )
    sweep_sub = sweep.add_subparsers(dest="action", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="execute a sweep spec into an output directory"
    )
    sweep_run.add_argument(
        "--spec", required=True, metavar="PATH",
        help="JSON sweep spec (axes over workloads / ABTB / Bloom / BTB / gshare)",
    )
    sweep_run.add_argument(
        "--out", required=True, metavar="DIR",
        help="sweep output directory (spec, checkpoint, caches, analysis/)",
    )
    sweep_run.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep_run.add_argument(
        "--timeout", type=float, default=None, help="per-point timeout in seconds"
    )
    sweep_run.add_argument(
        "--retries", type=int, default=None,
        help="retries per point for transient failures [default: 2]",
    )
    sweep_run.set_defaults(func=_cmd_sweep)
    sweep_resume = sweep_sub.add_parser(
        "resume",
        help="resume a sweep from its directory (completed points are skipped)",
    )
    sweep_resume.add_argument("--out", required=True, metavar="DIR")
    sweep_resume.add_argument("--jobs", type=int, default=1)
    sweep_resume.add_argument("--timeout", type=float, default=None)
    sweep_resume.add_argument("--retries", type=int, default=None)
    sweep_resume.set_defaults(func=_cmd_sweep)
    sweep_report = sweep_sub.add_parser(
        "report",
        help="recompute analysis/ from the checkpoint without executing",
    )
    sweep_report.add_argument("--out", required=True, metavar="DIR")
    sweep_report.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the campaign-service manager (REST API + lease queue + "
        "durable result store; crash-recoverable via its write-ahead journal)",
    )
    serve.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="service state root: journal, snapshot and result store",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8023)
    serve.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="shard lease deadline; a worker silent this long forfeits the "
        "shard (requeued with backoff) [default: 30]",
    )
    serve.add_argument(
        "--max-shard-failures", type=int, default=3, metavar="N",
        help="lease-level failures before a shard is quarantined [default: 3]",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=50, metavar="N",
        help="journal appends between automatic snapshots [default: 50]",
    )
    serve.add_argument(
        "--incidents-out", default=None, metavar="PATH",
        help="write the manager's incident log as JSON lines on shutdown",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--follow", default=None, metavar="URL",
        help="run as a standby: tail URL's journal via the replication "
        "endpoints, then promote (bumped fencing epoch) and serve on "
        "--port when the leader is lost",
    )
    serve.add_argument(
        "--follow-poll", type=float, default=0.5, metavar="SECONDS",
        help="replication pull interval in standby mode [default: 0.5]",
    )
    serve.add_argument(
        "--misses-to-promote", type=int, default=6, metavar="N",
        help="consecutive failed replication pulls before the standby "
        "promotes itself [default: 6]",
    )
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="run a campaign-service worker: pull shard leases from a "
        "manager, execute, heartbeat, report (SIGTERM drains gracefully)",
    )
    worker.add_argument(
        "--manager", nargs="+", default=["http://127.0.0.1:8023"], metavar="URL",
        help="manager base URL(s); several form an ordered failover list "
        "(leader first, standby after) [default: http://127.0.0.1:8023]",
    )
    worker.add_argument("--name", default="", help="worker name (diagnostics)")
    worker.add_argument(
        "--poll-interval", type=float, default=0.25, metavar="SECONDS",
        help="idle sleep between lease attempts [default: 0.25]",
    )
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this long with no work anywhere (default: run until stopped)",
    )
    worker.add_argument(
        "--machine-cache", default=None, metavar="DIR",
        help="warm-machine checkpoint cache (shared with serial campaigns)",
    )
    worker.add_argument(
        "--trace-cache", default=None, metavar="DIR",
        help="content-addressed trace store (shared with serial campaigns; "
        "effective with --backend batched)",
    )
    worker.add_argument(
        "--chaos-kill-after", type=int, default=0, metavar="N",
        help="fault injection (drills/CI): SIGKILL self on the Nth lease grant",
    )
    worker.add_argument(
        "--chaos-hang-after", type=int, default=0, metavar="N",
        help="fault injection: wedge (hold the lease, stop renewing) on the "
        "Nth lease grant",
    )
    worker.set_defaults(func=_cmd_worker)

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a running manager and (by default) wait; "
        "exit 0 complete / 3 degraded / 1 failed",
    )
    submit.add_argument(
        "--manager", nargs="+", default=["http://127.0.0.1:8023"], metavar="URL",
        help="manager base URL(s); several form an ordered failover list "
        "(leader first, standby after) [default: http://127.0.0.1:8023]",
    )
    submit.add_argument(
        "--workloads", nargs="+", choices=sorted(ALL_WORKLOADS),
        default=sorted(ALL_WORKLOADS),
    )
    submit.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    submit.add_argument("--abtb", type=int, nargs="+", default=[256])
    submit.add_argument("--backend", choices=("reference", "batched"), default="reference")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--timeout", type=float, default=None, help="per-run timeout in seconds")
    submit.add_argument("--retries", type=int, default=2, help="worker-side retries per pair")
    submit.add_argument(
        "--watchdog-every", type=int, default=0, metavar="N",
        help="backend divergence watchdog interval (with --backend batched)",
    )
    submit.add_argument(
        "--no-wait", dest="wait", action="store_false",
        help="return immediately after the campaign is accepted",
    )
    submit.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="status poll interval while waiting [default: 0.5]",
    )
    submit.add_argument(
        "--incidents-out", default=None, metavar="PATH",
        help="fetch the manager's incident log after completion (see 'incidents')",
    )
    submit.set_defaults(func=_cmd_submit)

    incidents = sub.add_parser(
        "incidents", help="validate and summarise a JSONL incident log"
    )
    incidents.add_argument("path", help="incident log written by campaign --incidents-out")
    incidents.add_argument("--json", action="store_true", help="machine-readable output")
    incidents.add_argument(
        "--verbose", action="store_true", help="print every incident message"
    )
    incidents.add_argument(
        "--require", action="append", default=[], metavar="KIND",
        help="exit 1 unless at least one incident of KIND is present (repeatable)",
    )
    incidents.set_defaults(func=_cmd_incidents)

    drill = sub.add_parser(
        "drill",
        help="fleet-level HA chaos drill: leader kill + standby promotion "
        "+ network faults over a live campaign, asserting the result "
        "counter-identical to a serial run (exit 0/3/1)",
    )
    drill.add_argument(
        "--root", required=True, metavar="DIR",
        help="drill working directory (leader/standby state, caches, "
        "incidents.jsonl)",
    )
    drill.add_argument(
        "--workloads", nargs="+", choices=sorted(ALL_WORKLOADS),
        default=["apache"],
    )
    drill.add_argument("--abtb", type=int, nargs="+", default=[16, 64, 256])
    drill.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    drill.add_argument(
        "--backend", choices=("reference", "batched"), default="reference"
    )
    drill.add_argument(
        "--seed", type=int, default=1337,
        help="fault-injector seed (the drill replays bit-for-bit) [default: 1337]",
    )
    drill.add_argument(
        "--workers", type=int, default=3, help="fleet size [default: 3]"
    )
    drill.add_argument(
        "--lease-ttl", type=float, default=6.0, metavar="SECONDS",
        help="shard lease deadline during the drill [default: 6]",
    )
    drill.add_argument(
        "--partition-window", type=float, default=0.4, metavar="SECONDS",
        help="post-promotion worker→leader partition length (0 = off) "
        "[default: 0.4]",
    )
    drill.add_argument(
        "--deadline", type=float, default=180.0, metavar="SECONDS",
        help="abort the drill after this long [default: 180]",
    )
    drill.add_argument(
        "--no-vanish", action="store_true",
        help="keep all workers alive (skip the in-process SIGKILL)",
    )
    drill.add_argument(
        "--net-off", action="store_true",
        help="disable probabilistic network faults (partitions still run)",
    )
    drill.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="also write the full drill report as JSON",
    )
    drill.add_argument("--json", action="store_true", help="JSON report on stdout")
    drill.add_argument(
        "--verbose", action="store_true", help="print the drill timeline live"
    )
    drill.set_defaults(func=_cmd_drill)

    service = sub.add_parser(
        "service", help="campaign-service maintenance (result-store gc)"
    )
    service_sub = service.add_subparsers(dest="action", required=True)
    service_gc = service_sub.add_parser(
        "gc",
        help="evict stored shard results by age/count; results referenced "
        "by live campaigns are never touched",
    )
    service_gc.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="service state root (journal + results), as given to 'serve'",
    )
    service_gc.add_argument(
        "--max-age-s", type=float, default=None, metavar="SECONDS",
        help="evict unprotected results older than this",
    )
    service_gc.add_argument(
        "--max-count", type=int, default=None, metavar="N",
        help="keep at most N unprotected results (oldest evicted first)",
    )
    service_gc.add_argument(
        "--dry-run", action="store_true", help="report only; delete nothing"
    )
    service_gc.add_argument(
        "--incidents-out", default=None, metavar="PATH",
        help="write result_evicted incidents as JSON lines",
    )
    service_gc.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    service_gc.set_defaults(func=_cmd_service_gc)

    dash = sub.add_parser(
        "dash",
        help="render the campaign dashboard offline from exported artifacts",
    )
    dash.add_argument(
        "--from", dest="artifacts", required=True, metavar="DIR",
        help="artifact directory (metrics.jsonl / incidents.jsonl / "
        "events.jsonl / profile.json / trace.json, all optional)",
    )
    dash.add_argument(
        "--out", default="dashboard.html", metavar="PATH",
        help="output HTML path [default: dashboard.html]",
    )
    dash.set_defaults(func=_cmd_dash)

    checkpoint = sub.add_parser(
        "checkpoint", help="save / inspect / verify machine-state checkpoints"
    )
    ckpt_sub = checkpoint.add_subparsers(dest="action", required=True)
    ckpt_save = ckpt_sub.add_parser(
        "save", help="simulate startup + warm-up and save the machine state"
    )
    ckpt_save.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    ckpt_save.add_argument("--out", required=True, help="output checkpoint path")
    ckpt_save.add_argument("--requests", type=int, default=10, help="warm-up requests")
    ckpt_save.add_argument("--abtb", type=int, default=256)
    ckpt_save.add_argument(
        "--enhanced", action="store_true",
        help="equip the CPU with the trampoline-skip mechanism",
    )
    ckpt_save.set_defaults(func=_cmd_checkpoint)
    ckpt_info = ckpt_sub.add_parser("info", help="describe a saved checkpoint")
    ckpt_info.add_argument("path")
    ckpt_info.set_defaults(func=_cmd_checkpoint)
    ckpt_verify = ckpt_sub.add_parser(
        "verify", help="round-trip-validate a saved checkpoint (exit 1 on divergence)"
    )
    ckpt_verify.add_argument("path")
    ckpt_verify.set_defaults(func=_cmd_checkpoint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Model errors (:class:`ReproError`) surface as a one-line message and
    exit code 1 rather than a traceback; genuine bugs still raise.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # SIGINT/SIGTERM outside a command's own graceful path: the
        # conventional 128+SIGINT code, with no traceback spew.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
