"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — enumerate the registered experiments;
* ``run <experiment-id> [--scale smoke|paper]`` — run one experiment and
  print its paper-style report;
* ``compare <workload> [--requests N] [--abtb N]`` — quick base-vs-
  enhanced comparison of one workload.
"""

from __future__ import annotations

import argparse
import sys

from repro import quick_comparison
from repro.experiments import PAPER, SMOKE, all_experiments, get
from repro.workloads import ALL_WORKLOADS


def _cmd_list(_args: argparse.Namespace) -> int:
    experiments = all_experiments()
    width = max(len(eid) for eid in experiments)
    for eid, exp in sorted(experiments.items()):
        print(f"{eid:<{width}}  {exp.paper_ref:<18}  {exp.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = PAPER if args.scale == "paper" else SMOKE
    ids = sorted(all_experiments()) if args.experiment == "all" else [args.experiment]
    ok = True
    for eid in ids:
        report = get(eid).run(scale)
        print(report.render())
        print()
        ok = ok and report.all_shapes_hold
    return 0 if ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    result = quick_comparison(args.workload, args.requests, args.abtb)
    base, enh = result["base"], result["enhanced"]
    print(f"workload  : {args.workload}")
    print(f"requests  : {args.requests}   ABTB entries: {args.abtb}")
    print(f"skip rate : {result['skip_rate']:.1%}")
    print(f"speedup   : {result['speedup']:.4f}x")
    print(f"{'counter (PKI)':<24}{'base':>10}{'enhanced':>10}")
    for metric, value in base.table4_row().items():
        print(f"{metric:<24}{value:>10.3f}{enh.table4_row()[metric]:>10.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Architectural Support for Dynamic Linking' (ASPLOS 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list'), or 'all'")
    run.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare", help="base vs enhanced on one workload")
    compare.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    compare.add_argument("--requests", type=int, default=80)
    compare.add_argument("--abtb", type=int, default=256)
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
