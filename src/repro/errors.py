"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause without masking
unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class LayoutError(ReproError):
    """Address-space layout failed (overlap, exhaustion, bad region)."""


class LinkError(ReproError):
    """Symbol resolution or relocation failed."""


class PageFaultError(ReproError):
    """Page-level memory model violation (bad permissions, unmapped page)."""


#: Deprecated alias — the hierarchy used to shadow the ``MemoryError``
#: builtin; new code should catch :class:`PageFaultError`.
MemoryError_ = PageFaultError


class TraceError(ReproError):
    """Malformed trace event stream."""


class TraceCorruptionError(TraceError):
    """A serialised trace artifact failed to decode.

    Raised by the binary trace codec (:mod:`repro.trace.batch`) and the
    row decoder (:func:`repro.isa.events.event_from_row`) instead of the
    opaque ``KeyError`` / ``struct.error`` a naive decode would surface.
    ``offset`` is the byte offset of the corruption when it is known
    (-1 otherwise); ``row`` the event index, when the corruption is
    attributable to one row.
    """

    def __init__(self, message: str, offset: int = -1, row: int = -1) -> None:
        super().__init__(message)
        self.offset = offset
        self.row = row


class ExperimentError(ReproError):
    """An experiment was misconfigured or produced inconsistent output."""


class ChaosError(ReproError):
    """The fault-injection harness was misused or hit an internal error."""


class OracleViolation(ChaosError):
    """The correctness oracle observed a committed skip to a stale target.

    With the Bloom filter enabled this must never happen (the paper's
    Section 3.2 safety argument); raising it means the modelled hardware —
    or the model itself — is broken.
    """


# ----------------------------------------------------------- resilience
#
# The self-healing campaign layer (src/repro/resilience/) classifies its
# failures with this sub-taxonomy.  Every class maps onto an incident
# kind recorded by repro.resilience.incidents.IncidentRecorder, so log
# entries and raised exceptions share one vocabulary.


class ResilienceError(ReproError):
    """Base class for failures in the self-healing campaign layer."""


class CheckpointCorruptionError(ResilienceError):
    """An integrity-checked artifact failed validation.

    Covers machine checkpoints, campaign checkpoints, shard spill files
    and manifests: truncation, bit flips (checksum mismatch), wrong
    schema name or schema version.  Callers in the resilience layer treat
    this as "rebuild the artifact" (re-simulate / requeue), never as
    "trust the bytes".
    """

    def __init__(self, message: str, path: object = None, reason: str = "corrupt") -> None:
        super().__init__(message)
        self.path = path
        #: Machine-readable cause: ``missing | unreadable | not-json |
        #: bad-envelope | wrong-schema | wrong-version | checksum-mismatch``.
        self.reason = reason


class SupervisorError(ResilienceError):
    """The campaign supervisor was misused or hit an internal error."""


class WorkerHangError(SupervisorError):
    """A supervised worker missed its heartbeat deadline and was killed."""


class WorkerDeathError(SupervisorError):
    """A supervised worker process died without delivering its outcome."""


class BackendDivergenceError(ResilienceError):
    """The runtime watchdog caught the fast backend diverging from the
    reference interpreter (results must fall back, never be published)."""


# -------------------------------------------------------------- service
#
# The campaign service (src/repro/service/) — lease-based manager/worker
# runtime — classifies its failures below.


class ServiceError(ReproError):
    """Base class for failures in the campaign service layer."""


class SchemaError(ServiceError):
    """A JSON request/response body failed dataclass-schema validation.

    The API layer maps this onto HTTP 400; the message names the field
    and the violated constraint.
    """


class LeaseError(ServiceError):
    """A shard lease operation was invalid (unknown, expired or not
    owned by the requesting worker)."""


class FencedWriteError(ServiceError):
    """A write carried a fencing epoch that does not match the manager's.

    Raised (and mapped onto HTTP 409 with ``"fenced": true``) in both
    directions: a *stale worker* still stamping the pre-failover epoch
    must re-register against the current leader, and a *revived stale
    leader* receiving requests stamped with a newer epoch must refuse to
    merge them — its journal is no longer the truth.
    """

    def __init__(self, message: str, ours: int = 0, theirs: int = 0) -> None:
        super().__init__(message)
        self.ours = ours
        self.theirs = theirs
