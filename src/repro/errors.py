"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause without masking
unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class LayoutError(ReproError):
    """Address-space layout failed (overlap, exhaustion, bad region)."""


class LinkError(ReproError):
    """Symbol resolution or relocation failed."""


class PageFaultError(ReproError):
    """Page-level memory model violation (bad permissions, unmapped page)."""


#: Deprecated alias — the hierarchy used to shadow the ``MemoryError``
#: builtin; new code should catch :class:`PageFaultError`.
MemoryError_ = PageFaultError


class TraceError(ReproError):
    """Malformed trace event stream."""


class ExperimentError(ReproError):
    """An experiment was misconfigured or produced inconsistent output."""


class ChaosError(ReproError):
    """The fault-injection harness was misused or hit an internal error."""


class OracleViolation(ChaosError):
    """The correctness oracle observed a committed skip to a stale target.

    With the Bloom filter enabled this must never happen (the paper's
    Section 3.2 safety argument); raising it means the modelled hardware —
    or the model itself — is broken.
    """
