"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause without masking
unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class LayoutError(ReproError):
    """Address-space layout failed (overlap, exhaustion, bad region)."""


class LinkError(ReproError):
    """Symbol resolution or relocation failed."""


class MemoryError_(ReproError):
    """Page-level memory model violation (bad permissions, unmapped page)."""


class TraceError(ReproError):
    """Malformed trace event stream."""


class ExperimentError(ReproError):
    """An experiment was misconfigured or produced inconsistent output."""
