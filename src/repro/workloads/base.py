"""Synthetic workload framework.

A :class:`WorkloadConfig` describes an application the way the paper's
opportunity study characterises one: how much code it has, which libraries
it links, how many distinct library calls it makes (Table 3), how often it
makes them (Table 2), and how popularity is distributed over them
(Figure 4).  A :class:`Workload` builds the corresponding linked program
and generates request-by-request instruction traces under any
:class:`~repro.trace.engine.LinkMode`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.isa.arch import Arch
from repro.isa.events import (
    TraceEvent,
    block,
    call_indirect as call_indirect_event,
    cond_branch,
    context_switch,
    load,
    mark,
    ret as ret_event,
    store,
)
from repro.linker.dynamic import DynamicLinker, LinkedProgram
from repro.linker.layout import ClassicLayout, CompatLayout
from repro.linker.module import ModuleImage, ModuleSpec
from repro.linker.patcher import CallSitePatcher
from repro.linker.static import StaticLinker, StaticProgram
from repro.linker.symbols import FunctionSpec, SymbolKind
from repro.memory.address_space import AddressSpace
from repro.memory.pages import PhysicalMemory
from repro.trace.batch import TraceBatch
from repro.trace.builder import (
    BatchBuilder,
    K_BLOCK,
    K_CALL_INDIRECT,
    K_COND_BRANCH,
    K_CONTEXT_SWITCH,
    K_LOAD,
    K_MARK,
    K_RET,
    K_STORE,
)
from repro.trace.engine import CALL_SITE_LEN, ExecutionEngine, LinkMode
from repro.workloads.profiles import PopularityProfile, WeightedSampler


def stable_hash(text: str) -> int:
    """Deterministic 32-bit hash (Python's str hash is salted per process)."""
    return zlib.crc32(text.encode())


@dataclass(frozen=True)
class LibrarySpec:
    """One shared library in the workload's link set.

    Attributes:
        name: library name (e.g. ``"libc.so"``).
        n_functions: functions the library defines.
        function_size: mean text bytes per function.
        import_pairs: number of cross-library call pairs where this
            library is the *caller* (its own PLT entries that get used).
        ifunc_fraction: fraction of defined functions that are GNU ifuncs.
    """

    name: str
    n_functions: int
    function_size: int = 256
    import_pairs: int = 0
    ifunc_fraction: float = 0.0


@dataclass(frozen=True)
class RequestClass:
    """Behavioural recipe for one request type (e.g. SPECweb "Search").

    Attributes:
        name: request type label.
        weight: share of this type in the request mix.
        segments: mean application compute segments per request.
        segment_instr: mean instructions per segment.
        call_prob: probability a segment makes a library call.
        lib_body_instr: mean instructions in a called library function.
        nested_prob: probability a library body calls another library.
        loads_per_segment / stores_per_segment: data accesses per segment.
        repeat_prob: probability a *nested* call repeats the previous
            nested call into the same library (loop-style burstiness).
        phase_len: segments per request phase.  A request executes as a
            sequence of phases (parse, handle, format, ...), each cycling
            over a small set of library calls — the temporal burstiness
            that makes tiny ABTBs effective (Figure 5's working sets).
        phase_set: distinct library calls per phase.
        app_phase_fns: distinct application functions a phase's compute
            segments cycle over.  Large values (Apache request handlers)
            create instruction-cache pressure; small values (Firefox's
            tight JS/rendering kernels) keep the hot code resident.
        virtual_call_prob: probability a segment performs a C++-style
            virtual dispatch (Section 2.4.2): an indirect call through a
            vtable slot.  These look up a table and branch like PLT calls
            but use a different instruction sequence, so the mechanism
            neither learns nor skips them — a fidelity check.
    """

    name: str
    weight: float = 1.0
    segments: int = 100
    segment_instr: int = 40
    call_prob: float = 0.9
    lib_body_instr: int = 40
    nested_prob: float = 0.3
    loads_per_segment: int = 2
    stores_per_segment: int = 1
    repeat_prob: float = 0.5
    phase_len: int = 30
    phase_set: int = 4
    app_phase_fns: int = 8
    virtual_call_prob: float = 0.0


@dataclass(frozen=True)
class WorkloadConfig:
    """Full description of a synthetic application."""

    name: str
    libraries: tuple[LibrarySpec, ...]
    request_classes: tuple[RequestClass, ...]
    app_functions: int = 400
    app_function_size: int = 512
    app_import_pairs: int = 100
    profile: PopularityProfile = field(default_factory=PopularityProfile)
    lib_profile: PopularityProfile | None = None
    data_working_set: int = 1 << 20
    request_local_bytes: int = 16 * 1024
    request_slots: int = 16
    context_switch_interval: int = 0
    sites_per_pair: int = 1
    max_call_depth: int = 3
    #: Ratio of PLT slots to *exercised* PLT slots.  Real modules import
    #: far more symbols than any run calls, and slot order follows the
    #: source, so used trampolines are sparsely scattered: effectively one
    #: I-cache line per used trampoline and one D-cache line per used GOT
    #: slot (Section 2.2).  6 reproduces that sparsity.
    plt_sparsity: int = 6
    #: Trampoline encoding: x86-64 (1-instruction stubs) or ARM
    #: (3-instruction stubs — the mechanism saves 3x the instructions).
    arch: Arch = Arch.X86_64
    seed: int = 1234

    def __post_init__(self) -> None:
        if not self.request_classes:
            raise ConfigError("a workload needs at least one request class")
        if self.app_import_pairs < 1:
            raise ConfigError("app_import_pairs must be >= 1")
        total_lib_functions = sum(lib.n_functions for lib in self.libraries)
        if self.app_import_pairs > total_lib_functions:
            raise ConfigError("cannot import more symbols than the libraries define")
        if self.sites_per_pair < 1:
            raise ConfigError("sites_per_pair must be >= 1")

    @property
    def distinct_pair_target(self) -> int:
        """Designed universe of (caller module, symbol) trampoline pairs."""
        return self.app_import_pairs + sum(lib.import_pairs for lib in self.libraries)


@dataclass(frozen=True)
class CallPair:
    """One (caller module, symbol) pair with its call sites."""

    caller: str
    symbol: str
    sites: tuple[int, ...]


class Workload:
    """A built workload: linked program, engine, samplers, trace generator.

    Build one instance per simulation run; the generated trace is fully
    deterministic in (config, mode), so base and enhanced CPU runs over
    two separately built instances see identical event streams.
    """

    def __init__(
        self,
        config: WorkloadConfig,
        mode: LinkMode = LinkMode.DYNAMIC,
        with_memory: bool = False,
    ) -> None:
        self.config = config
        self.mode = mode
        rng = np.random.default_rng(config.seed)

        self._specs = self._build_specs(rng)
        self.phys: PhysicalMemory | None = None
        self.address_space: AddressSpace | None = None
        self.program: LinkedProgram | StaticProgram
        self.patcher: CallSitePatcher | None = None

        exe, libs = self._specs
        if mode is LinkMode.STATIC:
            self.program = StaticLinker().link(exe, libs)
        else:
            layout = CompatLayout() if mode is LinkMode.PATCHED else ClassicLayout(aslr=False)
            if with_memory or mode is LinkMode.PATCHED:
                self.phys = PhysicalMemory()
                linker = DynamicLinker(self.phys)
                self.address_space = AddressSpace(self.phys, f"{config.name}:proc0")
                self.program = linker.link(exe, libs, layout, self.address_space)
            else:
                self.program = DynamicLinker().link(exe, libs, layout)
            if mode is LinkMode.PATCHED:
                spaces = [self.address_space] if self.address_space else []
                self.patcher = CallSitePatcher(self.program, spaces)

        self.engine = ExecutionEngine(self.program, mode, self.patcher, arch=config.arch)
        self._pairs_by_module = self._assign_call_sites(rng)
        self._samplers = self._build_samplers()
        self._app_fn_sampler = WeightedSampler(
            PopularityProfile(zipf_s=0.8).weights(config.app_functions)
        )
        self._class_sampler = WeightedSampler(
            np.array([rc.weight for rc in config.request_classes], dtype=np.float64)
        )
        self._app_image = self.program.module("app")
        self._lib_data_base = {
            name: (image.got_range[1] + 4096 if hasattr(image, "got_range") else image.text_end + 4096)
            for name, image in self.program.modules.items()
        }
        self._heap = self.program.heap_base
        self._defining_module = {
            sym: self.program.symbols.lookup(sym).module
            for pairs in self._pairs_by_module.values()
            for p in pairs
            for sym in [p.symbol]
        }
        # Pure caches for the batch-emitting generation path (identical
        # values to what the legacy iterator computes per event).
        self._app_fn_entries = [
            self._app_image.functions[f"app_fn{i}"].entry
            for i in range(config.app_functions)
        ]
        self._hot_bytes = max(config.data_working_set // 32, 4096)
        self._lib_load_addr = {
            sym: (self._lib_data_base.get(mod, self._heap) + (stable_hash(sym) * 64) % (256 * 1024))
            & ~0x7
            for sym, mod in self._defining_module.items()
        }
        self._vcall_cache: dict[int, tuple[int, int]] = {}
        #: (caller, symbol) pairs whose trampolines were executed.
        self.touched_pairs: set[tuple[str, str]] = set()
        #: Per-pair trampoline execution counts (Figure 4's frequencies).
        self.pair_counts: dict[tuple[str, str], int] = {}
        self._instr_since_switch = 0

    # ------------------------------------------------------------ building

    def _build_specs(self, rng: np.random.Generator) -> tuple[ModuleSpec, list[ModuleSpec]]:
        cfg = self.config
        libs: list[ModuleSpec] = []
        all_symbols: list[str] = []
        symbols_by_lib: dict[str, list[str]] = {}
        for lib in cfg.libraries:
            fns: list[FunctionSpec] = []
            n_ifunc = int(lib.n_functions * lib.ifunc_fraction)
            for i in range(lib.n_functions):
                sym = f"{lib.name.split('.')[0]}_fn{i}"
                size = int(max(48, rng.normal(lib.function_size, lib.function_size / 4)))
                if i < n_ifunc:
                    fns.append(FunctionSpec(sym, size, SymbolKind.IFUNC, ifunc_variants=3))
                else:
                    fns.append(FunctionSpec(sym, size))
                all_symbols.append(sym)
            symbols_by_lib[lib.name] = [f.name for f in fns]
            libs.append(ModuleSpec(lib.name, fns, imports=[]))

        # App imports: a random subset of all library symbols, in an order
        # unrelated to popularity (PLT slot order follows the source).
        app_used = list(
            rng.choice(np.array(all_symbols, dtype=object), cfg.app_import_pairs, replace=False)
        )
        app_imports = self._sparsify_imports(app_used, all_symbols, rng)
        # Cross-library imports: each library that makes calls imports
        # symbols defined by *other* libraries.
        lib_used: dict[str, list[str]] = {}
        lib_imports: dict[str, list[str]] = {}
        for lib in cfg.libraries:
            if lib.import_pairs == 0:
                continue
            foreign = [s for other, syms in symbols_by_lib.items() if other != lib.name for s in syms]
            count = min(lib.import_pairs, len(foreign))
            used = list(rng.choice(np.array(foreign, dtype=object), count, replace=False))
            lib_used[lib.name] = used
            lib_imports[lib.name] = self._sparsify_imports(used, foreign, rng)

        self._used_imports = {"app": app_used, **lib_used}
        lib_specs = [
            ModuleSpec(spec.name, spec.functions, imports=lib_imports.get(spec.name, []))
            for spec in libs
        ]

        app_fns = [
            FunctionSpec(
                f"app_fn{i}",
                int(max(64, rng.normal(cfg.app_function_size, cfg.app_function_size / 4))),
            )
            for i in range(cfg.app_functions)
        ]
        exe = ModuleSpec("app", app_fns, imports=app_imports)
        return exe, lib_specs

    def _sparsify_imports(
        self, used: list[str], available: list[str], rng: np.random.Generator
    ) -> list[str]:
        """Pad the used import set with never-called imports and shuffle.

        The padding reproduces the paper's PLT sparsity: slot order follows
        the source, and most slots are never exercised by a given run.
        """
        target = len(used) * max(self.config.plt_sparsity, 1)
        pool = [s for s in available if s not in set(used)]
        extra = min(target - len(used), len(pool))
        padding = list(rng.choice(np.array(pool, dtype=object), extra, replace=False)) if extra > 0 else []
        combined = list(used) + padding
        rng.shuffle(combined)
        return combined

    def _assign_call_sites(self, rng: np.random.Generator) -> dict[str, list[CallPair]]:
        """Place each *exercised* pair's call sites inside its caller."""
        cfg = self.config
        out: dict[str, list[CallPair]] = {}
        for name, image in self.program.modules.items():
            imports = self._used_imports.get(name, [])
            if not imports:
                continue
            fns = list(image.functions.values())
            pairs: list[CallPair] = []
            for k, symbol in enumerate(imports):
                sites = []
                for s in range(cfg.sites_per_pair):
                    host = fns[(k * cfg.sites_per_pair + s) % len(fns)]
                    # Sites are spread through the host's body, 5-byte call
                    # instructions at 16-byte granularity.
                    slot = 16 + ((k // len(fns) + s) * 32) % max(host.size - 32, 16)
                    sites.append(host.entry + slot)
                pairs.append(CallPair(name, symbol, tuple(sites)))
            out[name] = pairs
        return out

    def _build_samplers(self) -> dict[str, WeightedSampler]:
        cfg = self.config
        out: dict[str, WeightedSampler] = {}
        for name, pairs in self._pairs_by_module.items():
            profile = cfg.profile if name == "app" else (cfg.lib_profile or cfg.profile)
            out[name] = WeightedSampler(profile.weights(len(pairs)))
        return out

    # ---------------------------------------------------------- generation

    def request_mix(self, n_requests: int, rng: np.random.Generator) -> list[RequestClass]:
        """The deterministic sequence of request classes for a run."""
        return [self.config.request_classes[self._class_sampler.sample(rng)] for _ in range(n_requests)]

    def startup_trace(self) -> Iterator[TraceEvent]:
        """Process initialisation: call every import pair once.

        Real programs resolve the bulk of their GOT entries while starting
        up (library constructors, config parsing, first request); the
        paper measures long-running warm servers where resolution — and
        the one ABTB flush each resolution's GOT store causes — has long
        finished.  Experiments run this before their measurement window.
        """
        rng = np.random.default_rng(np.random.SeedSequence([self.config.seed, 55]))
        rc = self.config.request_classes[0]
        for pairs in self._pairs_by_module.values():
            for pair in pairs:
                yield from self._library_call(rc, pair, pair.sites[0], rng, depth=self.config.max_call_depth)

    def trace(
        self,
        n_requests: int,
        include_marks: bool = True,
        classes: list[RequestClass] | None = None,
        start_id: int = 0,
    ) -> Iterator[TraceEvent]:
        """Generate the event stream for ``n_requests`` requests.

        ``start_id`` offsets request identities so a warmup run and a
        measurement run draw different per-request randomness.
        """
        rng = np.random.default_rng(np.random.SeedSequence([self.config.seed, 77, start_id]))
        mix = classes if classes is not None else self.request_mix(n_requests, rng)
        for offset, rc in enumerate(mix):
            request_id = start_id + offset
            req_rng = np.random.default_rng(
                np.random.SeedSequence([self.config.seed, 101, request_id])
            )
            if include_marks:
                yield mark(("begin", rc.name, request_id))
            yield from self._request_events(rc, request_id, req_rng)
            if include_marks:
                yield mark(("end", rc.name, request_id))

    def prefork_trace(
        self,
        processes: int,
        requests_per_process: int,
        include_marks: bool = False,
    ) -> Iterator[TraceEvent]:
        """Round-robin request service across prefork worker processes.

        Models a single core timeslicing between identical forked workers
        (the Apache prefork MPM): one request per worker per turn, with a
        context switch between turns.  Because prefork siblings share the
        parent's address-space layout, ASID-retained ABTB entries remain
        *valid* across sibling switches — the scenario where the paper's
        Section 3.3 ASID remark pays off most.
        """
        if processes < 1 or requests_per_process < 1:
            raise ConfigError("prefork_trace needs >=1 process and >=1 request")
        rng = np.random.default_rng(np.random.SeedSequence([self.config.seed, 88]))
        mix = self.request_mix(processes * requests_per_process, rng)
        request_id = 0
        for _turn in range(requests_per_process):
            for _worker in range(processes):
                rc = mix[request_id]
                req_rng = np.random.default_rng(
                    np.random.SeedSequence([self.config.seed, 101, request_id])
                )
                if include_marks:
                    yield mark(("begin", rc.name, request_id))
                yield from self._request_events(rc, request_id, req_rng)
                if include_marks:
                    yield mark(("end", rc.name, request_id))
                yield context_switch()
                request_id += 1

    def _request_events(
        self, rc: RequestClass, request_id: int, rng: np.random.Generator
    ) -> Iterator[TraceEvent]:
        cfg = self.config
        app_pairs = self._pairs_by_module.get("app", [])
        app_sampler = self._samplers.get("app")
        local_base = (
            self._heap
            + cfg.data_working_set
            + (request_id % cfg.request_slots) * cfg.request_local_bytes
        )
        n_segments = max(1, int(rng.normal(rc.segments, rc.segments * 0.12)))
        # Pre-draw randomness in bulk: one vectorised draw per segment
        # instead of several.
        u_call = rng.random(n_segments)
        phase_pairs: list[CallPair] = []
        phase_fns: list[int] = []
        last_nested: dict[str, CallPair] = {}
        for seg in range(n_segments):
            if seg % rc.phase_len == 0:
                # New phase: draw the small working sets of library calls
                # and of application functions this phase cycles over.
                if app_pairs:
                    k = max(1, min(rc.phase_set, len(app_pairs)))
                    phase_pairs = [app_pairs[app_sampler.sample(rng)] for _ in range(k)]
                phase_fns = [
                    self._app_fn_sampler.sample(rng)
                    for _ in range(max(1, rc.app_phase_fns))
                ]
            pair: CallPair | None = None
            if phase_pairs and u_call[seg] < rc.call_prob:
                pair = phase_pairs[int(rng.integers(0, len(phase_pairs)))]
            yield from self._app_segment(rc, pair, local_base, rng, phase_fns)
            if pair is not None:
                site = pair.sites[seg % len(pair.sites)]
                yield from self._library_call(rc, pair, site, rng, depth=0, last_nested=last_nested)
            if cfg.context_switch_interval:
                self._instr_since_switch += rc.segment_instr
                if self._instr_since_switch >= cfg.context_switch_interval:
                    self._instr_since_switch = 0
                    yield context_switch()

    def _app_segment(
        self,
        rc: RequestClass,
        pair: CallPair | None,
        local_base: int,
        rng: np.random.Generator,
        phase_fns: list[int] | None = None,
    ) -> Iterator[TraceEvent]:
        """Application compute: blocks in an app function, data accesses."""
        cfg = self.config
        if phase_fns:
            idx = phase_fns[int(rng.integers(0, len(phase_fns)))]
        else:
            idx = self._app_fn_sampler.sample(rng)
        fn_entry = self._app_image.functions[f"app_fn{idx}"].entry
        n = max(4, int(rng.normal(rc.segment_instr, rc.segment_instr * 0.2)))
        first = max(2, n // 2)
        yield block(fn_entry, first, first * 4)
        hot_bytes = max(cfg.data_working_set // 32, 4096)
        for _ in range(rc.loads_per_segment):
            u = rng.random()
            if u < 0.45:
                # Hot global structures (config, dispatch tables, caches).
                addr = self._heap + int(rng.integers(0, hot_bytes))
            elif u < 0.85:
                addr = local_base + int(rng.integers(0, cfg.request_local_bytes))
            else:
                # Cold sweep over the full working set.
                addr = self._heap + int(rng.integers(0, cfg.data_working_set))
            yield load(fn_entry + first * 4, addr & ~0x7)
        yield cond_branch(fn_entry + first * 4 + 4, fn_entry + 8, taken=bool(rng.random() < 0.72))
        rest = max(2, n - first)
        yield block(fn_entry + first * 4 + 10, rest, rest * 4)
        for _ in range(rc.stores_per_segment):
            addr = local_base + int(rng.integers(0, cfg.request_local_bytes))
            yield store(fn_entry + first * 4 + 14, addr & ~0x7)
        if rc.virtual_call_prob and rng.random() < rc.virtual_call_prob:
            # C++ virtual dispatch (Section 2.4.2): indirect call through
            # a vtable slot in the object.  Not a PLT pattern — the
            # mechanism must leave these alone.
            vidx = self._app_fn_sampler.sample(rng)
            vfn = self._app_image.functions[f"app_fn{vidx}"]
            vtable = self._heap + (stable_hash(f"vt{vidx}") % cfg.data_working_set) & ~0x7
            call_pc = fn_entry + first * 4 + 20
            yield call_indirect_event(call_pc, vfn.entry, vtable)
            vbody = max(4, rest // 2)
            yield block(vfn.entry, vbody, vbody * 4)
            yield ret_event(vfn.entry + vbody * 4, call_pc + 6)
        if pair is not None:
            # Control flows into the function hosting the call site just
            # before the library call itself.
            yield block(pair.sites[0] & ~0xF, 4, 16)

    def _library_call(
        self,
        rc: RequestClass,
        pair: CallPair,
        site_pc: int,
        rng: np.random.Generator,
        depth: int,
        last_nested: dict[str, CallPair] | None = None,
    ) -> Iterator[TraceEvent]:
        """One library call: trampoline (mode-dependent), body, return."""
        events, binding = self.engine.call_events(pair.caller, pair.symbol, site_pc)
        if binding.via_plt:
            key = (pair.caller, pair.symbol)
            self.touched_pairs.add(key)
            self.pair_counts[key] = self.pair_counts.get(key, 0) + 1
        yield from events

        body = max(6, int(rng.normal(rc.lib_body_instr, rc.lib_body_instr * 0.25)))
        half = max(3, body // 2)
        entry = binding.func_addr
        yield block(entry, half, half * 4)
        # Library static data access (per-function locality).
        lib_name = self._defining_module.get(pair.symbol)
        if lib_name is not None:
            base = self._lib_data_base.get(lib_name, self._heap)
            offset = (stable_hash(pair.symbol) * 64) % (256 * 1024)
            yield load(entry + half * 4, (base + offset) & ~0x7)

        nested = None
        if depth < self.config.max_call_depth and rng.random() < rc.nested_prob:
            nested_pairs = self._pairs_by_module.get(lib_name or "", [])
            if nested_pairs:
                previous = last_nested.get(lib_name) if last_nested is not None else None
                if previous is not None and rng.random() < rc.repeat_prob:
                    nested = previous
                else:
                    nested = nested_pairs[self._samplers[lib_name].sample(rng)]
                if last_nested is not None:
                    last_nested[lib_name] = nested
        if nested is not None:
            nested_site = nested.sites[0]
            yield from self._library_call(rc, nested, nested_site, rng, depth + 1, last_nested)

        yield cond_branch(entry + half * 4 + 6, entry + 4, taken=bool(rng.random() < 0.65))
        rest = max(3, body - half)
        yield block(entry + half * 4 + 12, rest, rest * 4)
        yield from self.engine.return_events(binding, site_pc)

    # ----------------------------------------------------- batch generation
    #
    # Array-native twins of the generators above.  Each method mirrors its
    # legacy counterpart *draw for draw* — same RNG streams, same control
    # flow, same per-event values — but appends flat integer rows to a
    # :class:`~repro.trace.builder.BatchBuilder` instead of yielding
    # ``TraceEvent`` objects, and warm library calls replay precomputed
    # engine templates (:meth:`ExecutionEngine.call_rows`).  The legacy
    # iterators stay as the reference oracle: ``difftest.run_matrix``
    # proves full-CPU-snapshot equality between the two paths.

    def startup_batch(self) -> TraceBatch:
        """Batch twin of :meth:`startup_trace` (event-for-event identical)."""
        builder = BatchBuilder()
        rng = np.random.default_rng(np.random.SeedSequence([self.config.seed, 55]))
        rc = self.config.request_classes[0]
        depth = self.config.max_call_depth
        for pairs in self._pairs_by_module.values():
            for pair in pairs:
                self._library_call_rows(rc, pair, pair.sites[0], rng, depth, None, builder)
        return builder.build()

    def trace_batch(
        self,
        n_requests: int,
        include_marks: bool = True,
        classes: list[RequestClass] | None = None,
        start_id: int = 0,
    ) -> TraceBatch:
        """Batch twin of :meth:`trace` (event-for-event identical)."""
        builder = BatchBuilder()
        rows = builder.rows
        rng = np.random.default_rng(np.random.SeedSequence([self.config.seed, 77, start_id]))
        mix = classes if classes is not None else self.request_mix(n_requests, rng)
        for offset, rc in enumerate(mix):
            request_id = start_id + offset
            req_rng = np.random.default_rng(
                np.random.SeedSequence([self.config.seed, 101, request_id])
            )
            if include_marks:
                rows += (K_MARK, 0, 0, 0, 0, 0, 1, builder.tag_id(("begin", rc.name, request_id)))
            self._request_rows(rc, request_id, req_rng, builder)
            if include_marks:
                rows += (K_MARK, 0, 0, 0, 0, 0, 1, builder.tag_id(("end", rc.name, request_id)))
        return builder.build()

    def _request_rows(
        self, rc: RequestClass, request_id: int, rng: np.random.Generator, builder: BatchBuilder
    ) -> None:
        cfg = self.config
        rows = builder.rows
        app_pairs = self._pairs_by_module.get("app", [])
        app_sampler = self._samplers.get("app")
        local_base = (
            self._heap
            + cfg.data_working_set
            + (request_id % cfg.request_slots) * cfg.request_local_bytes
        )
        n_segments = max(1, int(rng.normal(rc.segments, rc.segments * 0.12)))
        u_call = rng.random(n_segments).tolist()
        phase_pairs: list[CallPair] = []
        phase_fns: list[int] = []
        last_nested: dict[str, CallPair] = {}
        switch_interval = cfg.context_switch_interval
        for seg in range(n_segments):
            if seg % rc.phase_len == 0:
                if app_pairs:
                    k = max(1, min(rc.phase_set, len(app_pairs)))
                    phase_pairs = [app_pairs[app_sampler.sample(rng)] for _ in range(k)]
                phase_fns = [
                    self._app_fn_sampler.sample(rng)
                    for _ in range(max(1, rc.app_phase_fns))
                ]
            pair: CallPair | None = None
            if phase_pairs and u_call[seg] < rc.call_prob:
                pair = phase_pairs[int(rng.integers(0, len(phase_pairs)))]
            self._app_segment_rows(rc, pair, local_base, rng, phase_fns, builder)
            if pair is not None:
                site = pair.sites[seg % len(pair.sites)]
                self._library_call_rows(rc, pair, site, rng, 0, last_nested, builder)
            if switch_interval:
                self._instr_since_switch += rc.segment_instr
                if self._instr_since_switch >= switch_interval:
                    self._instr_since_switch = 0
                    rows += (K_CONTEXT_SWITCH, 0, 0, 0, 0, 0, 1, -1)

    def _app_segment_rows(
        self,
        rc: RequestClass,
        pair: CallPair | None,
        local_base: int,
        rng: np.random.Generator,
        phase_fns: list[int],
        builder: BatchBuilder,
    ) -> None:
        cfg = self.config
        rows = builder.rows
        if phase_fns:
            idx = phase_fns[int(rng.integers(0, len(phase_fns)))]
        else:
            idx = self._app_fn_sampler.sample(rng)
        fn_entry = self._app_fn_entries[idx]
        n = max(4, int(rng.normal(rc.segment_instr, rc.segment_instr * 0.2)))
        first = max(2, n // 2)
        rows += (K_BLOCK, fn_entry, first, first * 4, 0, 0, 1, -1)
        hot_bytes = self._hot_bytes
        load_pc = fn_entry + first * 4
        for _ in range(rc.loads_per_segment):
            u = rng.random()
            if u < 0.45:
                addr = self._heap + int(rng.integers(0, hot_bytes))
            elif u < 0.85:
                addr = local_base + int(rng.integers(0, cfg.request_local_bytes))
            else:
                addr = self._heap + int(rng.integers(0, cfg.data_working_set))
            rows += (K_LOAD, load_pc, 1, 4, 0, addr & ~0x7, 1, -1)
        rows += (
            K_COND_BRANCH, load_pc + 4, 1, 6, fn_entry + 8, 0,
            1 if rng.random() < 0.72 else 0, -1,
        )
        rest = max(2, n - first)
        rows += (K_BLOCK, load_pc + 10, rest, rest * 4, 0, 0, 1, -1)
        for _ in range(rc.stores_per_segment):
            addr = local_base + int(rng.integers(0, cfg.request_local_bytes))
            rows += (K_STORE, load_pc + 14, 1, 4, 0, addr & ~0x7, 1, -1)
        if rc.virtual_call_prob and rng.random() < rc.virtual_call_prob:
            vidx = self._app_fn_sampler.sample(rng)
            cached = self._vcall_cache.get(vidx)
            if cached is None:
                vfn = self._app_image.functions[f"app_fn{vidx}"]
                cached = (
                    vfn.entry,
                    self._heap + (stable_hash(f"vt{vidx}") % cfg.data_working_set) & ~0x7,
                )
                self._vcall_cache[vidx] = cached
            ventry, vtable = cached
            call_pc = load_pc + 20
            vbody = max(4, rest // 2)
            rows += (K_CALL_INDIRECT, call_pc, 1, 6, ventry, vtable, 1, -1)
            rows += (K_BLOCK, ventry, vbody, vbody * 4, 0, 0, 1, -1)
            rows += (K_RET, ventry + vbody * 4, 1, 1, call_pc + 6, 0, 1, -1)
        if pair is not None:
            rows += (K_BLOCK, pair.sites[0] & ~0xF, 4, 16, 0, 0, 1, -1)

    def _library_call_rows(
        self,
        rc: RequestClass,
        pair: CallPair,
        site_pc: int,
        rng: np.random.Generator,
        depth: int,
        last_nested: dict[str, CallPair] | None,
        builder: BatchBuilder,
    ) -> None:
        rows = builder.rows
        entry, func_size, via_plt = self.engine.call_rows(
            pair.caller, pair.symbol, site_pc, builder
        )
        if via_plt:
            key = (pair.caller, pair.symbol)
            self.touched_pairs.add(key)
            self.pair_counts[key] = self.pair_counts.get(key, 0) + 1

        body = max(6, int(rng.normal(rc.lib_body_instr, rc.lib_body_instr * 0.25)))
        half = max(3, body // 2)
        rows += (K_BLOCK, entry, half, half * 4, 0, 0, 1, -1)
        lib_name = self._defining_module.get(pair.symbol)
        if lib_name is not None:
            rows += (K_LOAD, entry + half * 4, 1, 4, 0, self._lib_load_addr[pair.symbol], 1, -1)

        nested = None
        if depth < self.config.max_call_depth and rng.random() < rc.nested_prob:
            nested_pairs = self._pairs_by_module.get(lib_name or "", [])
            if nested_pairs:
                previous = last_nested.get(lib_name) if last_nested is not None else None
                if previous is not None and rng.random() < rc.repeat_prob:
                    nested = previous
                else:
                    nested = nested_pairs[self._samplers[lib_name].sample(rng)]
                if last_nested is not None:
                    last_nested[lib_name] = nested
        if nested is not None:
            self._library_call_rows(rc, nested, nested.sites[0], rng, depth + 1, last_nested, builder)

        rows += (
            K_COND_BRANCH, entry + half * 4 + 6, 1, 6, entry + 4, 0,
            1 if rng.random() < 0.65 else 0, -1,
        )
        rest = max(3, body - half)
        rows += (K_BLOCK, entry + half * 4 + 12, rest, rest * 4, 0, 0, 1, -1)
        rows += (K_RET, entry + max(func_size - 1, 1), 1, 1, site_pc + CALL_SITE_LEN, 0, 1, -1)

    # ---------------------------------------------------------- inspection

    def reset_usage_stats(self) -> None:
        """Forget which trampolines executed (e.g. after startup) so the
        Table 3 / Figure 4 statistics cover only the measurement period."""
        self.touched_pairs.clear()
        self.pair_counts.clear()

    @property
    def distinct_trampolines_touched(self) -> int:
        """Distinct (caller, symbol) trampolines executed so far (Table 3)."""
        return len(self.touched_pairs)

    def frequency_curve(self) -> list[int]:
        """Per-trampoline execution counts, most-frequent first (Figure 4)."""
        return sorted(self.pair_counts.values(), reverse=True)

    def all_call_sites(self) -> list[tuple[int, str, str]]:
        """(site_pc, caller, symbol) for every call site in the program."""
        out = []
        for pairs in self._pairs_by_module.values():
            for p in pairs:
                for site in p.sites:
                    out.append((site, p.caller, p.symbol))
        return out

    def module_image(self, name: str) -> ModuleImage:
        """Convenience passthrough to the linked program."""
        return self.program.module(name)
