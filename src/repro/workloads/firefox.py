"""Firefox + Peacekeeper browser-benchmark workload model.

Calibration targets from the paper:

* Table 2 — 0.72 trampoline instructions PKI: execution is dominated by
  small computation kernels, with comparatively rare library calls;
* Table 3 — 2457 distinct trampolines, the *largest* call diversity in
  the study (many libraries, each exercised lightly);
* Figure 4 — a shallow popularity curve (no steep per-request core);
* Table 5 — Peacekeeper category scores (higher is better), improving by
  0.8 %–2.7 % under the proposed hardware.
"""

from __future__ import annotations

from repro.workloads.base import LibrarySpec, RequestClass, WorkloadConfig
from repro.workloads.profiles import PopularityProfile

PAPER_TRAMPOLINE_PKI = 0.72
PAPER_DISTINCT_TRAMPOLINES = 2457
PREFORK = False

#: Paper Table 5 scores (base → enhanced, higher is better).
PAPER_TABLE5 = {
    "Rendering": (49.31, 50.64),
    "HTML5 Canvas": (37.47, 37.94),
    "Data": (22_499, 22_727),
    "DOM operations": (16_547, 16_850),
    "Text parsing": (214_897, 216_625),
}

#: Peacekeeper categories as request classes; one "request" is one
#: benchmark iteration and scores are iterations per second.
REQUEST_CLASSES = (
    RequestClass(
        "Rendering", weight=0.24, segments=260, segment_instr=175, call_prob=0.13,
        lib_body_instr=58, nested_prob=0.2, loads_per_segment=3, stores_per_segment=2, repeat_prob=0.75, phase_len=80, phase_set=1, app_phase_fns=2, virtual_call_prob=0.08,
    ),
    RequestClass(
        "HTML5 Canvas", weight=0.2, segments=280, segment_instr=190, call_prob=0.11,
        lib_body_instr=55, nested_prob=0.18, loads_per_segment=3, stores_per_segment=2, repeat_prob=0.75, phase_len=80, phase_set=1, app_phase_fns=2, virtual_call_prob=0.08,
    ),
    RequestClass(
        "Data", weight=0.18, segments=220, segment_instr=185, call_prob=0.12,
        lib_body_instr=52, nested_prob=0.16, loads_per_segment=4, stores_per_segment=2, repeat_prob=0.75, phase_len=80, phase_set=1, app_phase_fns=2, virtual_call_prob=0.08,
    ),
    RequestClass(
        "DOM operations", weight=0.2, segments=240, segment_instr=180, call_prob=0.13,
        lib_body_instr=54, nested_prob=0.18, loads_per_segment=3, stores_per_segment=2, repeat_prob=0.75, phase_len=80, phase_set=1, app_phase_fns=2, virtual_call_prob=0.08,
    ),
    RequestClass(
        "Text parsing", weight=0.18, segments=230, segment_instr=180, call_prob=0.14,
        lib_body_instr=60, nested_prob=0.22, loads_per_segment=3, stores_per_segment=1, repeat_prob=0.75, phase_len=80, phase_set=1, app_phase_fns=2, virtual_call_prob=0.08,
    ),
)

LIBRARIES = (
    LibrarySpec("libc.so", n_functions=900, function_size=224, import_pairs=0, ifunc_fraction=0.06),
    LibrarySpec("libxul.so", n_functions=2000, function_size=288, import_pairs=260),
    LibrarySpec("libnss.so", n_functions=240, function_size=256, import_pairs=90),
    LibrarySpec("libnspr.so", n_functions=140, function_size=224, import_pairs=60),
    LibrarySpec("libgtk.so", n_functions=400, function_size=256, import_pairs=140),
    LibrarySpec("libglib.so", n_functions=320, function_size=224, import_pairs=110),
    LibrarySpec("libcairo.so", n_functions=220, function_size=256, import_pairs=90),
    LibrarySpec("libpango.so", n_functions=130, function_size=224, import_pairs=70),
    LibrarySpec("libX11.so", n_functions=260, function_size=224, import_pairs=60),
    LibrarySpec("libfreetype.so", n_functions=150, function_size=256, import_pairs=40),
    LibrarySpec("libfontconfig.so", n_functions=90, function_size=224, import_pairs=20),
    LibrarySpec("libstdcxx.so", n_functions=520, function_size=224, import_pairs=17),
)


def config(seed: int = 3000) -> WorkloadConfig:
    """The calibrated Firefox/Peacekeeper workload configuration."""
    return WorkloadConfig(
        name="firefox",
        libraries=LIBRARIES,
        request_classes=REQUEST_CLASSES,
        app_functions=1200,
        app_function_size=512,
        app_import_pairs=1500,
        # Shallow curve: a small core, most mass spread over a long tail.
        profile=PopularityProfile(core_size=50, core_mass=0.22, zipf_s=0.5),
        lib_profile=PopularityProfile(core_size=6, core_mass=0.3, zipf_s=0.55),
        data_working_set=768 * 1024,
        request_local_bytes=16 * 1024,
        context_switch_interval=2_500_000,
        seed=seed,
    )
