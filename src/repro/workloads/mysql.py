"""MySQL + TPC-C (OLTP-Bench) workload model.

Calibration targets from the paper:

* Table 2 — 5.56 trampoline instructions PKI;
* Table 3 — 1611 distinct trampolines;
* Figure 8 / Table 6 — response-time CDFs for the New Order and Payment
  transactions, with the enhanced system faster at every reported
  percentile (50/75/90/95) and Payment roughly 2.5× lighter than
  New Order.
"""

from __future__ import annotations

from repro.workloads.base import LibrarySpec, RequestClass, WorkloadConfig
from repro.workloads.profiles import PopularityProfile

PAPER_TRAMPOLINE_PKI = 5.56
PAPER_DISTINCT_TRAMPOLINES = 1611
PREFORK = False

#: Paper Table 6 reference percentiles (milliseconds).
PAPER_TABLE6_MS = {
    "New Order": {"base": {50: 43.5, 75: 57.3, 90: 72.8, 95: 87.1},
                  "enhanced": {50: 43.0, 75: 56.9, 90: 72.3, 95: 86.8}},
    "Payment": {"base": {50: 17.9, 75: 27.9, 90: 37.2, 95: 44.4},
                "enhanced": {50: 17.7, 75: 27.2, 90: 35.9, 95: 43.0}},
}

#: TPC-C mix: the paper reports the two most popular transaction types.
REQUEST_CLASSES = (
    RequestClass(
        "New Order", weight=0.45, segments=230, segment_instr=82, call_prob=0.56,
        lib_body_instr=48, nested_prob=0.28, loads_per_segment=4, stores_per_segment=2, repeat_prob=0.6, phase_len=40, phase_set=3, app_phase_fns=12, virtual_call_prob=0.06,
    ),
    RequestClass(
        "Payment", weight=0.43, segments=95, segment_instr=80, call_prob=0.56,
        lib_body_instr=46, nested_prob=0.28, loads_per_segment=4, stores_per_segment=2, repeat_prob=0.6, phase_len=40, phase_set=3, app_phase_fns=12, virtual_call_prob=0.06,
    ),
    RequestClass(
        "Stock Level", weight=0.12, segments=300, segment_instr=85, call_prob=0.52,
        lib_body_instr=48, nested_prob=0.26, loads_per_segment=5, stores_per_segment=1, repeat_prob=0.6, phase_len=40, phase_set=3, app_phase_fns=12, virtual_call_prob=0.06,
    ),
)

LIBRARIES = (
    LibrarySpec("libc.so", n_functions=900, function_size=224, import_pairs=0, ifunc_fraction=0.05),
    LibrarySpec("libstdcxx.so", n_functions=1300, function_size=224, import_pairs=180),
    LibrarySpec("libpthread.so", n_functions=60, function_size=160, import_pairs=20),
    LibrarySpec("libcrypto.so", n_functions=600, function_size=256, import_pairs=140),
    LibrarySpec("libssl.so", n_functions=140, function_size=256, import_pairs=120),
    LibrarySpec("libz.so", n_functions=60, function_size=224, import_pairs=40),
    LibrarySpec("libaio.so", n_functions=30, function_size=160, import_pairs=11),
    LibrarySpec("libm.so", n_functions=90, function_size=160, import_pairs=100),
)


def config(seed: int = 3306) -> WorkloadConfig:
    """The calibrated MySQL/TPC-C workload configuration."""
    return WorkloadConfig(
        name="mysql",
        libraries=LIBRARIES,
        request_classes=REQUEST_CLASSES,
        app_functions=2400,
        app_function_size=512,
        app_import_pairs=1000,
        profile=PopularityProfile(core_size=150, core_mass=0.72, zipf_s=0.9),
        lib_profile=PopularityProfile(core_size=10, core_mass=0.75, zipf_s=0.9),
        data_working_set=1 << 20,  # buffer pool pages dominate
        request_local_bytes=32 * 1024,
        context_switch_interval=1_800_000,
        seed=seed,
    )
