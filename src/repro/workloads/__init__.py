"""Synthetic workload models calibrated to the paper's four applications."""

from repro.workloads import apache, firefox, memcached, mysql
from repro.workloads.base import (
    CallPair,
    LibrarySpec,
    RequestClass,
    Workload,
    WorkloadConfig,
    stable_hash,
)
from repro.workloads.profiles import PopularityProfile, WeightedSampler

#: Workload registry: name -> module providing ``config()`` and the
#: paper's calibration constants.
ALL_WORKLOADS = {
    "apache": apache,
    "firefox": firefox,
    "memcached": memcached,
    "mysql": mysql,
}

__all__ = [
    "ALL_WORKLOADS",
    "CallPair",
    "LibrarySpec",
    "PopularityProfile",
    "RequestClass",
    "WeightedSampler",
    "Workload",
    "WorkloadConfig",
    "apache",
    "firefox",
    "memcached",
    "mysql",
    "stable_hash",
]
