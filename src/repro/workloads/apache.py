"""Apache web server + SPECweb 2009 workload model.

Calibration targets from the paper:

* Table 2 — 12.23 trampoline instructions per kilo-instruction (the most
  library-call-intensive workload studied);
* Table 3 — 501 distinct trampolines across the app and its libraries;
* Figure 4 — a steep popularity cutoff: a specific core set of library
  calls is made for every request serviced;
* Figure 6 — six SPECweb request classes whose mean response time improves
  by up to 4 % when trampolines are skipped, with tails unaffected.

Apache runs the prefork MPM (one process per worker), which is what makes
the software-patching baseline waste memory (Section 5.5): the model
therefore exposes ``prefork=True`` metadata used by the memory experiment.
"""

from __future__ import annotations

from repro.workloads.base import LibrarySpec, RequestClass, WorkloadConfig
from repro.workloads.profiles import PopularityProfile

#: Paper's Table 2 value for Apache (trampoline instructions PKI).
PAPER_TRAMPOLINE_PKI = 12.23
#: Paper's Table 3 value for Apache (distinct trampolines).
PAPER_DISTINCT_TRAMPOLINES = 501
#: Apache uses the prefork MPM: request handling processes are forked.
PREFORK = True

#: SPECweb 2009 request classes (the six panels of Figure 6).
REQUEST_CLASSES = (
    RequestClass(
        "Home", weight=0.18, segments=120, segment_instr=34, call_prob=0.88,
        lib_body_instr=42, nested_prob=0.33, loads_per_segment=2, stores_per_segment=1, repeat_prob=0.55, phase_len=48, phase_set=3, app_phase_fns=40,
    ),
    RequestClass(
        "Catalog", weight=0.22, segments=150, segment_instr=35, call_prob=0.88,
        lib_body_instr=42, nested_prob=0.33, loads_per_segment=2, stores_per_segment=1, repeat_prob=0.55, phase_len=48, phase_set=3, app_phase_fns=40,
    ),
    RequestClass(
        "FileCatalog", weight=0.18, segments=140, segment_instr=34, call_prob=0.90,
        lib_body_instr=40, nested_prob=0.32, loads_per_segment=3, stores_per_segment=1, repeat_prob=0.55, phase_len=48, phase_set=3, app_phase_fns=40,
    ),
    RequestClass(
        "File", weight=0.16, segments=110, segment_instr=36, call_prob=0.86,
        lib_body_instr=44, nested_prob=0.30, loads_per_segment=3, stores_per_segment=1, repeat_prob=0.55, phase_len=48, phase_set=3, app_phase_fns=40,
    ),
    RequestClass(
        "Index", weight=0.14, segments=130, segment_instr=35, call_prob=0.89,
        lib_body_instr=41, nested_prob=0.34, loads_per_segment=2, stores_per_segment=1, repeat_prob=0.55, phase_len=48, phase_set=3, app_phase_fns=40,
    ),
    RequestClass(
        "Search", weight=0.12, segments=260, segment_instr=36, call_prob=0.88,
        lib_body_instr=43, nested_prob=0.35, loads_per_segment=3, stores_per_segment=2, repeat_prob=0.55, phase_len=48, phase_set=3, app_phase_fns=40,
    ),
)

#: The Apache + PHP link set.  ``import_pairs`` counts each library's own
#: exercised PLT entries (library-to-library calls); together with the
#: app's 300 imports the design universe is 501 distinct trampolines.
LIBRARIES = (
    LibrarySpec("libc.so", n_functions=900, function_size=224, import_pairs=0, ifunc_fraction=0.05),
    LibrarySpec("libphp.so", n_functions=380, function_size=288, import_pairs=60),
    LibrarySpec("libapr.so", n_functions=160, function_size=224, import_pairs=30),
    LibrarySpec("libaprutil.so", n_functions=120, function_size=224, import_pairs=25),
    LibrarySpec("libssl.so", n_functions=140, function_size=256, import_pairs=20),
    LibrarySpec("libcrypto.so", n_functions=260, function_size=256, import_pairs=16),
    LibrarySpec("libxml2.so", n_functions=220, function_size=256, import_pairs=20),
    LibrarySpec("libz.so", n_functions=60, function_size=224, import_pairs=10),
    LibrarySpec("libpcre.so", n_functions=50, function_size=256, import_pairs=10),
    LibrarySpec("libm.so", n_functions=90, function_size=160, import_pairs=10),
)


def config(seed: int = 2015) -> WorkloadConfig:
    """The calibrated Apache/SPECweb workload configuration."""
    return WorkloadConfig(
        name="apache",
        libraries=LIBRARIES,
        request_classes=REQUEST_CLASSES,
        app_functions=1400,
        app_function_size=480,
        app_import_pairs=300,
        # A steep core: most requests run the same library-call sequence.
        profile=PopularityProfile(core_size=150, core_mass=0.85, zipf_s=1.1),
        lib_profile=PopularityProfile(core_size=8, core_mass=0.85, zipf_s=1.0),
        data_working_set=512 * 1024,
        request_local_bytes=24 * 1024,
        context_switch_interval=1_500_000,
        seed=seed,
    )
