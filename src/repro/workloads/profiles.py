"""Library-call popularity profiles.

Figure 4 of the paper shows per-workload trampoline frequency curves with
two regimes: a *core* of library calls exercised for essentially every
request (the steep plateau-and-cutoff of Apache and Memcached) and a
Zipf-like tail of rarer calls (the shallow slope of Firefox).  A
:class:`PopularityProfile` parameterises that mixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class PopularityProfile:
    """Mixture of a near-uniform core and a Zipf tail.

    Attributes:
        core_size: number of calls in the per-request core set.
        core_mass: probability mass given to the core (uniform within it).
        zipf_s: Zipf exponent of the tail (smaller = shallower curve).
    """

    core_size: int = 0
    core_mass: float = 0.0
    zipf_s: float = 1.0

    def __post_init__(self) -> None:
        if self.core_size < 0:
            raise ConfigError("core_size must be non-negative")
        if not 0.0 <= self.core_mass < 1.0:
            raise ConfigError("core_mass must be in [0, 1)")
        if self.core_size > 0 and self.core_mass == 0.0:
            raise ConfigError("a non-empty core needs positive core_mass")
        if self.zipf_s <= 0:
            raise ConfigError("zipf_s must be positive")

    def weights(self, universe: int) -> np.ndarray:
        """Sampling weights (summing to 1) for a ranked universe."""
        if universe < 1:
            raise ConfigError("universe must contain at least one call")
        core = min(self.core_size, universe)
        out = np.zeros(universe, dtype=np.float64)
        tail = universe - core
        if core and tail:
            out[:core] = self.core_mass / core
            ranks = np.arange(1, tail + 1, dtype=np.float64)
            tail_w = ranks**-self.zipf_s
            out[core:] = (1.0 - self.core_mass) * tail_w / tail_w.sum()
        elif core:
            out[:core] = 1.0 / core
        else:
            ranks = np.arange(1, universe + 1, dtype=np.float64)
            tail_w = ranks**-self.zipf_s
            out[:] = tail_w / tail_w.sum()
        return out


class WeightedSampler:
    """Draws ranked indices according to a popularity profile.

    Sampling uses an inverse-CDF lookup on a cached cumulative table,
    giving O(log n) draws from a caller-supplied ``numpy`` generator.
    """

    def __init__(self, weights: np.ndarray) -> None:
        if weights.ndim != 1 or len(weights) == 0:
            raise ConfigError("weights must be a non-empty 1-D array")
        total = float(weights.sum())
        if total <= 0:
            raise ConfigError("weights must sum to a positive value")
        self._cdf = np.cumsum(weights / total)
        self._cdf[-1] = 1.0

    def __len__(self) -> int:
        return len(self._cdf)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one index."""
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` indices at once."""
        return np.searchsorted(self._cdf, rng.random(n), side="right")
