"""Memcached + CloudSuite workload model.

Calibration targets from the paper:

* Table 2 — 1.75 trampoline instructions PKI (frequent but simple calls);
* Table 3 — only 33 distinct trampolines, the smallest working set in the
  study, with the majority of calls to fewer than 10 library functions;
* Figure 7 — GET/SET request processing-time histograms whose peaks shift
  left under the proposed hardware;
* Section 5.2 — skipping trampolines eliminates all I-TLB conflict misses
  (tiny code footprint; trampoline pages were the conflict source).

Memcached is multithreaded (not prefork), so the software patching
baseline can share patched pages across threads — noted for Section 5.5.
"""

from __future__ import annotations

from repro.workloads.base import LibrarySpec, RequestClass, WorkloadConfig
from repro.workloads.profiles import PopularityProfile

PAPER_TRAMPOLINE_PKI = 1.75
PAPER_DISTINCT_TRAMPOLINES = 33
PREFORK = False

#: GET dominates the CloudSuite mix; SET requests are larger.
REQUEST_CLASSES = (
    RequestClass(
        "GET", weight=0.9, segments=24, segment_instr=130, call_prob=0.26,
        lib_body_instr=38, nested_prob=0.12, loads_per_segment=3, stores_per_segment=1, phase_len=12, phase_set=2, app_phase_fns=26,
    ),
    RequestClass(
        "SET", weight=0.1, segments=30, segment_instr=140, call_prob=0.26,
        lib_body_instr=40, nested_prob=0.12, loads_per_segment=2, stores_per_segment=3, phase_len=12, phase_set=2, app_phase_fns=26,
    ),
)

LIBRARIES = (
    LibrarySpec("libc.so", n_functions=900, function_size=224, import_pairs=0, ifunc_fraction=0.05),
    LibrarySpec("libevent.so", n_functions=90, function_size=224, import_pairs=7),
    LibrarySpec("libpthread.so", n_functions=60, function_size=160, import_pairs=0),
)


def config(seed: int = 1415) -> WorkloadConfig:
    """The calibrated Memcached/CloudSuite workload configuration."""
    return WorkloadConfig(
        name="memcached",
        libraries=LIBRARIES,
        request_classes=REQUEST_CLASSES,
        app_functions=160,
        app_function_size=448,
        app_import_pairs=26,
        # Nearly all mass on a tiny core (<10 hot functions).
        profile=PopularityProfile(core_size=9, core_mass=0.88, zipf_s=1.1),
        lib_profile=PopularityProfile(core_size=3, core_mass=0.85, zipf_s=1.0),
        data_working_set=1 << 20,  # the object store dominates data misses
        request_local_bytes=8 * 1024,
        context_switch_interval=1_200_000,
        seed=seed,
    )
