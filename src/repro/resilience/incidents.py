"""Unified incident log: one vocabulary for every campaign anomaly.

An :class:`Incident` is the structured record of something that went
wrong (or was healed) while campaign infrastructure was running: a
corrupted checkpoint, a dead worker, a backend divergence.  Incidents are
*diagnostics, not results* — they never change simulated numbers, only
how the harness reacts — so the recorder is deliberately permissive:
recording can never raise into the code path that is busy recovering.

The :class:`IncidentRecorder` is wired into the observability layer when
one is active: each record bumps ``incidents.total`` and a per-kind
``incidents.<kind>`` counter on the metrics registry and lands as an
instant event on the tracer, so a Perfetto trace of a degraded campaign
shows exactly when each anomaly struck.

Logs are exported as JSON lines (one incident per line) and validated by
:func:`validate_incident_log` — the ``incidents`` CLI subcommand and the
CI ``resilience-smoke`` job both go through it.
"""

from __future__ import annotations

import enum
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Schema version stamped on every serialised incident.
INCIDENT_SCHEMA_VERSION = 1

#: Allowed severities, mildest first.
SEVERITIES = ("info", "warning", "error")


class IncidentKind(enum.Enum):
    """Taxonomy of campaign anomalies (mirrors the errors.py hierarchy)."""

    #: A machine checkpoint failed integrity validation (truncated,
    #: bit-flipped, wrong schema version); treated as a cache miss and
    #: re-simulated from the trace.
    CHECKPOINT_CORRUPT = "checkpoint_corrupt"
    #: A campaign resume checkpoint failed validation; its entries are
    #: requeued instead of trusted.
    CAMPAIGN_CHECKPOINT_CORRUPT = "campaign_checkpoint_corrupt"
    #: A serialised trace artifact failed to decode.
    TRACE_CORRUPT = "trace_corrupt"
    #: A supervised worker process died without delivering its outcome.
    WORKER_DEATH = "worker_death"
    #: A supervised worker missed its heartbeat deadline and was killed.
    WORKER_HANG = "worker_hang"
    #: A shard was requeued (with backoff) after a worker failure.
    SHARD_REQUEUED = "shard_requeued"
    #: A shard exhausted its failure budget and was quarantined; the
    #: campaign completes degraded, with a partial-result manifest.
    SHARD_QUARANTINED = "shard_quarantined"
    #: A dead worker's completed outcome was salvaged from its spill
    #: checkpoint instead of being re-run.
    SHARD_SALVAGED = "shard_salvaged"
    #: The watchdog caught the fast backend diverging from the reference.
    BACKEND_DIVERGENCE = "backend_divergence"
    #: The run switched to the reference backend after a divergence.
    BACKEND_FALLBACK = "backend_fallback"
    #: The chaos oracle observed a stale-target violation.
    ORACLE_VIOLATION = "oracle_violation"
    #: A shard lease expired (worker crash, hang or partition); the shard
    #: was requeued with backoff.
    LEASE_EXPIRED = "lease_expired"
    #: A manager journal record (or the snapshot) failed validation on
    #: recovery; the affected state is rebuilt from the result store or
    #: requeued, never trusted.
    JOURNAL_CORRUPT = "journal_corrupt"
    #: A stored shard result failed integrity validation; treated as a
    #: miss and recomputed.
    RESULT_CORRUPT = "result_corrupt"
    #: Two completions of the same config hash disagreed; the first
    #: stored result wins (determinism means this indicates a bug or a
    #: diverged-backend marker, never silent corruption of aggregates).
    RESULT_CONFLICT = "result_conflict"
    #: The campaign manager rebuilt in-flight campaigns from its journal
    #: after a restart.
    MANAGER_RECOVERED = "manager_recovered"
    #: A graceful shutdown (SIGTERM/SIGINT) flushed state mid-campaign
    #: instead of dying mid-write.
    SHUTDOWN = "shutdown"
    #: A standby manager lost contact with its leader (health checks
    #: exhausted); promotion follows.
    LEADER_LOST = "leader_lost"
    #: A standby manager promoted itself to leader under a bumped
    #: fencing epoch.
    PROMOTED = "promoted"
    #: A write was rejected because its fencing epoch did not match the
    #: manager's — either a stale worker after a failover, or a revived
    #: stale leader refusing to merge newer-epoch writes.
    FENCED_WRITE = "fenced_write"
    #: The network fault injector perturbed a service request (drop,
    #: delay, duplicate, truncation, 5xx mangle, partition).
    NET_FAULT = "net_fault"
    #: The result-store garbage collector evicted a stored shard result
    #: under the retention policy.
    RESULT_EVICTED = "result_evicted"


_KINDS_BY_VALUE = {k.value: k for k in IncidentKind}


@dataclass(frozen=True)
class Incident:
    """One structured anomaly record.

    ``timestamp`` is host wall-clock time (diagnostics only — incident
    logs are never part of a determinism-checked artifact).  ``context``
    holds JSON-safe details: shard key, file path, stream position, ...
    """

    kind: str
    message: str
    severity: str = "error"
    context: dict = field(default_factory=dict)
    timestamp: float = 0.0

    def as_dict(self) -> dict:
        return {
            "schema_version": INCIDENT_SCHEMA_VERSION,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "context": self.context,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Incident":
        problems = _incident_problems(data)
        if problems:
            raise ValueError(f"invalid incident record: {'; '.join(problems)}")
        return cls(
            kind=data["kind"],
            message=data["message"],
            severity=data["severity"],
            context=dict(data.get("context", {})),
            timestamp=float(data.get("timestamp", 0.0)),
        )


def _incident_problems(data: object) -> list[str]:
    """Schema problems of one deserialised incident record."""
    if not isinstance(data, dict):
        return [f"not an object: {type(data).__name__}"]
    problems = []
    if data.get("schema_version") != INCIDENT_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data.get('schema_version')!r} "
            f"(expected {INCIDENT_SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    if kind not in _KINDS_BY_VALUE:
        problems.append(f"unknown kind {kind!r}")
    if data.get("severity") not in SEVERITIES:
        problems.append(f"severity {data.get('severity')!r} not in {SEVERITIES}")
    if not isinstance(data.get("message"), str) or not data.get("message"):
        problems.append("message missing or empty")
    if "context" in data and not isinstance(data["context"], dict):
        problems.append("context is not an object")
    return problems


class IncidentRecorder:
    """Collects incidents; optionally mirrors them into obs metrics/tracer.

    Args:
        metrics: a :class:`repro.obs.metrics.MetricsRegistry` (or None).
        tracer: a :class:`repro.obs.tracer.Tracer` (or None).
        bus: a :class:`repro.obs.events.EventBus` (or None) — every
            incident also lands on the bus as an ``incident`` event, so
            anything that records through this recorder (the supervisor,
            the divergence watchdog, the campaign manager) shows up in
            the live ``/events`` stream without knowing the bus exists.
        clock: timestamp source (overridable for deterministic tests).
    """

    def __init__(self, metrics=None, tracer=None, bus=None, clock=time.time) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.bus = bus
        self._clock = clock
        self.incidents: list[Incident] = []

    def __len__(self) -> int:
        return len(self.incidents)

    def record(
        self,
        kind: IncidentKind | str,
        message: str,
        severity: str = "error",
        **context,
    ) -> Incident:
        """Record one incident (and mirror it into obs, when wired)."""
        kind_value = kind.value if isinstance(kind, IncidentKind) else str(kind)
        if severity not in SEVERITIES:
            severity = "error"
        incident = Incident(
            kind=kind_value,
            message=message,
            severity=severity,
            context={k: v for k, v in context.items() if v is not None},
            timestamp=float(self._clock()),
        )
        self._absorb(incident)
        return incident

    def _absorb(self, incident: Incident) -> None:
        self.incidents.append(incident)
        if self.metrics is not None:
            self.metrics.counter("incidents.total").inc()
            self.metrics.counter(f"incidents.{incident.kind}").inc()
        if self.tracer is not None:
            self.tracer.instant(
                f"incident:{incident.kind}",
                category="incident",
                severity=incident.severity,
                message=incident.message,
                **incident.context,
            )
        if self.bus is not None:
            ctx = incident.context
            self.bus.emit(
                "incident",
                incident.message,
                severity=incident.severity,
                campaign_id=str(ctx.get("campaign_id", "")),
                shard_key=str(ctx.get("key", ctx.get("shard_key", ""))),
                worker_id=str(ctx.get("worker_id", "")),
                incident_kind=incident.kind,
            )

    def extend_dicts(self, records: list[dict] | None) -> int:
        """Merge serialised incidents (from a worker process); returns the
        number absorbed.  Invalid records are dropped — merging a log must
        never crash the merger."""
        absorbed = 0
        for data in records or ():
            try:
                self._absorb(Incident.from_dict(data))
                absorbed += 1
            except (ValueError, TypeError, KeyError):
                continue
        return absorbed

    def counts(self) -> dict[str, int]:
        """Incident count per kind (sorted keys, JSON-safe)."""
        out: dict[str, int] = {}
        for incident in self.incidents:
            out[incident.kind] = out.get(incident.kind, 0) + 1
        return dict(sorted(out.items()))

    def as_dicts(self) -> list[dict]:
        return [i.as_dict() for i in self.incidents]

    # ------------------------------------------------------------- export

    def write_jsonl(self, path: str | Path) -> Path:
        """Atomically write the incident log as JSON lines.

        The temp file comes from ``mkstemp`` (unique per writer), so two
        processes exporting to the same path cannot race on a shared
        ``.tmp`` name — the last rename wins and both files are intact.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = "".join(
            json.dumps(i.as_dict(), sort_keys=True) + "\n" for i in self.incidents
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


def load_incident_log(path: str | Path) -> list[Incident]:
    """Parse a JSONL incident log, raising ``ValueError`` on any bad line."""
    incidents = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        try:
            incidents.append(Incident.from_dict(data))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return incidents


def validate_incident_log(path: str | Path) -> list[str]:
    """Schema problems of a JSONL incident log ([] when valid)."""
    problems: list[str] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON: {exc}")
            continue
        problems.extend(f"line {lineno}: {p}" for p in _incident_problems(data))
    return problems
