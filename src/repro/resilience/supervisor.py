"""Self-healing campaign supervisor: heartbeats, requeue, quarantine, salvage.

The sharded campaign path used to hand its tasks to a bare
``ProcessPoolExecutor`` — a worker that died took its shard's results
with it, and a worker that hung stalled the whole campaign.  The
supervisor replaces the pool with explicitly managed worker processes:

* each shard runs in its own process which emits a **heartbeat** on a
  shared queue every ``heartbeat_interval_s``;
* a worker silent past ``shard_deadline_s`` is declared **hung**, killed
  (SIGKILL) and its shard requeued;
* a worker that **dies** (killed, OOM, segfault) is detected by process
  reaping; before requeueing, the supervisor tries to **salvage** the
  shard's outcome from the integrity-checked spill file the worker writes
  just before reporting — completed work survives the messenger's death;
* every requeue backs off exponentially; a shard failing
  ``max_shard_failures`` times is **quarantined** and the campaign
  completes *degraded* with a partial-result manifest instead of
  crashing;
* every one of those transitions is recorded on the
  :class:`~repro.resilience.incidents.IncidentRecorder`.

The supervisor is deliberately generic: it knows nothing about pairs or
workloads, only ``(key, payload)`` shards and a picklable ``worker_fn``;
``repro.experiments.runner.run_campaign`` supplies both.  A
:class:`FaultPlan` lets tests and the chaos CI job inject worker kills
and hangs deterministically *inside* the worker, so the supervisor's
recovery machinery is exercised through exactly the code paths a real
fault would take.
"""

from __future__ import annotations

import enum
import os
import re
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import multiprocessing

from repro.errors import CheckpointCorruptionError, SupervisorError
from repro.resilience.incidents import IncidentKind
from repro.resilience.integrity import read_artifact, write_artifact

#: Schema stamped on worker spill files (see :mod:`repro.resilience.integrity`).
SPILL_SCHEMA = "repro.shard-spill"
SPILL_SCHEMA_VERSION = 1

#: Outcome keys preserved in a spill file (the JSON-safe subset; worker
#: metrics/tracer state is process-local and not salvageable).
SPILL_OUTCOME_KEYS = ("key", "attempts", "retries", "failed", "summary", "incidents")


class ShardState(enum.Enum):
    """Lifecycle of one supervised shard."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    SALVAGED = "salvaged"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision knobs (defaults sized for real campaigns; tests shrink
    the deadline to keep hang detection fast)."""

    #: A worker silent for this long is declared hung and killed.
    shard_deadline_s: float = 120.0
    #: Interval between worker heartbeats.
    heartbeat_interval_s: float = 0.25
    #: Process-level failures (death or hang) before a shard is
    #: quarantined.  Worker-internal retries are separate (RetryPolicy).
    max_shard_failures: int = 3
    #: Exponential requeue backoff: base * factor ** (failures - 1).
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    #: Supervisor monitor loop poll interval.
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.shard_deadline_s <= 0:
            raise SupervisorError(
                f"shard_deadline_s must be positive, got {self.shard_deadline_s}"
            )
        if self.heartbeat_interval_s <= 0:
            raise SupervisorError(
                f"heartbeat_interval_s must be positive, got {self.heartbeat_interval_s}"
            )
        if self.max_shard_failures < 1:
            raise SupervisorError(
                f"max_shard_failures must be >= 1, got {self.max_shard_failures}"
            )

    def backoff(self, failures: int) -> float:
        return self.backoff_base_s * self.backoff_factor ** max(0, failures - 1)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for supervised workers.

    Matching is by substring on the shard key.  ``*_attempts`` bounds how
    many attempts the fault fires on (1 = only the first), so a killed
    shard succeeds on requeue and the test can assert full recovery.
    """

    #: SIGKILL the worker for matching shards.
    kill_match: str = ""
    kill_attempts: int = 1
    #: Kill *after* the spill file is written (exercises salvage) instead
    #: of before any work (exercises requeue).
    kill_after_spill: bool = False
    #: Suppress heartbeats and stall for matching shards (exercises hang
    #: detection).
    hang_match: str = ""
    hang_attempts: int = 1
    #: Force a watchdog divergence for matching shards (consumed by the
    #: experiment runner, not by the supervisor).
    diverge_match: str = ""

    def should_kill(self, key: str, attempt: int) -> bool:
        return bool(self.kill_match) and self.kill_match in key and attempt <= self.kill_attempts

    def should_hang(self, key: str, attempt: int) -> bool:
        return bool(self.hang_match) and self.hang_match in key and attempt <= self.hang_attempts

    def should_diverge(self, key: str) -> bool:
        return bool(self.diverge_match) and self.diverge_match in key


# --------------------------------------------------------------- worker side


def _heartbeat_loop(queue, key: str, interval: float, stop: threading.Event) -> None:
    seq = 0
    while not stop.wait(interval):
        seq += 1
        try:
            queue.put(("hb", key, seq))
        except Exception:
            return


def _worker_main(worker_fn, key, payload, attempt, queue, spill_path, hb_interval, fault_plan):
    """Entry point of one supervised worker process (must be importable)."""
    fault_plan = fault_plan or FaultPlan()
    if fault_plan.should_hang(key, attempt):
        # Simulated wedge: never heartbeat, never finish.  The parent's
        # deadline machinery is the only way out.
        time.sleep(3600)
        return
    if fault_plan.should_kill(key, attempt) and not fault_plan.kill_after_spill:
        os.kill(os.getpid(), signal.SIGKILL)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop, args=(queue, key, hb_interval, stop), daemon=True
    )
    beat.start()
    try:
        try:
            outcome = worker_fn(payload)
        except BaseException as exc:  # worker_fn handles retries; this is a bug escape
            queue.put(("error", key, f"{type(exc).__name__}: {exc}"))
            return
        if spill_path is not None:
            spill = {
                "key": key,
                "attempt": attempt,
                "outcome": {k: outcome.get(k) for k in SPILL_OUTCOME_KEYS if k in outcome},
            }
            write_artifact(spill_path, spill, SPILL_SCHEMA, SPILL_SCHEMA_VERSION)
        if fault_plan.should_kill(key, attempt) and fault_plan.kill_after_spill:
            os.kill(os.getpid(), signal.SIGKILL)
        queue.put(("done", key, outcome))
    finally:
        stop.set()


# --------------------------------------------------------------- parent side


@dataclass
class _Shard:
    key: str
    payload: object
    state: ShardState = ShardState.PENDING
    failures: int = 0
    ready_at: float = 0.0
    last_error: str = ""
    outcome: dict | None = None


@dataclass
class _Handle:
    shard: _Shard
    process: multiprocessing.Process
    attempt: int
    last_heartbeat: float
    spill_path: Path
    done: bool = False


@dataclass
class SupervisorReport:
    """What the supervised campaign produced.

    ``outcomes`` holds one outcome dict per completed-or-salvaged shard;
    ``quarantined`` maps shard key to failure details for shards that
    exhausted their budget.  ``ok`` means nothing was quarantined.
    """

    outcomes: dict = field(default_factory=dict)
    quarantined: dict = field(default_factory=dict)
    states: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.quarantined


def _spill_name(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.=-]+", "_", key) + ".spill.json"


class CampaignSupervisor:
    """Runs ``(key, payload)`` shards under supervision (see module doc).

    Args:
        worker_fn: picklable callable, ``payload -> outcome dict``.
        shards: ordered ``(key, payload)`` pairs; keys must be unique.
        jobs: maximum concurrently running worker processes.
        policy: deadlines / retry budget / backoff.
        recorder: optional incident recorder.
        fault_plan: optional deterministic fault injection.
        spill_dir: directory for worker spill files (temp dir by default).
        on_complete: called as ``on_complete(key, outcome)`` the moment a
            shard completes or is salvaged — the runner checkpoints here.
    """

    def __init__(
        self,
        worker_fn,
        shards,
        jobs: int = 2,
        policy: SupervisorPolicy | None = None,
        recorder=None,
        fault_plan: FaultPlan | None = None,
        spill_dir: str | Path | None = None,
        on_complete=None,
    ) -> None:
        self.worker_fn = worker_fn
        self.shards = [_Shard(key=k, payload=p) for k, p in shards]
        keys = [s.key for s in self.shards]
        if len(set(keys)) != len(keys):
            raise SupervisorError("shard keys must be unique")
        if jobs < 1:
            raise SupervisorError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.policy = policy or SupervisorPolicy()
        self.recorder = recorder
        self.fault_plan = fault_plan
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.on_complete = on_complete
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    # ------------------------------------------------------------ lifecycle

    def run(self) -> SupervisorReport:
        if self.spill_dir is None:
            import tempfile

            self._tmp = tempfile.TemporaryDirectory(prefix="repro-spill-")
            self.spill_dir = Path(self._tmp.name)
        self.spill_dir.mkdir(parents=True, exist_ok=True)

        queue = self._ctx.Queue()
        pending: deque[_Shard] = deque(self.shards)
        running: dict[str, _Handle] = {}
        report = SupervisorReport()

        try:
            while pending or running:
                now = time.monotonic()
                self._launch_ready(pending, running, queue, now)
                self._drain_queue(queue, running, pending, report)
                self._check_deadlines(running, pending, report)
                self._reap_dead(running, pending, report)
                if pending and not running:
                    # Everything eligible is in backoff; sleep until the
                    # soonest shard becomes ready.
                    wake = min(s.ready_at for s in pending)
                    delay = max(0.0, wake - time.monotonic())
                    time.sleep(min(delay, self.policy.poll_interval_s * 4) or 0.001)
        finally:
            for handle in running.values():
                self._kill(handle)
            queue.close()
            queue.join_thread()

        for shard in self.shards:
            report.states[shard.key] = shard.state
        return report

    # ------------------------------------------------------------ internals

    def _launch_ready(self, pending, running, queue, now) -> None:
        rotated = 0
        while pending and len(running) < self.jobs and rotated < len(pending):
            shard = pending[0]
            if shard.ready_at > now:
                pending.rotate(-1)
                rotated += 1
                continue
            pending.popleft()
            rotated = 0
            attempt = shard.failures + 1
            spill_path = self.spill_dir / _spill_name(shard.key)
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    self.worker_fn,
                    shard.key,
                    shard.payload,
                    attempt,
                    queue,
                    str(spill_path),
                    self.policy.heartbeat_interval_s,
                    self.fault_plan,
                ),
                daemon=True,
            )
            process.start()
            shard.state = ShardState.RUNNING
            running[shard.key] = _Handle(
                shard=shard,
                process=process,
                attempt=attempt,
                last_heartbeat=time.monotonic(),
                spill_path=spill_path,
            )

    def _drain_queue(self, queue, running, pending, report) -> None:
        deadline = time.monotonic() + self.policy.poll_interval_s
        while True:
            remaining = deadline - time.monotonic()
            try:
                message = queue.get(timeout=max(0.0, remaining))
            except Exception:  # Empty (and spurious queue teardown races)
                return
            tag, key = message[0], message[1]
            handle = running.get(key)
            if handle is None:
                continue
            if tag == "hb":
                handle.last_heartbeat = time.monotonic()
            elif tag == "done":
                handle.last_heartbeat = time.monotonic()
                handle.done = True
                self._complete(handle, message[2], running, report, salvaged=False)
            elif tag == "error":
                handle.last_heartbeat = time.monotonic()
                handle.done = True
                handle.shard.last_error = str(message[2])
                handle.process.join(timeout=5.0)
                del running[key]
                self._fail(
                    handle.shard,
                    pending,
                    report,
                    IncidentKind.WORKER_DEATH,
                    f"worker for shard {key} raised: {message[2]}",
                )
            if remaining <= 0:
                return

    def _check_deadlines(self, running, pending, report) -> None:
        now = time.monotonic()
        for key in list(running):
            handle = running[key]
            if handle.done:
                continue
            silent = now - handle.last_heartbeat
            if silent <= self.policy.shard_deadline_s:
                continue
            self._kill(handle)
            del running[key]
            if not self._try_salvage(handle, running, report):
                self._fail(
                    handle.shard,
                    pending,
                    report,
                    IncidentKind.WORKER_HANG,
                    f"worker for shard {key} silent for {silent:.1f}s "
                    f"(deadline {self.policy.shard_deadline_s:.1f}s); killed",
                    pid=handle.process.pid,
                )

    def _reap_dead(self, running, pending, report) -> None:
        for key in list(running):
            handle = running[key]
            if handle.done or handle.process.is_alive():
                continue
            handle.process.join(timeout=5.0)
            del running[key]
            if self._try_salvage(handle, running, report):
                continue
            self._fail(
                handle.shard,
                pending,
                report,
                IncidentKind.WORKER_DEATH,
                f"worker for shard {key} died with exit code "
                f"{handle.process.exitcode} before delivering its outcome",
                pid=handle.process.pid,
                exitcode=handle.process.exitcode,
            )

    def _try_salvage(self, handle, running, report) -> bool:
        """Recover a dead worker's outcome from its spill file, if intact."""
        try:
            spill = read_artifact(handle.spill_path, SPILL_SCHEMA, SPILL_SCHEMA_VERSION)
        except CheckpointCorruptionError:
            return False
        if spill.get("key") != handle.shard.key:
            return False
        outcome = dict(spill.get("outcome") or {})
        if outcome.get("summary") is None or outcome.get("failed"):
            return False
        outcome.setdefault("key", handle.shard.key)
        outcome["salvaged"] = True
        if self.recorder is not None:
            self.recorder.record(
                IncidentKind.SHARD_SALVAGED,
                f"worker for shard {handle.shard.key} died after finishing; "
                f"outcome salvaged from its spill checkpoint",
                severity="warning",
                key=handle.shard.key,
                attempt=handle.attempt,
            )
        self._complete(handle, outcome, running, report, salvaged=True)
        return True

    def _complete(self, handle, outcome, running, report, salvaged: bool) -> None:
        shard = handle.shard
        shard.state = ShardState.SALVAGED if salvaged else ShardState.COMPLETED
        shard.outcome = outcome
        report.outcomes[shard.key] = outcome
        if not salvaged:
            handle.process.join(timeout=5.0)
            running.pop(shard.key, None)
        try:
            handle.spill_path.unlink()
        except OSError:
            pass
        if self.on_complete is not None:
            self.on_complete(shard.key, outcome)

    def _fail(self, shard, pending, report, kind, message, **context) -> None:
        shard.failures += 1
        shard.last_error = message
        if self.recorder is not None:
            self.recorder.record(
                kind,
                message,
                key=shard.key,
                attempt=shard.failures,
                **context,
            )
        if shard.failures >= self.policy.max_shard_failures:
            shard.state = ShardState.QUARANTINED
            report.quarantined[shard.key] = {
                "failures": shard.failures,
                "last_error": shard.last_error,
            }
            if self.recorder is not None:
                self.recorder.record(
                    IncidentKind.SHARD_QUARANTINED,
                    f"shard {shard.key} quarantined after {shard.failures} "
                    f"process-level failures; campaign will complete degraded",
                    key=shard.key,
                    failures=shard.failures,
                )
            return
        backoff = self.policy.backoff(shard.failures)
        shard.state = ShardState.PENDING
        shard.ready_at = time.monotonic() + backoff
        pending.append(shard)
        if self.recorder is not None:
            self.recorder.record(
                IncidentKind.SHARD_REQUEUED,
                f"shard {shard.key} requeued (failure {shard.failures}/"
                f"{self.policy.max_shard_failures}, backoff {backoff:.2f}s)",
                severity="warning",
                key=shard.key,
                failures=shard.failures,
                backoff_s=backoff,
            )

    def _kill(self, handle) -> None:
        process = handle.process
        if process.is_alive():
            try:
                process.kill()
            except (OSError, ValueError, AttributeError):
                try:
                    os.kill(process.pid, signal.SIGKILL)
                except OSError:
                    pass
        process.join(timeout=5.0)
