"""Runtime divergence watchdog: verify the fast backend *while it runs*.

The batched backend's equivalence with the reference interpreter is
enforced offline by :mod:`repro.difftest`; the watchdog brings a slice of
that guarantee into production runs.  It drives the batched backend over
the stream while teeing every consumed event into a buffer; every
``check_every`` sync points it advances a *shadow* reference CPU over the
buffered events to the same stream position and compares a cheap
:func:`snapshot_hash` of both machines.

On a mismatch the watchdog:

1. records a ``backend_divergence`` incident (positions, diverging
   component names);
2. *falls back*: the remainder of the run — and every later stream of the
   same watchdog — executes on the shadow reference CPU, whose state at
   the detection point is reference-truth by construction;
3. marks itself ``diverged`` so callers tag the result and published
   numbers are never emitted from a diverged backend.

The shadow consumes every event (reference state is cumulative), so a
watched run costs roughly one reference run *in addition to* the batched
run; ``check_every`` controls only how often hashes are compared and how
tight the detection window is.  That price buys runtime verification —
use it for long campaigns where silent drift would poison published
numbers, not for quick interactive runs.

A final cross-check always runs at end of stream, so when ``run`` returns
without having diverged, the two machines are *verified* equal at the
stream boundary — the invariant the experiment runner relies on when it
snapshots counters between warm-up and measurement phases.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.resilience.incidents import IncidentKind


@dataclass(frozen=True)
class WatchdogPolicy:
    """Knobs for one watched run.

    Attributes:
        check_every: sync points (batch boundaries) between hash
            cross-checks; 0 disables the watchdog entirely.
        force_diverge_at_check: testing/chaos hook — pretend the Nth
            cross-check mismatched even when the hashes agree (1-based;
            0 disables).  The fallback path then runs for real, and
            because the machines actually agreed, the final counters
            must equal an unwatched reference run — which is exactly
            what the resilience tests assert.
    """

    check_every: int = 8
    force_diverge_at_check: int = 0

    @property
    def enabled(self) -> bool:
        return self.check_every > 0

    def __post_init__(self) -> None:
        if self.check_every < 0:
            raise ValueError(f"check_every must be >= 0, got {self.check_every}")
        if self.force_diverge_at_check < 0:
            raise ValueError(
                f"force_diverge_at_check must be >= 0, got {self.force_diverge_at_check}"
            )


def snapshot_hash(cpu) -> str:
    """Cheap digest of a full :meth:`CPU.snapshot` payload.

    Covers every counter, structure entry, LRU order, the float cycle
    clock, mechanism state and marks — any single-bit divergence between
    two machines changes the hash.
    """
    payload = json.dumps(cpu.snapshot(), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def _diverging_components(reference, fast) -> list[str]:
    """Names of snapshot components that differ (for the incident record)."""
    ref_snap, fast_snap = reference.snapshot(), fast.snapshot()
    names = []
    ref_components = ref_snap.get("components", {})
    fast_components = fast_snap.get("components", {})
    for name in sorted(set(ref_components) | set(fast_components)):
        if ref_components.get(name) != fast_components.get(name):
            names.append(name)
    for key in sorted(set(ref_snap) | set(fast_snap) - {"components"}):
        if key != "components" and ref_snap.get(key) != fast_snap.get(key):
            names.append(key)
    return names


class _Diverged(Exception):
    """Internal control flow: abandon the batched run at the bad sync."""

    def __init__(self, position: int) -> None:
        self.position = position


class DivergenceWatchdog:
    """Cross-checks a batched-backend CPU against a shadow reference CPU.

    Args:
        primary: the CPU driven by the batched backend.
        shadow: an identically configured CPU advanced by the reference
            interpreter (must share *no* mutable state with ``primary``).
        policy: check cadence and test hooks.
        recorder: optional :class:`IncidentRecorder` for divergence and
            fallback incidents.
        batch_events: batch size of the underlying batched backend.
        label: free-form run label carried into incident context.
    """

    def __init__(
        self,
        primary,
        shadow,
        policy: WatchdogPolicy | None = None,
        recorder=None,
        batch_events: int = 4096,
        label: str = "run",
    ) -> None:
        self.primary = primary
        self.shadow = shadow
        self.policy = policy or WatchdogPolicy()
        self.recorder = recorder
        self.batch_events = batch_events
        self.label = label
        #: True once any cross-check mismatched; results must then come
        #: from :attr:`active_cpu` (the shadow) only.
        self.diverged = False
        #: Stream position (events into the *current* stream) where the
        #: divergence was detected, or None.
        self.divergence_position: int | None = None
        #: Total cross-checks performed across all streams.
        self.checks = 0
        #: Total stream events retired across all streams.
        self.events_run = 0

    @property
    def active_cpu(self):
        """The CPU whose state is authoritative for results."""
        return self.shadow if self.diverged else self.primary

    @property
    def backend_used(self) -> str:
        return "reference" if self.diverged else "batched"

    def finalize(self):
        """Finalize both machines; returns the authoritative counters."""
        self.primary.finalize()
        if self.shadow is not self.primary:
            self.shadow.finalize()
        return self.active_cpu.counters

    # ------------------------------------------------------------------ run

    def run(self, events):
        """Process one event stream under watchdog supervision.

        Returns the authoritative (live) counters.  After a divergence —
        in this stream or a previous one — the whole stream runs on the
        shadow reference CPU.
        """
        if self.diverged or not self.policy.enabled:
            cpu = self.active_cpu
            counters = cpu.run(events)
            return counters

        stream = iter(events)
        buffer: list = []

        def tee():
            for ev in stream:
                buffer.append(ev)
                yield ev

        shadow_done = 0
        syncs_since = 0

        def cross_check(position: int) -> None:
            nonlocal shadow_done
            self.checks += 1
            if position > shadow_done:
                self.shadow.run(buffer[shadow_done:position])
                shadow_done = position
            forced = self.policy.force_diverge_at_check == self.checks
            if snapshot_hash(self.primary) != snapshot_hash(self.shadow) or forced:
                self.diverged = True
                self.divergence_position = position
                if self.recorder is not None:
                    self.recorder.record(
                        IncidentKind.BACKEND_DIVERGENCE,
                        f"batched backend diverged from reference at stream "
                        f"position {position} (check #{self.checks})",
                        label=self.label,
                        position=position,
                        check=self.checks,
                        forced=forced,
                        components=_diverging_components(self.shadow, self.primary),
                    )
                raise _Diverged(position)

        def sync_hook(position: int) -> None:
            nonlocal syncs_since
            syncs_since += 1
            if syncs_since >= self.policy.check_every:
                syncs_since = 0
                cross_check(position)

        # Imported lazily: uarch.machine imports this package for its
        # integrity envelope, so a module-level backend import would tie
        # the two packages into an initialisation-order knot.
        from repro.uarch.backend import BatchedBackend

        backend = BatchedBackend(self.primary, self.batch_events)
        try:
            backend.run(tee(), sync_hook=sync_hook)
        except _Diverged as caught:
            # The shadow holds reference-truth at the detection point; it
            # finishes the stream (buffered remainder first, then whatever
            # the batched backend never pulled) and owns all later streams.
            if self.recorder is not None:
                self.recorder.record(
                    IncidentKind.BACKEND_FALLBACK,
                    f"run continues on the reference backend from stream "
                    f"position {caught.position}",
                    severity="warning",
                    label=self.label,
                    position=caught.position,
                )
            if len(buffer) > caught.position:
                self.shadow.run(buffer[caught.position:])
            counters = self.shadow.run(stream)
            self.events_run += len(buffer)
            return counters

        # Stream completed on the fast path: sync the shadow to the end
        # and make the boundary equality *verified*, not assumed.
        if len(buffer) > shadow_done:
            self.shadow.run(buffer[shadow_done:])
            shadow_done = len(buffer)
        self.events_run += len(buffer)
        if snapshot_hash(self.primary) != snapshot_hash(self.shadow):
            self.diverged = True
            self.divergence_position = len(buffer)
            if self.recorder is not None:
                self.recorder.record(
                    IncidentKind.BACKEND_DIVERGENCE,
                    f"batched backend diverged from reference at end of "
                    f"stream (position {len(buffer)})",
                    label=self.label,
                    position=len(buffer),
                    check=self.checks,
                    forced=False,
                    components=_diverging_components(self.shadow, self.primary),
                )
                self.recorder.record(
                    IncidentKind.BACKEND_FALLBACK,
                    "results taken from the reference shadow machine",
                    severity="warning",
                    label=self.label,
                    position=len(buffer),
                )
            return self.shadow.counters
        return self.primary.counters
