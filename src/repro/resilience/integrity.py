"""Integrity-checked JSON artifacts: checksummed, versioned, atomic.

Every persistent artifact the campaign layer trusts across process
boundaries — machine checkpoints, campaign resume checkpoints, shard
spill files, manifests — is written through this module.  The on-disk
form is an *envelope*::

    {
      "schema": "repro.machine-state",     # artifact family
      "schema_version": 2,                 # family's schema version
      "sha256": "<hex digest>",            # over the canonical payload
      "payload": { ... }                   # the actual content
    }

The checksum is computed over the canonical payload serialisation
(``json.dumps(payload, sort_keys=True)``), so it is independent of the
envelope's own formatting.  Writes are atomic (temp file + ``os.replace``),
so a crash mid-write leaves either the old artifact or none — never a
torn one.  Reads verify the envelope shape, schema name, schema version
and checksum, raising :class:`~repro.errors.CheckpointCorruptionError`
with a machine-readable ``reason`` on any failure; owners translate that
into "rebuild" (re-simulate a machine checkpoint, requeue campaign
entries) and record an incident, rather than trusting corrupt bytes.

Nothing in an envelope is time- or host-dependent: two processes writing
the same payload produce byte-identical files, preserving the sharded ==
serial determinism contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.errors import CheckpointCorruptionError

#: Version of the envelope format itself (not of any payload schema).
INTEGRITY_VERSION = 1

_ENVELOPE_KEYS = {"schema", "schema_version", "sha256", "payload"}


def canonical_payload(payload: object) -> str:
    """The canonical serialisation the checksum is computed over."""
    return json.dumps(payload, sort_keys=True)


def payload_checksum(payload: object) -> str:
    """SHA-256 hex digest of the canonical payload serialisation."""
    return hashlib.sha256(canonical_payload(payload).encode()).hexdigest()


def wrap_artifact(payload: object, schema: str, schema_version: int) -> str:
    """Serialise a payload into its envelope text (deterministic bytes)."""
    envelope = {
        "schema": schema,
        "schema_version": schema_version,
        "sha256": payload_checksum(payload),
        "payload": payload,
    }
    return json.dumps(envelope, indent=2, sort_keys=True)


def write_artifact(
    path: str | Path, payload: object, schema: str, schema_version: int
) -> Path:
    """Atomically write an integrity-checked artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = wrap_artifact(payload, schema, schema_version)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def unwrap_artifact(text: str, schema: str, schema_version: int, source: object = None):
    """Validate an envelope's text and return its payload.

    Raises :class:`CheckpointCorruptionError` with ``reason`` one of
    ``not-json | bad-envelope | wrong-schema | wrong-version |
    checksum-mismatch``.
    """
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptionError(
            f"artifact {source or '<text>'} is not valid JSON: {exc}",
            path=source,
            reason="not-json",
        ) from exc
    if not isinstance(envelope, dict) or not _ENVELOPE_KEYS.issubset(envelope):
        missing = sorted(_ENVELOPE_KEYS - set(envelope)) if isinstance(envelope, dict) else []
        raise CheckpointCorruptionError(
            f"artifact {source or '<text>'} has no integrity envelope "
            f"(missing {missing or 'object structure'})",
            path=source,
            reason="bad-envelope",
        )
    if envelope["schema"] != schema:
        raise CheckpointCorruptionError(
            f"artifact {source or '<text>'}: schema {envelope['schema']!r} "
            f"(expected {schema!r})",
            path=source,
            reason="wrong-schema",
        )
    if envelope["schema_version"] != schema_version:
        raise CheckpointCorruptionError(
            f"artifact {source or '<text>'}: schema version "
            f"{envelope['schema_version']!r} (expected {schema_version})",
            path=source,
            reason="wrong-version",
        )
    payload = envelope["payload"]
    digest = payload_checksum(payload)
    if digest != envelope["sha256"]:
        raise CheckpointCorruptionError(
            f"artifact {source or '<text>'}: checksum mismatch "
            f"(stored {str(envelope['sha256'])[:12]}…, computed {digest[:12]}…) — "
            f"content is corrupt",
            path=source,
            reason="checksum-mismatch",
        )
    return payload


def read_artifact(path: str | Path, schema: str, schema_version: int):
    """Read and validate an integrity-checked artifact; returns the payload.

    Raises :class:`CheckpointCorruptionError` — ``reason="missing"`` when
    the file does not exist, ``reason="unreadable"`` when it cannot be
    read at all.  Callers should read-and-catch rather than probe with
    ``exists()`` first: the single attempt has no TOCTOU window against
    concurrent writers or cleaners.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError as exc:
        raise CheckpointCorruptionError(
            f"artifact {path} does not exist", path=path, reason="missing"
        ) from exc
    except OSError as exc:
        raise CheckpointCorruptionError(
            f"artifact {path} unreadable: {exc}", path=path, reason="unreadable"
        ) from exc
    return unwrap_artifact(text, schema, schema_version, source=path)
