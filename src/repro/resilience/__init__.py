"""repro.resilience — self-healing campaign infrastructure.

The paper's mechanism is trustworthy because every speculative skip falls
back to correct baseline behaviour; this package gives the *campaign
infrastructure* the same property.  Three pillars:

* :mod:`repro.resilience.incidents` — a unified incident log: every
  anomaly (corrupt artifact, dead worker, backend divergence) becomes a
  structured :class:`~repro.resilience.incidents.Incident` recorded by an
  :class:`~repro.resilience.incidents.IncidentRecorder` that also feeds
  obs metrics counters and tracer instants;
* :mod:`repro.resilience.integrity` — content-checksummed, schema-versioned
  JSON artifacts written atomically; corrupted or truncated files are
  *detected* (and rebuilt by their owners) instead of trusted;
* :mod:`repro.resilience.supervisor` — explicitly supervised campaign
  worker processes: per-shard heartbeats, hang detection, kill-and-requeue
  with exponential backoff, quarantine after repeated failures, and
  salvage of completed work from a dead worker's spill checkpoint;
* :mod:`repro.resilience.watchdog` — a runtime divergence watchdog that
  cross-checks the batched backend against the reference interpreter at
  sync points and falls back to the reference backend on divergence.

See ``docs/RESILIENCE.md`` for the state machines and policies.
"""

from repro.resilience.incidents import (
    INCIDENT_SCHEMA_VERSION,
    Incident,
    IncidentKind,
    IncidentRecorder,
    validate_incident_log,
)
from repro.resilience.integrity import (
    INTEGRITY_VERSION,
    payload_checksum,
    read_artifact,
    write_artifact,
)
from repro.resilience.supervisor import (
    CampaignSupervisor,
    FaultPlan,
    ShardState,
    SupervisorPolicy,
    SupervisorReport,
)
from repro.resilience.watchdog import (
    DivergenceWatchdog,
    WatchdogPolicy,
    snapshot_hash,
)

__all__ = [
    "CampaignSupervisor",
    "DivergenceWatchdog",
    "FaultPlan",
    "INCIDENT_SCHEMA_VERSION",
    "INTEGRITY_VERSION",
    "Incident",
    "IncidentKind",
    "IncidentRecorder",
    "ShardState",
    "SupervisorPolicy",
    "SupervisorReport",
    "WatchdogPolicy",
    "payload_checksum",
    "read_artifact",
    "snapshot_hash",
    "validate_incident_log",
    "write_artifact",
]
