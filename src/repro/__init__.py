"""repro — a trace-driven reproduction of *Architectural Support for
Dynamic Linking* (Agrawal et al., ASPLOS 2015).

The package models the full stack the paper touches:

* :mod:`repro.linker` — an ELF-like dynamic-linking substrate (PLT/GOT
  geometry, lazy resolver, static linking, software call-site patching);
* :mod:`repro.memory` — page-granular address spaces with fork/CoW;
* :mod:`repro.uarch` — caches, TLBs, BTB, branch predictors and a
  trace-driven CPU front-end model with performance counters;
* :mod:`repro.core` — the paper's contribution: the ABTB, its Bloom
  filter, and the speculative trampoline-skip mechanism;
* :mod:`repro.workloads` — synthetic Apache, Memcached, MySQL and Firefox
  models calibrated to the paper's opportunity study;
* :mod:`repro.experiments` — one runnable experiment per paper table and
  figure, plus a hardened campaign runner (timeout, retry, checkpoint);
* :mod:`repro.chaos` — fault injection (GOT rewrites, ifunc re-selection,
  coherence loss, Bloom/ABTB thrash, trace corruption) audited by a
  stale-target correctness oracle.

Quickstart::

    from repro import quick_comparison
    result = quick_comparison("memcached", n_requests=50)
    print(result["speedup"])
"""

from __future__ import annotations

from repro.core import ABTB, BloomFilter, MechanismConfig, TrampolineSkipMechanism
from repro.trace.engine import LinkMode
from repro.uarch import CPU, CPUConfig, PerfCounters, TimingModel
from repro.workloads import ALL_WORKLOADS, Workload, WorkloadConfig

__version__ = "1.0.0"


def quick_comparison(
    workload: str = "memcached",
    n_requests: int = 50,
    abtb_entries: int = 256,
    seed: int | None = None,
    obs=None,
    backend: str = "reference",
):
    """Run one workload on the base and enhanced CPUs and compare.

    Returns a dict with the two counter bundles, the trampoline skip rate
    and the overall speedup — the package's one-call demo.  Pass an
    :class:`repro.obs.Observability` as ``obs`` to capture traces,
    metric series and hot-trampoline profiles from both runs.  ``backend``
    selects the simulation engine (``"reference"`` or ``"batched"``); an
    ``obs`` session forces the reference interpreter, whose event-by-event
    pacing the instrumentation relies on.
    """
    from repro.uarch.backend import make_runner

    module = ALL_WORKLOADS[workload]
    results = {}
    for label, mech in (
        ("base", None),
        ("enhanced", TrampolineSkipMechanism(MechanismConfig(abtb_entries=abtb_entries))),
    ):
        cfg = module.config() if seed is None else module.config(seed=seed)
        wl = Workload(cfg)
        hooks = obs.hooks() if obs is not None else None
        cpu = CPU(mechanism=mech, hooks=hooks)
        run = make_runner(cpu, backend)
        if obs is not None:
            run = cpu.run
        stream = wl.trace(n_requests)
        if obs is not None:
            obs.attach_workload(wl)
            stream = obs.instrument(stream, cpu, label)
        run(stream)
        if obs is not None:
            obs.finish_run(cpu, label)
        results[label] = cpu.finalize()
    base, enh = results["base"], results["enhanced"]
    skipped = enh.trampolines_skipped
    executed = enh.trampolines_executed
    return {
        "base": base,
        "enhanced": enh,
        "skip_rate": skipped / (skipped + executed) if (skipped + executed) else 0.0,
        "speedup": base.cycles / enh.cycles if enh.cycles else 0.0,
    }


__all__ = [
    "ABTB",
    "ALL_WORKLOADS",
    "BloomFilter",
    "CPU",
    "CPUConfig",
    "LinkMode",
    "MechanismConfig",
    "PerfCounters",
    "TimingModel",
    "TrampolineSkipMechanism",
    "Workload",
    "WorkloadConfig",
    "quick_comparison",
    "__version__",
]
