"""Execution engine: turns library calls into architectural event streams.

The engine knows how a call site reaches a library function under each
linking regime:

* ``DYNAMIC`` — ``call plt_stub`` + ``jmp *GOT`` (the trampoline), with the
  full lazy-resolver detour on the first call per (module, symbol);
* ``STATIC`` — a direct call to the function;
* ``PATCHED`` — the paper's software-emulation baseline: the first
  execution of each call *site* runs the resolver and rewrites the site
  (paying mprotect/patch overhead and privatising the code page), after
  which the site calls directly.

The *enhanced* (proposed-hardware) configuration is not an engine mode:
it runs the same DYNAMIC trace through a CPU equipped with the
trampoline-skip mechanism — exactly how the real hardware would behave.
"""

from __future__ import annotations

import enum
import zlib

from repro.errors import TraceError
from repro.isa.arch import ARCH_PARAMS, Arch
from repro.isa.events import (
    TraceEvent,
    block,
    call_direct,
    call_indirect,
    jmp_direct,
    jmp_indirect,
    load,
    ret,
    store,
)
from repro.linker.dynamic import CallBinding, LinkedProgram
from repro.linker.patcher import CallSitePatcher
from repro.linker.static import StaticProgram
from repro.trace.builder import (
    BatchBuilder,
    K_BLOCK,
    K_CALL_DIRECT,
    K_CALL_INDIRECT,
    K_JMP_INDIRECT,
)

#: Where ld.so's resolver code lives (one page of hot resolver text).
RESOLVER_TEXT_BASE = 0x7FFF_F7DD_0000
#: Data region for symbol tables / hash chains walked by the resolver.
SYMTAB_DATA_BASE = 0x7FFF_F7E4_0000
SYMTAB_DATA_SPAN = 1 << 20
#: Instructions modelling the software patcher's extra work per site
#: (two mprotect syscalls, disassembly checks, bookkeeping).
PATCH_OVERHEAD_INSTRUCTIONS = 2600
#: Return-site displacement: a ``call rel32`` is 5 bytes.
CALL_SITE_LEN = 5


class TraceCursor:
    """A position-tracking, seekable cursor over an event stream.

    Trace generation is stateful (lazy bindings resolve, patchers rewrite
    sites, samplers advance), so resuming a simulation from a checkpoint
    cannot simply *skip* generation — the generator must be advanced to
    the same position.  The cursor makes that explicit: :meth:`drain`
    consumes events without yielding them (advancing generator state at
    generation cost, no simulation cost), and iteration yields the rest
    while tracking the absolute position for later checkpoints.
    """

    def __init__(self, events, base_index: int = 0) -> None:
        self._it = iter(events)
        #: Absolute stream position (events consumed so far).
        self.index = base_index

    def __iter__(self):
        for ev in self._it:
            self.index += 1
            yield ev

    def drain(self, n: int | None = None) -> int:
        """Consume up to ``n`` events (all remaining if None) without
        yielding them; returns how many were consumed."""
        consumed = 0
        for _ in self._it:
            self.index += 1
            consumed += 1
            if n is not None and consumed >= n:
                break
        return consumed

    def seek(self, index: int) -> None:
        """Advance to absolute position ``index`` (forward-only)."""
        if index < self.index:
            raise TraceError(
                f"cannot seek backwards: at {self.index}, asked for {index}"
            )
        self.drain(index - self.index)
        if self.index != index:
            raise TraceError(
                f"stream ended at {self.index} before reaching {index}"
            )


class LinkMode(enum.Enum):
    """How library calls are bound in the generated trace."""

    DYNAMIC = "dynamic"
    STATIC = "static"
    PATCHED = "patched"


class CallStyle(enum.Enum):
    """Dynamic-call instruction convention.

    * ``ELF_PLT`` — the ELF convention the paper evaluates: every call
      goes through a PLT stub (call + indirect jump).  PE cross-DLL calls
      *without* ``__declspec(dllimport)`` compile to the same
      thunk shape, so this style covers them too.
    * ``PE_DLLIMPORT`` — Windows ``call [IAT]``: a single
      memory-indirect call, bound eagerly at load time.  There is no
      trampoline to skip, so the mechanism neither helps nor hurts —
      but the call still pays the IAT load and indirect-branch cost the
      enhanced ELF path eliminates entirely.
    """

    ELF_PLT = "elf_plt"
    PE_DLLIMPORT = "pe_dllimport"


class ExecutionEngine:
    """Emits the event sequences for library calls and returns.

    The engine is deliberately stateless about *what* gets called — the
    workload models own control flow — and authoritative about *how* a
    call executes under the configured linking regime.
    """

    def __init__(
        self,
        program: LinkedProgram | StaticProgram,
        mode: LinkMode = LinkMode.DYNAMIC,
        patcher: CallSitePatcher | None = None,
        arch: Arch = Arch.X86_64,
        call_style: CallStyle = CallStyle.ELF_PLT,
    ) -> None:
        if mode is LinkMode.PATCHED and patcher is None:
            raise TraceError("PATCHED mode requires a CallSitePatcher")
        if mode is LinkMode.STATIC and not isinstance(program, StaticProgram):
            raise TraceError("STATIC mode requires a StaticProgram")
        if call_style is CallStyle.PE_DLLIMPORT:
            if mode is not LinkMode.DYNAMIC or not isinstance(program, LinkedProgram):
                raise TraceError("PE_DLLIMPORT requires dynamic linking")
            # PE binaries bind their import address tables at load time.
            program.bind_now()
        self.program = program
        self.mode = mode
        self.patcher = patcher
        self.arch = arch
        self.arch_params = ARCH_PARAMS[arch]
        self.call_style = call_style
        #: Total library calls emitted.
        self.calls_emitted = 0
        #: Lazy resolutions emitted (first calls).
        self.resolutions_emitted = 0
        #: Optional observability tracer; when set, resolver detours and
        #: dlclose emissions land as instant events.
        self.tracer = None
        # Warm-call templates for the batch-emitting path, keyed
        # (caller, symbol); dropped whenever the program's binding_epoch
        # moves (GOT rewrite / ifunc reselect / dlclose / dlopen).
        self._templates: dict[tuple[str, str], tuple] = {}
        self._template_epoch = -1

    # ------------------------------------------------------------ plt call

    def call_events(self, caller: str, symbol: str, site_pc: int) -> tuple[list[TraceEvent], CallBinding]:
        """Events from the call site up to (and including) entering the
        function, plus the binding describing the callee.

        The caller is responsible for emitting the function body and then
        :meth:`return_events`.
        """
        self.calls_emitted += 1
        if self.mode is LinkMode.STATIC:
            binding = self.program.bind_call(caller, symbol)
            return [call_direct(site_pc, binding.func_addr)], binding

        if self.mode is LinkMode.PATCHED:
            assert self.patcher is not None
            if self.patcher.is_patched(site_pc):
                binding = self.patcher.bound_call(site_pc, caller, symbol)
                return [call_direct(site_pc, binding.func_addr)], binding
            # First execution of this site: resolve through the normal
            # dynamic path, then rewrite the site.
            binding = self.program.bind_call(caller, symbol)
            events = self._dynamic_call_events(binding, site_pc)
            record = self.patcher.patch_site(site_pc, caller, symbol)
            if record is not None:
                events.extend(self._patch_overhead_events(site_pc))
            return events, binding

        binding = self.program.bind_call(caller, symbol)
        if self.call_style is CallStyle.PE_DLLIMPORT:
            # call [IAT]: one memory-indirect call, no stub, no laziness.
            return [call_indirect(site_pc, binding.func_addr, binding.got_addr)], binding
        return self._dynamic_call_events(binding, site_pc), binding

    def return_events(self, binding: CallBinding, site_pc: int) -> list[TraceEvent]:
        """The callee's return back to just after the call site."""
        ret_pc = binding.func_addr + max(binding.func_size - 1, 1)
        return [ret(ret_pc, site_pc + CALL_SITE_LEN)]

    # ------------------------------------------------------- batch emission

    def call_rows(
        self, caller: str, symbol: str, site_pc: int, builder: BatchBuilder
    ) -> tuple[int, int, bool]:
        """Batch twin of :meth:`call_events`: appends the call's rows to
        ``builder`` and returns ``(func_addr, func_size, via_plt)``.

        Emits event-for-event what :meth:`call_events` would — the first
        call per (caller, symbol) still takes the full ``bind_call`` +
        resolver path through :meth:`call_events` — but warm calls replay
        a precomputed per-binding template (one dict hit, two list
        appends) without re-binding or building ``TraceEvent`` objects.
        Templates are invalidated wholesale whenever the program's
        ``binding_epoch`` moves, so GOT rewrites, ifunc reselection,
        dlclose and dlopen all force re-binding through the slow path.
        """
        epoch = getattr(self.program, "binding_epoch", 0)
        if epoch != self._template_epoch:
            self._templates.clear()
            self._template_epoch = epoch
        tmpl = self._templates.get((caller, symbol))
        if tmpl is not None:
            kind, nbytes, target, mem_addr, suffix, tagged, info = tmpl
            self.calls_emitted += 1
            builder.rows += (kind, site_pc, 1, nbytes, target, mem_addr, 1, -1)
            if suffix:
                builder.rows += suffix
                if tagged:
                    # The trampoline row's tag index is per-builder, so it
                    # cannot be baked into the template.
                    builder.rows.append(builder.tag_id("plt"))
            return info
        events, binding = self.call_events(caller, symbol, site_pc)
        builder.extend_events(events)
        info = (binding.func_addr, binding.func_size, binding.via_plt)
        if self.mode is LinkMode.STATIC:
            self._templates[(caller, symbol)] = (
                K_CALL_DIRECT, 5, binding.func_addr, 0, (), False, info,
            )
        elif self.mode is LinkMode.DYNAMIC:
            if self.call_style is CallStyle.PE_DLLIMPORT:
                self._templates[(caller, symbol)] = (
                    K_CALL_INDIRECT, 6, binding.func_addr, binding.got_addr, (), False, info,
                )
            else:
                # Warm ELF PLT call: stub prefix (ARM) + tagged jmp *GOT.
                # The final row is stored without its tag element (see
                # above); PATCHED sites are never templated — patching is
                # per *site*, not per binding.
                params = self.arch_params
                branch_pc = binding.plt_addr + params.stub_prefix_bytes
                suffix: tuple = ()
                if params.stub_prefix_instrs:
                    suffix = (
                        K_BLOCK, binding.plt_addr, params.stub_prefix_instrs,
                        params.stub_prefix_bytes, 0, 0, 1, -1,
                    )
                suffix = suffix + (
                    K_JMP_INDIRECT, branch_pc, 1, params.branch_bytes,
                    binding.func_addr, binding.got_addr, 1,
                )
                self._templates[(caller, symbol)] = (
                    K_CALL_DIRECT, 5, binding.plt_addr, 0, suffix, True, info,
                )
        return info

    # ---------------------------------------------------------- internals

    def _stub_events(self, binding: CallBinding, branch_target: int) -> list[TraceEvent]:
        """The PLT stub body: architecture-dependent prefix + indirect branch.

        On x86-64 the stub's working part is the single ``jmp *GOT``; on
        ARM two ``add`` instructions compute the slot address first
        (paper Figure 2b).  The indirect branch is tagged so the CPU can
        attribute trampoline executions.
        """
        params = self.arch_params
        events: list[TraceEvent] = []
        branch_pc = binding.plt_addr
        if params.stub_prefix_instrs:
            events.append(
                block(binding.plt_addr, params.stub_prefix_instrs, params.stub_prefix_bytes)
            )
            branch_pc = binding.plt_addr + params.stub_prefix_bytes
        trampoline = jmp_indirect(branch_pc, branch_target, binding.got_addr)
        trampoline.nbytes = params.branch_bytes
        trampoline.tag = "plt"
        events.append(trampoline)
        return events

    def _dynamic_call_events(self, binding: CallBinding, site_pc: int) -> list[TraceEvent]:
        """``call stub; [adds;] jmp *GOT`` — plus the resolver on first call."""
        if not binding.first_call:
            return [call_direct(site_pc, binding.plt_addr)] + self._stub_events(
                binding, binding.func_addr
            )

        self.resolutions_emitted += 1
        if self.tracer is not None:
            self.tracer.instant(
                f"resolver_run {binding.caller}:{binding.symbol}",
                category="engine",
                caller=binding.caller,
                symbol=binding.symbol,
                site_pc=hex(site_pc),
                resolver_instructions=binding.resolver_instructions,
            )
        events: list[TraceEvent] = []
        # The unresolved GOT slot points back at the stub's lazy tail.
        events.append(call_direct(site_pc, binding.plt_addr))
        events.extend(self._stub_events(binding, binding.plt_push_addr))
        # push <reloc-index>; jmp PLT0
        events.append(block(binding.plt_push_addr, 1, 5))
        events.append(jmp_direct(binding.plt_push_addr + 5, binding.plt0_addr))
        # PLT0: push link_map; jmp *resolver
        events.append(block(binding.plt0_addr, 2, 16))
        events.append(jmp_direct(binding.plt0_addr + 14, RESOLVER_TEXT_BASE))
        events.extend(self._resolver_events(binding))
        return events

    def _resolver_events(self, binding: CallBinding) -> list[TraceEvent]:
        """_dl_runtime_resolve / _dl_fixup: hash walk, GOT write, jump."""
        events: list[TraceEvent] = []
        n = max(binding.resolver_instructions, 64)
        loads = max(binding.resolver_loads, 1)
        chunk = max(n // (loads + 1), 4)
        pc = RESOLVER_TEXT_BASE
        # Spread the symbol-table walk deterministically over the symtab
        # region so the resolver has its own data footprint.
        salt = zlib.crc32(f"{binding.caller}:{binding.symbol}".encode()) * 2654435761
        emitted = 0
        for i in range(loads):
            events.append(block(pc, chunk, chunk * 4))
            addr = SYMTAB_DATA_BASE + ((salt + i * 8191) % SYMTAB_DATA_SPAN) & ~0x7
            events.append(load(pc + chunk * 4, addr))
            pc += chunk * 4 + 8
            if pc > RESOLVER_TEXT_BASE + 0x3000:
                pc = RESOLVER_TEXT_BASE  # the resolver loops over its page
            emitted += chunk + 1
        if emitted < n:
            events.append(block(pc, n - emitted, (n - emitted) * 4))
        # The GOT update: the store the Bloom filter must observe.  The tag
        # lets the Section 3.4 (no-bloom) variant model a modified linker
        # that issues an explicit ABTB invalidation alongside the store.
        got_store = store(pc + 4, binding.got_addr)
        got_store.tag = "got-store"
        events.append(got_store)
        # Final jump to the freshly resolved function (register-indirect).
        events.append(jmp_indirect(pc + 8, binding.func_addr, 0))
        return events

    def dlclose_events(self, library: str) -> list[TraceEvent]:
        """Unload a library at runtime and emit the GOT-reset stores.

        Each GOT slot that pointed into the unloaded library is rewritten
        by ld.so; those stores are what the hardware's Bloom filter
        observes, flushing any ABTB entries that could otherwise send
        skipped calls into unmapped memory.
        """
        if self.mode is not LinkMode.DYNAMIC or not isinstance(self.program, LinkedProgram):
            raise TraceError("dlclose is only meaningful under dynamic linking")
        resets = self.program.unload_library(library)
        if self.tracer is not None:
            self.tracer.instant(
                f"dlclose_events {library}",
                category="engine",
                library=library,
                got_resets=len(resets),
            )
        events: list[TraceEvent] = []
        pc = RESOLVER_TEXT_BASE + 0x2000  # ld.so's unload path
        events.append(block(pc, 120 + 10 * len(resets), 0x600))
        for _caller, _symbol, got_addr in resets:
            reset_store = store(pc + 0x80, got_addr)
            reset_store.tag = "got-store"
            events.append(reset_store)
        return events

    def _patch_overhead_events(self, site_pc: int) -> list[TraceEvent]:
        """The software patcher's per-site work, including the code write."""
        pc = RESOLVER_TEXT_BASE + 0x4000  # patcher code lives next door
        return [
            block(pc, PATCH_OVERHEAD_INSTRUCTIONS, 0x1000),
            store(pc + 0x40, site_pc),  # the write into the text page
        ]
