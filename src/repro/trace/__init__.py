"""Execution engine and trace utilities."""

from repro.trace.batch import EVENT_DTYPE, TraceBatch, iter_batches
from repro.trace.builder import BatchBuilder
from repro.trace.store import TraceBundle, TraceStore, generate_bundle, trace_key
from repro.trace.engine import (
    CALL_SITE_LEN,
    CallStyle,
    PATCH_OVERHEAD_INSTRUCTIONS,
    RESOLVER_TEXT_BASE,
    SYMTAB_DATA_BASE,
    ExecutionEngine,
    LinkMode,
    TraceCursor,
)

__all__ = [
    "BatchBuilder",
    "CALL_SITE_LEN",
    "CallStyle",
    "EVENT_DTYPE",
    "ExecutionEngine",
    "LinkMode",
    "TraceBatch",
    "TraceBundle",
    "TraceCursor",
    "TraceStore",
    "generate_bundle",
    "iter_batches",
    "trace_key",
    "PATCH_OVERHEAD_INSTRUCTIONS",
    "RESOLVER_TEXT_BASE",
    "SYMTAB_DATA_BASE",
]
