"""Execution engine and trace utilities."""

from repro.trace.batch import EVENT_DTYPE, TraceBatch, iter_batches
from repro.trace.engine import (
    CALL_SITE_LEN,
    CallStyle,
    PATCH_OVERHEAD_INSTRUCTIONS,
    RESOLVER_TEXT_BASE,
    SYMTAB_DATA_BASE,
    ExecutionEngine,
    LinkMode,
    TraceCursor,
)

__all__ = [
    "CALL_SITE_LEN",
    "CallStyle",
    "EVENT_DTYPE",
    "ExecutionEngine",
    "LinkMode",
    "TraceBatch",
    "TraceCursor",
    "iter_batches",
    "PATCH_OVERHEAD_INSTRUCTIONS",
    "RESOLVER_TEXT_BASE",
    "SYMTAB_DATA_BASE",
]
