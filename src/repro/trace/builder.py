"""Array-native trace construction.

:class:`BatchBuilder` is the emission side of the numpy-native trace
pipeline: generators append flat integer rows (8 ints per event, matching
:data:`~repro.trace.batch.EVENT_DTYPE` column order) to a plain Python
list and :meth:`BatchBuilder.build` converts the whole run into a
:class:`~repro.trace.batch.TraceBatch` in a handful of numpy calls.  This
skips the per-event ``TraceEvent`` object construction *and* the
``from_events`` attribute harvest, which together dominate legacy trace
generation cost.

Row layout (all ints)::

    (kind, pc, n_instr, nbytes, target, mem_addr, taken, tag_index)

``tag_index`` is an index into the builder's tag table (``-1`` = no tag),
interned first-appearance-first exactly like ``TraceBatch.from_events``
dedupes tags — so a builder-built batch serialises byte-identically to a
``from_events``-built batch of the same events.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.isa.events import TraceEvent
from repro.isa.kinds import EventKind
from repro.trace.batch import EVENT_DTYPE, TraceBatch

#: Integer event-kind constants for hot row emission (``EventKind.X`` is an
#: IntEnum — attribute access plus ``int()`` per event is measurable).
K_BLOCK = int(EventKind.BLOCK)
K_CALL_DIRECT = int(EventKind.CALL_DIRECT)
K_CALL_INDIRECT = int(EventKind.CALL_INDIRECT)
K_JMP_INDIRECT = int(EventKind.JMP_INDIRECT)
K_JMP_DIRECT = int(EventKind.JMP_DIRECT)
K_RET = int(EventKind.RET)
K_COND_BRANCH = int(EventKind.COND_BRANCH)
K_LOAD = int(EventKind.LOAD)
K_STORE = int(EventKind.STORE)
K_CONTEXT_SWITCH = int(EventKind.CONTEXT_SWITCH)
K_MARK = int(EventKind.MARK)

#: Number of flat ints per event row.
ROW_WIDTH = 8


class BatchBuilder:
    """Accumulates flat integer event rows and builds a :class:`TraceBatch`.

    Attributes:
        rows: flat list of ints, :data:`ROW_WIDTH` per event.  Emitters
            append with ``rows += (kind, pc, ni, nb, tgt, ma, taken, tag)``
            — tuple concatenation onto a list is the fastest append path
            CPython offers for fixed-width records.
        tags: the batch tag table being interned into.
    """

    __slots__ = ("rows", "tags", "_tag_index")

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.tags: list = []
        self._tag_index: dict = {}

    def __len__(self) -> int:
        return len(self.rows) // ROW_WIDTH

    def tag_id(self, tag: object) -> int:
        """Intern ``tag`` (first-appearance order) and return its index."""
        try:
            ti = self._tag_index.get(tag)
        except TypeError:  # unhashable tag: store without dedup
            ti = None
        if ti is None:
            ti = len(self.tags)
            self.tags.append(tag)
            try:
                self._tag_index[tag] = ti
            except TypeError:
                pass
        return ti

    def extend_events(self, events: Iterable[TraceEvent]) -> None:
        """Append already-materialised events (the generic fallback used
        for cold resolver walks and non-templated linking modes)."""
        rows = self.rows
        for ev in events:
            tag = ev.tag
            rows += (
                int(ev.kind),
                ev.pc,
                ev.n_instr,
                ev.nbytes,
                ev.target,
                ev.mem_addr,
                1 if ev.taken else 0,
                -1 if tag is None else self.tag_id(tag),
            )

    def build(self) -> TraceBatch:
        """Convert everything appended so far into one :class:`TraceBatch`."""
        n = len(self.rows) // ROW_WIDTH
        data = np.empty(n, dtype=EVENT_DTYPE)
        if n:
            flat = np.array(self.rows, dtype=np.int64).reshape(n, ROW_WIDTH)
            data["kind"] = flat[:, 0]
            data["pc"] = flat[:, 1]
            data["n_instr"] = flat[:, 2]
            data["nbytes"] = flat[:, 3]
            data["target"] = flat[:, 4]
            data["mem_addr"] = flat[:, 5]
            data["taken"] = flat[:, 6]
            data["tag"] = flat[:, 7]
        return TraceBatch(data, list(self.tags))
