"""Columnar (batched) trace representation.

A :class:`TraceBatch` packs a run of :class:`~repro.isa.events.TraceEvent`
objects into one numpy structured array plus a small tag table.  The
batched form is what the vectorized simulation backend
(:mod:`repro.uarch.backend`) consumes: numeric columns can be shifted and
masked for a whole batch at once (cache-line and TLB-page indexing), and
the scalar hot loop then reads plain Python lists instead of touching one
attribute-heavy event object per step.

The representation is lossless: ``TraceBatch.from_events`` followed by
:meth:`TraceBatch.to_events` reproduces events that compare equal to the
originals (kind, addresses, sizes, outcome and tag).  Tags — ``None`` for
almost every event, strings (``"plt"``, ``"got-store"``) or small tuples
(request marks) otherwise — are deduplicated into a per-batch side table
and referenced by index, keeping the array purely numeric.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from itertools import islice
from operator import attrgetter
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TraceCorruptionError, TraceError
from repro.isa.events import TraceEvent, event_from_row
from repro.isa.kinds import MAX_EVENT_KIND

# Single-attribute getters: ``np.fromiter(map(getter, events), ...)`` fills
# a column at C speed, several times faster than building per-event row
# tuples in Python.
_GET_KIND = attrgetter("kind")
_GET_PC = attrgetter("pc")
_GET_N_INSTR = attrgetter("n_instr")
_GET_NBYTES = attrgetter("nbytes")
_GET_TARGET = attrgetter("target")
_GET_MEM_ADDR = attrgetter("mem_addr")
_GET_TAKEN = attrgetter("taken")
_GET_TAG = attrgetter("tag")

#: Structured dtype of one batched event.  Everything is a signed 64-bit
#: (addresses in the synthetic address space stay far below 2**63), so
#: mixed-column arithmetic never hits numpy's unsigned-promotion rules.
#: ``tag`` is an index into the batch's tag table, -1 meaning "no tag".
EVENT_DTYPE = np.dtype(
    [
        ("kind", np.int16),
        ("pc", np.int64),
        ("n_instr", np.int64),
        ("nbytes", np.int64),
        ("target", np.int64),
        ("mem_addr", np.int64),
        ("taken", np.int8),
        ("tag", np.int32),
    ]
)


class TraceBatch:
    """A fixed-size run of trace events in columnar form.

    Attributes:
        data: structured array of :data:`EVENT_DTYPE`, one row per event.
        tags: tag table; ``data["tag"]`` holds indexes into it (-1 = None).
    """

    __slots__ = ("data", "tags")

    def __init__(self, data: np.ndarray, tags: list) -> None:
        if data.dtype != EVENT_DTYPE:
            raise TraceError(f"TraceBatch needs EVENT_DTYPE rows, got {data.dtype}")
        self.data = data
        self.tags = tags

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "TraceBatch":
        """Pack events into columnar form (validates event kinds)."""
        if not isinstance(events, (list, tuple)):
            events = list(events)
        m = len(events)
        data = np.empty(m, dtype=EVENT_DTYPE)
        tags: list = []
        if not m:
            return cls(data, tags)
        data["kind"] = np.fromiter(map(_GET_KIND, events), np.int16, m)
        data["pc"] = np.fromiter(map(_GET_PC, events), np.int64, m)
        data["n_instr"] = np.fromiter(map(_GET_N_INSTR, events), np.int64, m)
        data["nbytes"] = np.fromiter(map(_GET_NBYTES, events), np.int64, m)
        data["target"] = np.fromiter(map(_GET_TARGET, events), np.int64, m)
        data["mem_addr"] = np.fromiter(map(_GET_MEM_ADDR, events), np.int64, m)
        data["taken"] = np.fromiter(map(_GET_TAKEN, events), np.int8, m)
        tag_idx: np.ndarray | None = None
        tag_index: dict = {}
        for i, tag in enumerate(map(_GET_TAG, events)):
            if tag is None:
                continue
            try:
                ti = tag_index.get(tag)
            except TypeError:  # unhashable tag: store without dedup
                ti = None
            if ti is None:
                ti = len(tags)
                tags.append(tag)
                try:
                    tag_index[tag] = ti
                except TypeError:
                    pass
            if tag_idx is None:
                tag_idx = np.full(m, -1, np.int32)
            tag_idx[i] = ti
        if tag_idx is None:
            data["tag"] = -1
        else:
            data["tag"] = tag_idx
        kinds = data["kind"]
        lo, hi = int(kinds.min()), int(kinds.max())
        if lo < 0 or hi > MAX_EVENT_KIND:
            raise TraceError(
                f"batch contains event kind outside [0, {MAX_EVENT_KIND}]: "
                f"min={lo}, max={hi}"
            )
        return cls(data, tags)

    def __len__(self) -> int:
        return len(self.data)

    def tag_of(self, i: int) -> object:
        """The decoded tag of row ``i`` (None when untagged)."""
        ti = int(self.data["tag"][i])
        return None if ti < 0 else self.tags[ti]

    def event(self, i: int) -> TraceEvent:
        """Materialise row ``i`` back into a :class:`TraceEvent`."""
        row = self.data[i]
        return event_from_row(
            int(row["kind"]),
            int(row["pc"]),
            int(row["n_instr"]),
            int(row["nbytes"]),
            int(row["target"]),
            int(row["mem_addr"]),
            int(row["taken"]),
            self.tag_of(i),
        )

    def to_events(self) -> list[TraceEvent]:
        """Materialise the whole batch (round-trips `==`-equal events)."""
        return [self.event(i) for i in range(len(self.data))]

    def __iter__(self) -> Iterator[TraceEvent]:
        for i in range(len(self.data)):
            yield self.event(i)

    @property
    def nbytes_storage(self) -> int:
        """Array storage footprint (excludes the Python tag table)."""
        return int(self.data.nbytes)

    def slices(self, batch_events: int) -> Iterator["TraceBatch"]:
        """Re-cut into batches of at most ``batch_events`` events.

        Yields zero-copy views: each slice shares this batch's array
        storage and tag table (tag indexes stay valid because the table
        is per-batch, not per-slice).  Empty batches are never yielded.
        """
        if batch_events < 1:
            raise TraceError(f"batch_events must be positive, got {batch_events}")
        n = len(self.data)
        for start in range(0, n, batch_events):
            yield TraceBatch(self.data[start : start + batch_events], self.tags)

    # ------------------------------------------------------- binary codec

    def to_bytes(self) -> bytes:
        """Serialise to the checksummed binary trace format.

        Layout: a 32-byte header (:data:`TRACE_MAGIC`, format version,
        event count, tag-blob length, CRC32 of each section), the
        JSON-encoded tag table, then the raw structured-array bytes.
        Every tag must be JSON-encodable (None, bool, int, float, str,
        and tuples/lists thereof) — exactly the shapes the workloads emit.
        """
        tag_blob = json.dumps([_encode_tag(t) for t in self.tags]).encode()
        array_blob = self.data.tobytes()
        header = struct.pack(
            TRACE_HEADER_FMT,
            TRACE_MAGIC,
            TRACE_FORMAT_VERSION,
            0,
            len(self.data),
            len(tag_blob),
            zlib.crc32(array_blob),
            zlib.crc32(tag_blob),
        )
        return header + tag_blob + array_blob

    @classmethod
    def from_bytes(cls, raw: bytes, source: object = None) -> "TraceBatch":
        """Decode the binary trace format, validating every layer.

        Truncation, a bad magic/version, a checksum mismatch, a malformed
        tag table or an out-of-range event kind all raise
        :class:`~repro.errors.TraceCorruptionError` carrying the byte
        offset of the damage (and the row index, when attributable to one
        event) — never a bare ``struct.error`` or ``KeyError``.
        """
        src = source or "<bytes>"
        if len(raw) < TRACE_HEADER_SIZE:
            raise TraceCorruptionError(
                f"trace {src}: truncated header ({len(raw)} of "
                f"{TRACE_HEADER_SIZE} bytes)",
                offset=len(raw),
            )
        magic, version, _reserved, n_events, tag_len, array_crc, tag_crc = struct.unpack(
            TRACE_HEADER_FMT, raw[:TRACE_HEADER_SIZE]
        )
        if magic != TRACE_MAGIC:
            raise TraceCorruptionError(
                f"trace {src}: bad magic {magic!r} (expected {TRACE_MAGIC!r})",
                offset=0,
            )
        if version != TRACE_FORMAT_VERSION:
            raise TraceCorruptionError(
                f"trace {src}: format version {version} unsupported "
                f"(expected {TRACE_FORMAT_VERSION})",
                offset=4,
            )
        array_off = TRACE_HEADER_SIZE + tag_len
        expected = array_off + n_events * EVENT_DTYPE.itemsize
        if len(raw) != expected:
            raise TraceCorruptionError(
                f"trace {src}: size mismatch — header promises {expected} "
                f"bytes ({n_events} events, {tag_len}-byte tag table), "
                f"got {len(raw)}",
                offset=min(len(raw), expected),
            )
        tag_blob = raw[TRACE_HEADER_SIZE:array_off]
        if zlib.crc32(tag_blob) != tag_crc:
            raise TraceCorruptionError(
                f"trace {src}: tag table checksum mismatch — bytes "
                f"[{TRACE_HEADER_SIZE}, {array_off}) are corrupt",
                offset=TRACE_HEADER_SIZE,
            )
        array_blob = raw[array_off:]
        if zlib.crc32(array_blob) != array_crc:
            raise TraceCorruptionError(
                f"trace {src}: event array checksum mismatch — bytes "
                f"[{array_off}, {len(raw)}) are corrupt",
                offset=array_off,
            )
        try:
            tags = [_decode_tag(t) for t in json.loads(tag_blob.decode())]
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            raise TraceCorruptionError(
                f"trace {src}: tag table does not decode: {exc}",
                offset=TRACE_HEADER_SIZE,
            ) from exc
        data = np.frombuffer(array_blob, dtype=EVENT_DTYPE).copy()
        kinds = data["kind"]
        bad = np.nonzero((kinds < 0) | (kinds > MAX_EVENT_KIND))[0]
        if bad.size:
            row = int(bad[0])
            raise TraceCorruptionError(
                f"trace {src}: row {row} has unknown event kind "
                f"{int(kinds[row])} (valid: 0..{MAX_EVENT_KIND})",
                offset=array_off + row * EVENT_DTYPE.itemsize,
                row=row,
            )
        tag_idx = data["tag"]
        bad = np.nonzero((tag_idx < -1) | (tag_idx >= len(tags)))[0]
        if bad.size:
            row = int(bad[0])
            raise TraceCorruptionError(
                f"trace {src}: row {row} references tag {int(tag_idx[row])} "
                f"outside the {len(tags)}-entry tag table",
                offset=array_off + row * EVENT_DTYPE.itemsize,
                row=row,
            )
        return cls(data, tags)

    def save(self, path: str | Path) -> Path:
        """Atomically write the batch in the binary trace format."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self.to_bytes())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TraceBatch":
        """Read and validate a binary trace file.

        Raises :class:`~repro.errors.TraceCorruptionError` for damaged
        content (``offset=-1`` when the file cannot be read at all).
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise TraceCorruptionError(f"trace {path} unreadable: {exc}") from exc
        return cls.from_bytes(raw, source=path)


#: Binary trace file layout: magic, format version, reserved, event
#: count, tag-blob length, CRC32 of the array bytes, CRC32 of the tag
#: blob.  Little-endian, 32 bytes.
TRACE_MAGIC = b"RPRT"
TRACE_FORMAT_VERSION = 1
TRACE_HEADER_FMT = "<4sHHQQII"
TRACE_HEADER_SIZE = struct.calcsize(TRACE_HEADER_FMT)


def _encode_tag(tag: object) -> object:
    """JSON-safe encoding that survives the tuple/list distinction."""
    if tag is None or isinstance(tag, (bool, int, float, str)):
        return {"v": tag}
    if isinstance(tag, tuple):
        return {"t": [_encode_tag(item) for item in tag]}
    if isinstance(tag, list):
        return {"l": [_encode_tag(item) for item in tag]}
    raise TraceError(f"tag {tag!r} cannot be serialised to the binary trace format")


def _decode_tag(obj: object) -> object:
    if isinstance(obj, dict):
        if "v" in obj:
            return obj["v"]
        if "t" in obj and isinstance(obj["t"], list):
            return tuple(_decode_tag(item) for item in obj["t"])
        if "l" in obj and isinstance(obj["l"], list):
            return [_decode_tag(item) for item in obj["l"]]
    raise ValueError(f"malformed tag encoding: {obj!r}")


def iter_batches(
    events: Iterable[TraceEvent] | Sequence[TraceEvent], batch_events: int = 4096
) -> Iterator[TraceBatch]:
    """Cut an event stream into :class:`TraceBatch` chunks of at most
    ``batch_events`` events (the final batch may be shorter; empty batches
    are never yielded)."""
    if batch_events < 1:
        raise TraceError(f"batch_events must be positive, got {batch_events}")
    it = iter(events)
    while True:
        chunk = list(islice(it, batch_events))
        if not chunk:
            return
        yield TraceBatch.from_events(chunk)
