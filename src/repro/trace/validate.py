"""Trace-stream validation.

The CPU model trusts its event stream; a corrupted stream (truncated,
duplicated or malformed events) must be *detected* — raising
:class:`~repro.errors.TraceError` — rather than silently mis-executed.
The chaos harness routes every instrumented stream through
:func:`validated`, so an injected corruption fault is guaranteed to
surface as an error instead of skewed counters.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TraceError
from repro.isa.events import TraceEvent
from repro.isa.kinds import BRANCH_KINDS, EventKind

_MARK_PHASES = frozenset({"begin", "end"})


def validate_event(ev: TraceEvent, index: int) -> None:
    """Check one event's structural sanity; raise :class:`TraceError`.

    Catches the corruptions a real trace capture produces: clobbered kind
    discriminators, negative sizes/addresses, branches without targets and
    malformed request marks.
    """
    if not isinstance(ev, TraceEvent):
        raise TraceError(f"event {index}: not a TraceEvent: {ev!r}")
    try:
        kind = EventKind(ev.kind)
    except ValueError:
        raise TraceError(f"event {index}: invalid event kind {ev.kind!r}") from None
    if ev.n_instr < 0 or ev.nbytes < 0:
        raise TraceError(
            f"event {index} ({kind.name}): negative size "
            f"(n_instr={ev.n_instr}, nbytes={ev.nbytes})"
        )
    if ev.pc < 0 or ev.target < 0 or ev.mem_addr < 0:
        raise TraceError(f"event {index} ({kind.name}): negative address")
    if kind is EventKind.BLOCK and ev.n_instr < 1:
        raise TraceError(f"event {index}: BLOCK with no instructions")
    if kind in BRANCH_KINDS and ev.target == 0:
        raise TraceError(f"event {index}: {kind.name} without a target")
    if kind is EventKind.MARK and isinstance(ev.tag, tuple) and len(ev.tag) == 3:
        if ev.tag[0] not in _MARK_PHASES:
            raise TraceError(f"event {index}: malformed mark phase {ev.tag[0]!r}")


def validated(events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
    """Yield ``events`` unchanged, raising :class:`TraceError` on corruption.

    Beyond per-event checks this detects stream-level damage: a stream
    that ends on a dangling ``CALL_DIRECT`` (truncation) and duplicated
    ``begin`` marks / ``end`` marks with no ``begin`` (duplication).
    """
    open_requests: set[object] = set()
    last_kind: EventKind | None = None
    index = 0
    for ev in events:
        validate_event(ev, index)
        kind = EventKind(ev.kind)
        if kind is EventKind.MARK and isinstance(ev.tag, tuple) and len(ev.tag) == 3:
            phase, _name, request_id = ev.tag
            if phase == "begin":
                if request_id in open_requests:
                    raise TraceError(f"event {index}: duplicated begin mark for request {request_id}")
                open_requests.add(request_id)
            elif phase == "end":
                if request_id not in open_requests:
                    raise TraceError(f"event {index}: end mark without begin for request {request_id}")
                open_requests.discard(request_id)
        yield ev
        last_kind = kind
        index += 1
    if last_kind is EventKind.CALL_DIRECT:
        raise TraceError(f"truncated stream: ends on a dangling call at event {index - 1}")
