"""Page-granular memory model: frames, address spaces, fork/CoW accounting."""

from repro.memory.address_space import AddressSpace, Mapping
from repro.memory.cow import CowReport, measure, patch_cost_bytes
from repro.memory.pages import (
    PAGE_SHIFT,
    PAGE_SIZE,
    Frame,
    Perm,
    PhysicalMemory,
    page_base,
    page_of,
    pages_spanned,
)

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "AddressSpace",
    "CowReport",
    "Frame",
    "Mapping",
    "Perm",
    "PhysicalMemory",
    "measure",
    "page_base",
    "page_of",
    "pages_spanned",
    "patch_cost_bytes",
]
