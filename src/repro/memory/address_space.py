"""Per-process virtual address spaces built on the page-frame model.

An :class:`AddressSpace` maps virtual page numbers to physical frames with
permissions, supports mmap-style region mapping (optionally sharing frames
with a backing object, as the dynamic loader does for library text), and
implements ``fork`` with copy-on-write semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageFaultError
from repro.memory.pages import PAGE_SIZE, Frame, Perm, PhysicalMemory, page_of, pages_spanned


@dataclass
class Mapping:
    """A virtual page's view of a physical frame."""

    frame: Frame
    perm: Perm
    #: True when the page must be privatised before the first write.
    cow: bool = False


class AddressSpace:
    """One process's virtual memory.

    All page-table mutations go through the shared :class:`PhysicalMemory`
    so system-wide accounting (the paper's memory-savings numbers) stays
    consistent.
    """

    def __init__(self, phys: PhysicalMemory, name: str = "proc") -> None:
        self.phys = phys
        self.name = name
        self._pages: dict[int, Mapping] = {}
        #: Count of CoW faults taken by this address space.
        self.cow_faults = 0

    # ------------------------------------------------------------------ map

    def map_private(self, base: int, nbytes: int, perm: Perm, origin: str = "") -> None:
        """Map fresh anonymous pages (heap, stack, writable data)."""
        for vpn in pages_spanned(base, nbytes):
            if vpn in self._pages:
                raise PageFaultError(f"{self.name}: page {vpn:#x} already mapped")
            self._pages[vpn] = Mapping(self.phys.allocate(origin), perm)

    def map_shared_frames(self, base: int, frames: list[Frame], perm: Perm, cow: bool) -> None:
        """Map existing frames starting at ``base`` (file-backed mmap).

        With ``cow=True`` the mapping is MAP_PRIVATE: reads share the frame,
        the first write privatises it.
        """
        vpn = page_of(base)
        for offset, frame in enumerate(frames):
            if vpn + offset in self._pages:
                raise PageFaultError(f"{self.name}: page {vpn + offset:#x} already mapped")
            self._pages[vpn + offset] = Mapping(self.phys.share(frame), perm, cow=cow)

    def unmap(self, base: int, nbytes: int) -> None:
        """Remove mappings, releasing frame references."""
        for vpn in pages_spanned(base, nbytes):
            mapping = self._pages.pop(vpn, None)
            if mapping is not None:
                self.phys.release(mapping.frame)

    # --------------------------------------------------------------- access

    def mapping_at(self, addr: int) -> Mapping:
        """The mapping covering ``addr`` (raises if unmapped)."""
        try:
            return self._pages[page_of(addr)]
        except KeyError:
            raise PageFaultError(f"{self.name}: access to unmapped address {addr:#x}") from None

    def is_mapped(self, addr: int) -> bool:
        """Whether ``addr`` falls in a mapped page."""
        return page_of(addr) in self._pages

    def protect(self, base: int, nbytes: int, perm: Perm) -> None:
        """mprotect: change permissions on a range (must be fully mapped)."""
        for vpn in pages_spanned(base, nbytes):
            if vpn not in self._pages:
                raise PageFaultError(f"{self.name}: mprotect of unmapped page {vpn:#x}")
            self._pages[vpn].perm = perm

    def read(self, addr: int) -> None:
        """Model a read access: checks mapping and permission."""
        mapping = self.mapping_at(addr)
        if not mapping.perm & Perm.R:
            raise PageFaultError(f"{self.name}: read of non-readable page at {addr:#x}")

    def write(self, addr: int) -> None:
        """Model a write: checks permission and takes a CoW fault if needed."""
        mapping = self.mapping_at(addr)
        if not mapping.perm & Perm.W:
            raise PageFaultError(f"{self.name}: write to non-writable page at {addr:#x}")
        if mapping.cow and mapping.frame.refcount > 1:
            mapping.frame = self.phys.copy_on_write(mapping.frame)
            mapping.cow = False
            self.cow_faults += 1
        elif mapping.cow:
            # Sole owner: the write simply claims the frame.
            mapping.cow = False

    def fetch(self, addr: int) -> None:
        """Model an instruction fetch: checks the execute permission."""
        mapping = self.mapping_at(addr)
        if not mapping.perm & Perm.X:
            raise PageFaultError(f"{self.name}: fetch from non-executable page at {addr:#x}")

    # ----------------------------------------------------------------- fork

    def fork(self, child_name: str) -> "AddressSpace":
        """Create a child address space sharing all pages copy-on-write.

        Writable pages become CoW in both parent and child, mirroring the
        Unix fork semantics that drive the Section 5.5 analysis.
        """
        child = AddressSpace(self.phys, child_name)
        for vpn, mapping in self._pages.items():
            if mapping.perm & Perm.W:
                mapping.cow = True
            child._pages[vpn] = Mapping(
                self.phys.share(mapping.frame), mapping.perm, cow=mapping.cow or bool(mapping.perm & Perm.W)
            )
        return child

    # ----------------------------------------------------------- accounting

    @property
    def mapped_pages(self) -> int:
        """Number of mapped virtual pages."""
        return len(self._pages)

    @property
    def private_bytes(self) -> int:
        """Bytes in frames referenced only by this address space."""
        return sum(PAGE_SIZE for m in self._pages.values() if m.frame.refcount == 1)

    def resident_frames(self) -> set[int]:
        """Identities of all frames this space references."""
        return {m.frame.frame_id for m in self._pages.values()}
