"""Physical page frames and permission flags.

The memory model is deliberately page-granular: the paper's Section 5.5
memory-savings argument is entirely about which *code pages* get privatised
by copy-on-write when a software patcher writes into them, so bytes inside
pages never need to be materialised — only frame identity, share counts and
permissions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

PAGE_SIZE = 4096
PAGE_SHIFT = 12


def page_of(addr: int) -> int:
    """Virtual page number containing ``addr``."""
    return addr >> PAGE_SHIFT


def page_base(addr: int) -> int:
    """Base address of the page containing ``addr``."""
    return addr & ~(PAGE_SIZE - 1)


def pages_spanned(addr: int, nbytes: int) -> range:
    """Page numbers covered by the byte range ``[addr, addr + nbytes)``."""
    if nbytes <= 0:
        return range(0)
    first = page_of(addr)
    last = page_of(addr + nbytes - 1)
    return range(first, last + 1)


class Perm(enum.IntFlag):
    """Page permission bits (mmap-style)."""

    NONE = 0
    R = 1
    W = 2
    X = 4
    RW = R | W
    RX = R | X
    RWX = R | W | X


@dataclass
class Frame:
    """One physical page frame.

    Attributes:
        frame_id: unique identity of the frame.
        refcount: number of virtual mappings sharing this frame.
        origin: label describing where the frame's contents came from
            (e.g. ``"libc.so:text"``) — used by accounting reports.
    """

    frame_id: int
    refcount: int = 1
    origin: str = ""


@dataclass
class PhysicalMemory:
    """System-wide physical page allocator with share accounting.

    The allocator never stores page contents; it tracks how many frames
    exist and how they are shared, which is exactly the information the
    memory-savings experiment needs.
    """

    _next_id: itertools.count = field(default_factory=itertools.count)
    frames: dict[int, Frame] = field(default_factory=dict)

    def allocate(self, origin: str = "") -> Frame:
        """Allocate a fresh frame with refcount 1."""
        frame = Frame(next(self._next_id), origin=origin)
        self.frames[frame.frame_id] = frame
        return frame

    def share(self, frame: Frame) -> Frame:
        """Add a reference to an existing frame (e.g. on fork or mmap)."""
        frame.refcount += 1
        return frame

    def release(self, frame: Frame) -> None:
        """Drop a reference; the frame is freed when the count reaches 0."""
        frame.refcount -= 1
        if frame.refcount <= 0:
            del self.frames[frame.frame_id]

    def copy_on_write(self, frame: Frame) -> Frame:
        """Privatise one reference to ``frame``: drop a ref, allocate a copy."""
        copy = self.allocate(origin=frame.origin + "+cow")
        self.release(frame)
        return copy

    @property
    def total_frames(self) -> int:
        """Number of live physical frames."""
        return len(self.frames)

    @property
    def total_bytes(self) -> int:
        """Live physical memory in bytes."""
        return len(self.frames) * PAGE_SIZE

    def frames_with_origin(self, prefix: str) -> list[Frame]:
        """Live frames whose origin starts with ``prefix``."""
        return [f for f in self.frames.values() if f.origin.startswith(prefix)]
