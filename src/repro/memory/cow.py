"""System-level helpers for copy-on-write accounting.

These utilities answer the questions posed in Section 5.5 of the paper:
how many physical pages does a fleet of forked processes consume, and how
much extra memory does call-site patching cost compared with the proposed
hardware (which leaves code pages untouched and fully shared)?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.address_space import AddressSpace
from repro.memory.pages import PAGE_SIZE, PhysicalMemory


@dataclass
class CowReport:
    """Memory accounting snapshot for a set of processes.

    Attributes:
        processes: number of address spaces measured.
        total_frames: live physical frames system-wide.
        total_bytes: live physical bytes system-wide.
        shared_frames: frames referenced by more than one mapping.
        private_frames: frames referenced exactly once.
        cow_faults: total CoW faults taken across the processes.
        private_bytes_per_process: private bytes attributed to each process.
    """

    processes: int
    total_frames: int
    total_bytes: int
    shared_frames: int
    private_frames: int
    cow_faults: int
    private_bytes_per_process: dict[str, int] = field(default_factory=dict)

    @property
    def average_private_bytes(self) -> float:
        """Mean private bytes per process."""
        if not self.private_bytes_per_process:
            return 0.0
        return sum(self.private_bytes_per_process.values()) / len(self.private_bytes_per_process)


def measure(phys: PhysicalMemory, spaces: list[AddressSpace]) -> CowReport:
    """Summarise physical-memory usage for ``spaces`` on ``phys``."""
    shared = sum(1 for f in phys.frames.values() if f.refcount > 1)
    private = sum(1 for f in phys.frames.values() if f.refcount == 1)
    return CowReport(
        processes=len(spaces),
        total_frames=phys.total_frames,
        total_bytes=phys.total_bytes,
        shared_frames=shared,
        private_frames=private,
        cow_faults=sum(s.cow_faults for s in spaces),
        private_bytes_per_process={s.name: s.private_bytes for s in spaces},
    )


def patch_cost_bytes(pages_patched: int, processes: int) -> int:
    """Extra physical memory consumed when ``pages_patched`` code pages are
    privatised in each of ``processes`` processes (patch-after-fork).

    This is the closed-form version of the paper's estimate: ~280 patched
    pages ≈ 1.1 MB per process, ~0.5 GB for a busy prefork server.
    """
    return pages_patched * processes * PAGE_SIZE
