"""Microarchitectural models: caches, TLBs, branch prediction, CPU."""

from repro.uarch.backend import BACKENDS, BatchedBackend, make_runner
from repro.uarch.btb import BTB
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.component import ComponentRegistry, SimComponent, default_registry
from repro.uarch.counters import PerfCounters
from repro.uarch.cpu import CPU, CPUConfig, CPUHooks, Mark
from repro.uarch.machine import CheckpointStore, MachineState, machine_key
from repro.uarch.multicore import DualCoreSystem
from repro.uarch.predictor import GsharePredictor, ReturnAddressStack
from repro.uarch.timing import TimingModel
from repro.uarch.tlb import TLB

__all__ = [
    "BACKENDS",
    "BTB",
    "BatchedBackend",
    "CPU",
    "CPUConfig",
    "CPUHooks",
    "CheckpointStore",
    "ComponentRegistry",
    "DualCoreSystem",
    "GsharePredictor",
    "MachineState",
    "Mark",
    "PerfCounters",
    "ReturnAddressStack",
    "SetAssociativeCache",
    "SimComponent",
    "TLB",
    "TimingModel",
    "default_registry",
    "machine_key",
    "make_runner",
]
