"""Conditional-branch direction predictor (gshare) and return-address stack."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.uarch.component import check_geometry


class GsharePredictor:
    """Classic gshare: global history XOR PC indexing a 2-bit counter table."""

    def __init__(self, table_entries: int = 4096, history_bits: int = 12) -> None:
        if table_entries & (table_entries - 1):
            raise ConfigError(f"gshare table size {table_entries} must be a power of two")
        self._mask = table_entries - 1
        self._history_mask = (1 << history_bits) - 1
        # 2-bit saturating counters, initialised weakly taken.
        self._table = bytearray([2] * table_entries)
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def record(self, pc: int, taken: bool) -> bool:
        """Predict, then train on the outcome; returns True on mispredict."""
        self.predictions += 1
        index = self._index(pc)
        predicted = self._table[index] >= 2
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._history_mask
        mispredicted = predicted != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    def reset_history(self) -> None:
        """Clear the global history register (context switch)."""
        self._history = 0

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Counter table, history register and stats, JSON-safe."""
        return {
            "table_entries": len(self._table),
            "history_mask": self._history_mask,
            "table": list(self._table),
            "history": self._history,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically shaped predictor."""
        check_geometry(
            "gshare",
            state,
            table_entries=len(self._table),
            history_mask=self._history_mask,
        )
        self._table = bytearray(state["table"])
        self._history = int(state["history"])
        self.predictions = int(state["predictions"])
        self.mispredictions = int(state["mispredictions"])

    def reset(self) -> None:
        """Weakly-taken counters, cleared history, zeroed stats."""
        self._table = bytearray([2] * len(self._table))
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def describe(self) -> dict:
        """Static geometry."""
        return {
            "kind": "gshare",
            "table_entries": len(self._table),
            "history_bits": self._history_mask.bit_length(),
        }


class ReturnAddressStack:
    """Fixed-depth RAS; overflows wrap, underflows mispredict."""

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ConfigError("RAS depth must be positive")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.mispredictions = 0

    def push(self, return_addr: int) -> None:
        """Record a call's return address."""
        self.pushes += 1
        if len(self._stack) >= self.depth:
            # Overflow: oldest entry is lost (circular RAS).
            self._stack.pop(0)
        self._stack.append(return_addr)

    def pop_and_check(self, actual_target: int) -> bool:
        """Predict a return; returns True if the prediction was wrong."""
        self.pops += 1
        predicted = self._stack.pop() if self._stack else None
        if predicted != actual_target:
            self.mispredictions += 1
            return True
        return False

    def clear(self) -> None:
        """Empty the stack (context switch)."""
        self._stack.clear()

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Stack contents and stats, JSON-safe."""
        return {
            "depth": self.depth,
            "stack": list(self._stack),
            "pushes": self.pushes,
            "pops": self.pops,
            "mispredictions": self.mispredictions,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on a RAS of the same depth."""
        check_geometry("RAS", state, depth=self.depth)
        self._stack = [int(v) for v in state["stack"]]
        self.pushes = int(state["pushes"])
        self.pops = int(state["pops"])
        self.mispredictions = int(state["mispredictions"])

    def reset(self) -> None:
        """Empty stack, zeroed stats."""
        self._stack.clear()
        self.pushes = 0
        self.pops = 0
        self.mispredictions = 0

    def describe(self) -> dict:
        """Static geometry."""
        return {"kind": "ras", "depth": self.depth}
