"""The SimComponent protocol and the CPU's component registry.

Every hardware structure the simulator models — caches, TLBs, the BTB,
the direction predictor, the return-address stack, the ABTB, the Bloom
filter, the performance counters — is a *component*: an object that can
describe its geometry, serialise its complete architectural state to a
JSON-safe dict, and restore that state bit-for-bit into a freshly built
instance.  Components are what make :class:`~repro.uarch.machine.
MachineState` checkpoints possible: a warm-up window is simulated once,
snapshotted, and every configuration variant forks from the restored
state instead of re-simulating it.

Snapshot contract
-----------------

* ``snapshot()`` returns a dict containing only JSON-safe values (ints,
  floats, strings, bools, lists, dicts with string keys).  Arbitrarily
  large ints are allowed — Python's ``json`` round-trips them exactly.
* ``restore(state)`` accepts either a dict produced by ``snapshot()`` on
  a *compatible* instance (same geometry) or the result of JSON
  round-tripping one; incompatible geometry raises
  :class:`~repro.errors.ConfigError`.
* ``reset()`` returns the component to its just-constructed state.
* ``describe()`` returns a JSON-safe dict of static configuration —
  geometry, policies, sizes — never dynamic state.
* ``snapshot() → restore()`` must be exact: every subsequent event
  produces identical counters on the restored instance and on the
  original.  :func:`verify_component_roundtrip` checks this structurally
  (snapshot → restore → snapshot equality after a JSON round-trip).

The registry
------------

:class:`ComponentRegistry` maps component names to factories over
:class:`~repro.uarch.cpu.CPUConfig`; the CPU assembles itself from a
registry instead of hard-wiring constructor calls, so alternative
structures (a different BTB organisation, a perfect cache) drop in by
registering a factory under the same name.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Protocol, runtime_checkable

from repro.errors import ConfigError


@runtime_checkable
class SimComponent(Protocol):
    """Protocol every simulated hardware structure implements."""

    def snapshot(self) -> dict:
        """Complete architectural state as a JSON-safe dict."""
        ...  # pragma: no cover - protocol

    def restore(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot` on a compatible
        instance."""
        ...  # pragma: no cover - protocol

    def reset(self) -> None:
        """Return to the just-constructed state (state *and* stats)."""
        ...  # pragma: no cover - protocol

    def describe(self) -> dict:
        """Static configuration (geometry, policy) as a JSON-safe dict."""
        ...  # pragma: no cover - protocol


#: A factory building one component from a CPUConfig.
ComponentFactory = Callable[[object], SimComponent]


class ComponentRegistry:
    """Named component factories the CPU assembles itself from.

    The default registry (:func:`default_registry`) builds the paper's
    machine; experiments can ``clone()`` it and override individual
    entries to swap structures without touching the CPU.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, ComponentFactory] = {}

    def register(self, name: str, factory: ComponentFactory) -> None:
        """Add (or replace) the factory for ``name``."""
        self._factories[name] = factory

    def factory(self, name: str) -> ComponentFactory:
        try:
            return self._factories[name]
        except KeyError:
            raise ConfigError(
                f"no component registered under {name!r}; "
                f"known: {sorted(self._factories)}"
            ) from None

    def names(self) -> list[str]:
        """Registered component names, in registration order."""
        return list(self._factories)

    def build(self, config) -> Dict[str, SimComponent]:
        """Instantiate every registered component for ``config``."""
        return {name: factory(config) for name, factory in self._factories.items()}

    def clone(self) -> "ComponentRegistry":
        """An independent copy (override entries without global effect)."""
        out = ComponentRegistry()
        out._factories.update(self._factories)
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._factories


def default_registry() -> "ComponentRegistry":
    """The paper's machine: L1I/L1D/L2, I/D-TLB, BTB, gshare, RAS,
    perf counters."""
    # Imported here to avoid a cycle (cpu.py imports this module).
    from repro.uarch.btb import BTB
    from repro.uarch.cache import SetAssociativeCache
    from repro.uarch.counters import PerfCounters
    from repro.uarch.predictor import GsharePredictor, ReturnAddressStack
    from repro.uarch.tlb import TLB

    registry = ComponentRegistry()
    registry.register(
        "l1i", lambda c: SetAssociativeCache("L1I", c.l1i_bytes, c.line_bytes, c.l1i_ways)
    )
    registry.register(
        "l1d", lambda c: SetAssociativeCache("L1D", c.l1d_bytes, c.line_bytes, c.l1d_ways)
    )
    registry.register(
        "l2", lambda c: SetAssociativeCache("L2", c.l2_bytes, c.line_bytes, c.l2_ways)
    )
    registry.register("itlb", lambda c: TLB("ITLB", c.itlb_entries, c.itlb_ways))
    registry.register("dtlb", lambda c: TLB("DTLB", c.dtlb_entries, c.dtlb_ways))
    registry.register("btb", lambda c: BTB(c.btb_entries, c.btb_ways))
    registry.register("gshare", lambda c: GsharePredictor(c.gshare_entries, c.history_bits))
    registry.register("ras", lambda c: ReturnAddressStack(c.ras_depth))
    registry.register("counters", lambda c: PerfCounters())
    return registry


# ------------------------------------------------------------ state codecs
#
# Shared helpers for components whose state is a dict keyed by integers
# (cache sets, BTB sets).  JSON objects force string keys, so tables are
# encoded as lists of [key, value...] rows instead.


def encode_table(table: dict) -> list:
    """``{int: scalar}`` → ``[[key, value], ...]`` (JSON-safe, ordered)."""
    return [[int(k), v] for k, v in table.items()]


def decode_table(rows: list) -> dict:
    """Inverse of :func:`encode_table`."""
    return {int(k): v for k, v in rows}


def check_geometry(name: str, state: dict, **expected) -> None:
    """Raise :class:`ConfigError` when a snapshot's recorded geometry does
    not match the instance it is being restored into."""
    for key, want in expected.items():
        got = state.get(key)
        if got != want:
            raise ConfigError(
                f"{name}: snapshot {key}={got!r} does not match instance {key}={want!r}"
            )


def verify_component_roundtrip(component: SimComponent, fresh: SimComponent) -> None:
    """Assert ``fresh.restore(json(component.snapshot()))`` reproduces the
    exact snapshot.  Raises :class:`ConfigError` on any divergence."""
    state = component.snapshot()
    recovered = json.loads(json.dumps(state))
    fresh.restore(recovered)
    again = fresh.snapshot()
    if again != state:
        raise ConfigError(
            f"{type(component).__name__}: snapshot/restore round-trip diverged"
        )
