"""Batched (vectorized hot path) simulation backend.

The reference interpreter (:meth:`repro.uarch.cpu.CPU.run`) dispatches one
handler call per :class:`~repro.isa.events.TraceEvent` and pays Python
attribute-access overhead for every counter bump and structure probe.  On
the long workload profiles ~99% of events are straight-line ``BLOCK``
runs, plain ``LOAD``/``STORE`` accesses, branches, and direct or
indirect calls and jumps (including the call + ``jmp *GOT`` trampoline
pairs the paper's mechanism targets) — kinds whose entire effect is
cache/TLB/predictor arithmetic plus calls into mechanism-owned state.

:class:`BatchedBackend` exploits that split:

* the event stream is cut into :class:`~repro.trace.batch.TraceBatch`
  chunks (numpy structured arrays); cache-line and TLB-page numbers for
  whole batches are derived with vectorized shifts up front;
* a tight scalar loop retires the fast kinds against local copies of the
  hot counters and the live cache/TLB/BTB/gshare/RAS state, mirroring
  :meth:`CPU._fetch` / :meth:`CPU._data_access` / the branch and
  trampoline-pair handlers operation-for-operation — including float
  addition order, so cycle totals are bit-identical.  Consecutive
  touches of the same cache line or TLB page (the common case for
  sequential fetch) are retired as guaranteed hits without re-probing
  the set, which is exact because the most recently used entry of a
  structure cannot have been evicted.  Trampoline-pair lookahead becomes
  an index peek at the next batch rows instead of a cursor round trip;
* everything else — context switches, coherence invalidations, calls
  whose trampoline lookahead crosses the batch boundary, and every kind
  when hooks observe the CPU — *falls back to the reference
  interpreter*: local state is synced into the
  CPU, the event retires through ``CPU._dispatch`` exactly as the
  reference backend would retire it, and the locals are reloaded.

Because the fallback runs the reference code itself and the fast path is
a literal transcription of it, the two backends are counter-for-counter
equivalent — a property enforced mechanically by :mod:`repro.difftest`
rather than assumed.

The backend reports a *sync point* after every batch (``sync_hook``): at
that moment no lookahead is outstanding, ``counters.cycles`` is synced,
and a full :meth:`CPU.snapshot` is comparable against a reference run
that consumed the same number of stream events.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, TraceError
from repro.isa.events import event_from_row
from repro.isa.kinds import MAX_EVENT_KIND, EventKind
from repro.trace.batch import TraceBatch, iter_batches
from repro.uarch.cpu import Mark

#: Backend names accepted by runners, the CLI and the difftest harness.
BACKENDS = ("reference", "batched")

_K_BLOCK = int(EventKind.BLOCK)
_K_CALL_DIRECT = int(EventKind.CALL_DIRECT)
_K_CALL_INDIRECT = int(EventKind.CALL_INDIRECT)
_K_JMP_INDIRECT = int(EventKind.JMP_INDIRECT)
_K_JMP_DIRECT = int(EventKind.JMP_DIRECT)
_K_RET = int(EventKind.RET)
_K_COND_BRANCH = int(EventKind.COND_BRANCH)
_K_LOAD = int(EventKind.LOAD)
_K_STORE = int(EventKind.STORE)
_K_MARK = int(EventKind.MARK)


class _DecodedBatch:
    """One :class:`TraceBatch` unpacked for the scalar hot loop.

    Columns are plain Python lists (indexing numpy scalars in a tight
    loop is slower than ``tolist()`` once); line/page numbers are
    precomputed for the whole batch with vectorized shifts.
    """

    __slots__ = (
        "n",
        "kind",
        "pc",
        "n_instr",
        "nbytes",
        "target",
        "mem_addr",
        "taken",
        "tag_idx",
        "tags",
        "ifirst",
        "ilast",
        "pfirst",
        "plast",
        "dvpn",
        "dline",
        "dline2",
    )

    def __init__(
        self,
        batch: TraceBatch,
        i_shift: int,
        it_shift: int,
        d1_shift: int,
        l2_shift: int,
        dt_shift: int,
    ) -> None:
        data = batch.data
        self.n = len(data)
        self.kind = data["kind"].tolist()
        pc = data["pc"]
        nb = data["nbytes"]
        ma = data["mem_addr"]
        self.pc = pc.tolist()
        self.n_instr = data["n_instr"].tolist()
        self.nbytes = nb.tolist()
        self.target = data["target"].tolist()
        self.mem_addr = ma.tolist()
        self.taken = data["taken"].tolist()
        # Most batches carry no tags at all; skip the column then.
        self.tag_idx = data["tag"].tolist() if batch.tags else None
        self.tags = batch.tags
        # Fetch spans: first/last code byte of each event, as the
        # reference computes them (``pc + max(nbytes, 1) - 1``).
        last_byte = pc + np.maximum(nb, 1) - 1
        self.ifirst = (pc >> i_shift).tolist()
        self.ilast = (last_byte >> i_shift).tolist()
        self.pfirst = (pc >> it_shift).tolist()
        self.plast = (last_byte >> it_shift).tolist()
        # Data side: D-TLB page and L1D line of ``mem_addr``; the L2 is
        # probed by its own line shift (equal to L1D's under the default
        # registry, in which case the column is shared).
        self.dvpn = (ma >> dt_shift).tolist()
        self.dline = (ma >> d1_shift).tolist()
        self.dline2 = (
            self.dline if l2_shift == d1_shift else (ma >> l2_shift).tolist()
        )

    def event(self, i: int):
        """Materialise row ``i`` for a reference-handler fallback."""
        ti = -1 if self.tag_idx is None else self.tag_idx[i]
        return event_from_row(
            self.kind[i],
            self.pc[i],
            self.n_instr[i],
            self.nbytes[i],
            self.target[i],
            self.mem_addr[i],
            self.taken[i],
            None if ti < 0 else self.tags[ti],
        )


class _BatchCursor:
    """The :class:`~repro.uarch.cpu.EventCursor` protocol over batches.

    Reference handlers passed a fallback event use this to look ahead
    (trampoline-pair detection) and push non-matching events back.  It
    reads straight from the backend's position, so lookahead can cross a
    batch boundary transparently.
    """

    __slots__ = ("_be",)

    def __init__(self, backend: "BatchedBackend") -> None:
        self._be = backend

    def next(self):
        be = self._be
        if be._pending:
            return be._pending.pop()
        while True:
            dec = be._cur
            if dec is None:
                return None
            i = be._i
            if i < dec.n:
                be._i = i + 1
                return dec.event(i)
            be._advance()

    def push(self, ev) -> None:
        self._be._pending.append(ev)


class BatchedBackend:
    """Drives a :class:`~repro.uarch.cpu.CPU` over batched traces.

    The backend owns no architectural state: everything lives in the CPU
    and its components, exactly as under the reference interpreter, so
    snapshots, checkpoints and mid-run hook observations are unchanged.
    A backend instance is reusable but not reentrant.
    """

    def __init__(self, cpu, batch_events: int = 4096) -> None:
        if batch_events < 1:
            raise ConfigError(f"batch_events must be positive, got {batch_events}")
        self.cpu = cpu
        self.batch_events = batch_events
        self._fast: tuple = ()
        self._shifts: tuple = ()
        self._batches = iter(())
        self._cur: _DecodedBatch | None = None
        self._i = 0
        self._base = 0
        self._pending: list = []
        self._cursor = _BatchCursor(self)

    @property
    def position(self) -> int:
        """Stream events consumed so far (lookahead included)."""
        return self._base + self._i

    # ----------------------------------------------------------------- run

    def run(self, events, sync_hook=None):
        """Process an event stream; returns the CPU's (live) counters.

        ``sync_hook(position)`` is called after each batch retires; at
        that point no lookahead is outstanding and the CPU state
        (``counters.cycles`` included) equals a reference run over the
        first ``position`` stream events.
        """
        self._batches = iter_batches(events, self.batch_events)
        return self._drive(sync_hook)

    def run_batches(self, batches, sync_hook=None):
        """Like :meth:`run`, but consumes :class:`TraceBatch` objects
        directly — the array-native hot path.

        No ``to_events`` / ``from_events`` round trip happens: oversized
        batches are re-cut into zero-copy views
        (:meth:`TraceBatch.slices`) of at most ``batch_events`` rows, so
        sync-point spacing (and therefore difftest comparability and
        watchdog cadence) is identical to a :meth:`run` over the same
        stream.
        """

        def resliced():
            cap = self.batch_events
            for batch in batches:
                m = len(batch)
                if not m:
                    continue
                if m <= cap:
                    yield batch
                else:
                    yield from batch.slices(cap)

        self._batches = resliced()
        return self._drive(sync_hook)

    def _drive(self, sync_hook):
        """Retire ``self._batches`` against the CPU (shared by
        :meth:`run` and :meth:`run_batches`)."""
        cpu = self.cpu
        fast = [False] * (MAX_EVENT_KIND + 1)
        fast[_K_BLOCK] = True
        fast[_K_LOAD] = True
        fast[_K_COND_BRANCH] = True
        fast[_K_RET] = True
        fast[_K_JMP_DIRECT] = True
        fast[_K_MARK] = True
        # Hooks want full event context for stores and trampoline pairs,
        # so an instrumented CPU retires those on the reference path.
        # (Store *snooping* goes through the mechanism's own methods —
        # its state needs no syncing — so a mechanism alone is fine.)
        fast[_K_STORE] = cpu.hooks is None
        fast[_K_CALL_DIRECT] = cpu.hooks is None
        fast[_K_CALL_INDIRECT] = cpu.hooks is None
        fast[_K_JMP_INDIRECT] = cpu.hooks is None
        self._fast = tuple(fast)
        self._shifts = (
            cpu.l1i.line_shift,
            cpu.itlb.page_shift,
            cpu.l1d.line_shift,
            cpu.l2.line_shift,
            cpu.dtlb.page_shift,
        )
        self._cur = None
        self._i = 0
        self._base = 0
        self._pending = []
        self._advance()
        while self._cur is not None:
            dec = self._cur
            self._run_batch(dec)
            if self._cur is dec and self._i >= dec.n:
                self._advance()
            if sync_hook is not None:
                cpu.counters.cycles = cpu.cycles
                sync_hook(self.position)
        cpu.counters.cycles = cpu.cycles
        return cpu.counters

    def _advance(self) -> None:
        """Move to the next batch (decoding it), or to end-of-stream."""
        if self._cur is not None:
            self._base += self._cur.n
        batch = next(self._batches, None)
        if batch is None:
            self._cur = None
            self._i = 0
            return
        self._cur = _DecodedBatch(batch, *self._shifts)
        self._i = 0

    # ---------------------------------------------------------- state sync
    #
    # The hot loop works on local copies of every scalar it mutates: the
    # cycle clock, counter fields, cache/TLB stamp/stats, and the BTB /
    # gshare / RAS scalars.  They are written back before any reference
    # handler runs and reloaded afterwards, so handlers always see (and
    # update) the truth.  Container state (set dicts, the gshare counter
    # table, the RAS stack) is mutated in place through shared
    # references; those references are refetched after every fallback in
    # case a handler replaced the container.

    def _load_state(self) -> tuple:
        cpu = self.cpu
        c = cpu.counters
        l1i, l2, l1d, itlb, dtlb = cpu.l1i, cpu.l2, cpu.l1d, cpu.itlb, cpu.dtlb
        btb, gshare, ras = cpu.btb, cpu.gshare, cpu.ras
        return (
            cpu.cycles,
            c.instructions,
            c.loads,
            c.stores,
            c.branches,
            c.branch_mispredictions,
            c.btb_lookups,
            c.btb_misses,
            c.trampolines_executed,
            c.trampolines_skipped,
            c.trampoline_instructions,
            c.got_loads,
            c.abtb_hits,
            c.abtb_misses,
            c.abtb_inserts,
            c.l1i_accesses,
            c.l1i_misses,
            c.l1d_accesses,
            c.l1d_misses,
            c.l2_accesses,
            c.l2_misses,
            c.itlb_accesses,
            c.itlb_misses,
            c.dtlb_accesses,
            c.dtlb_misses,
            l1i._stamp,
            l1i.accesses,
            l1i.misses,
            l2._stamp,
            l2.accesses,
            l2.misses,
            l1d._stamp,
            l1d.accesses,
            l1d.misses,
            itlb._stamp,
            itlb.accesses,
            itlb.misses,
            dtlb._stamp,
            dtlb.accesses,
            dtlb.misses,
            btb._stamp,
            btb.lookups,
            btb.misses,
            btb.updates,
            gshare._history,
            gshare.predictions,
            gshare.mispredictions,
            ras.pushes,
            ras.pops,
            ras.mispredictions,
        )

    def _store_state(self, state: tuple) -> None:
        cpu = self.cpu
        c = cpu.counters
        l1i, l2, l1d, itlb, dtlb = cpu.l1i, cpu.l2, cpu.l1d, cpu.itlb, cpu.dtlb
        btb, gshare, ras = cpu.btb, cpu.gshare, cpu.ras
        (
            cpu.cycles,
            c.instructions,
            c.loads,
            c.stores,
            c.branches,
            c.branch_mispredictions,
            c.btb_lookups,
            c.btb_misses,
            c.trampolines_executed,
            c.trampolines_skipped,
            c.trampoline_instructions,
            c.got_loads,
            c.abtb_hits,
            c.abtb_misses,
            c.abtb_inserts,
            c.l1i_accesses,
            c.l1i_misses,
            c.l1d_accesses,
            c.l1d_misses,
            c.l2_accesses,
            c.l2_misses,
            c.itlb_accesses,
            c.itlb_misses,
            c.dtlb_accesses,
            c.dtlb_misses,
            l1i._stamp,
            l1i.accesses,
            l1i.misses,
            l2._stamp,
            l2.accesses,
            l2.misses,
            l1d._stamp,
            l1d.accesses,
            l1d.misses,
            itlb._stamp,
            itlb.accesses,
            itlb.misses,
            dtlb._stamp,
            dtlb.accesses,
            dtlb.misses,
            btb._stamp,
            btb.lookups,
            btb.misses,
            btb.updates,
            gshare._history,
            gshare.predictions,
            gshare.mispredictions,
            ras.pushes,
            ras.pops,
            ras.mispredictions,
        ) = state

    # ----------------------------------------------------------- the loop

    def _run_batch(self, dec: _DecodedBatch) -> None:
        """Retire the current batch (and any lookahead it drags in).

        Returns with ``self._pending`` empty; ``self._cur``/``self._i``
        may point past ``dec`` when a trampoline pair straddled the
        batch boundary.
        """
        cpu = self.cpu
        t = cpu.config.timing
        base_cpi = t.base_cpi
        lat_i1 = t.l1i_miss
        lat_l2 = t.l2_miss
        lat_it = t.itlb_miss
        lat_dt = t.dtlb_miss
        lat_d1 = t.l1d_miss
        lat_mp = t.mispredict
        bubble = cpu.config.direct_btb_bubble
        l1i, l2, l1d, itlb, dtlb = cpu.l1i, cpu.l2, cpu.l1d, cpu.itlb, cpu.dtlb
        btb = cpu.btb
        gshare = cpu.gshare
        ras = cpu.ras
        b_sets = btb._sets
        b_mask = btb._set_mask
        b_ways = btb.ways
        g_table = gshare._table
        g_mask = gshare._mask
        g_hmask = gshare._history_mask
        r_stack = ras._stack
        r_depth = ras.depth
        marks_append = cpu.marks.append
        mech = cpu.mechanism
        snoop = mech.snoop_store if mech is not None else None
        mech_invalidate = mech.invalidate if mech is not None else None
        use_bloom = mech.config.use_bloom if mech is not None else True
        mapped_target = mech.mapped_target if mech is not None else None
        mech_learn = mech.learn if mech is not None else None
        note_promotion = mech.note_promotion if mech is not None else None
        note_unsafe_skip = mech.note_unsafe_skip if mech is not None else None
        i_sets, i_mask, i_tagshift, i_ways = l1i.hot_state()
        l2_sets, l2_mask, l2_tagshift, l2_ways = l2.hot_state()
        d1_sets, d1_mask, d1_tagshift, d1_ways = l1d.hot_state()
        it_sets, it_mask, it_tagshift, it_ways = itlb.hot_state()
        dt_sets, dt_mask, dt_tagshift, dt_ways = dtlb.hot_state()

        kinds = dec.kind
        pcs = dec.pc
        n_instrs = dec.n_instr
        nbs = dec.nbytes
        targets = dec.target
        mem_addrs = dec.mem_addr
        takens = dec.taken
        tag_idx = dec.tag_idx
        tags = dec.tags
        ifirst, ilast = dec.ifirst, dec.ilast
        pfirst, plast = dec.pfirst, dec.plast
        dvpns, dlines, dlines2 = dec.dvpn, dec.dline, dec.dline2
        n = dec.n
        fast = self._fast
        dispatch = cpu._dispatch
        cursor = self._cursor
        pending = self._pending
        # A fast-kind event that cannot be retired inline (a direct call
        # whose trampoline lookahead crosses the batch end) sets this to
        # route exactly one dispatch unit through the reference path.
        force_slow = False

        # MRU shortcut state for the fetch side: the most recently
        # touched L1I line / I-TLB page is guaranteed resident, so a
        # repeat touch is a hit whose only effect is accesses+1,
        # stamp+1, entry=stamp (the entry is already in MRU dict
        # position).  Sequential fetch makes this hit ~50% of the time;
        # the data side shows no such locality on the workload profiles
        # (<1% repeat lines), so D accesses always take the full probe.
        # A sentinel of -1 (no valid address shifts to it) disables the
        # shortcut; it is reset whenever a reference handler runs, since
        # handlers probe the same structures.
        last_iline = -1
        last_ie: dict = {}
        last_itg = 0
        last_vpn = -1
        last_pe: dict = {}
        last_ptg = 0

        (
            cycles,
            c_instr,
            c_loads,
            c_stores,
            c_branches,
            c_mispred,
            c_btb_lk,
            c_btb_miss,
            c_tramp_exec,
            c_tramp_skip,
            c_tramp_instr,
            c_got_loads,
            c_abtb_hits,
            c_abtb_misses,
            c_abtb_inserts,
            c_l1i_acc,
            c_l1i_mis,
            c_l1d_acc,
            c_l1d_mis,
            c_l2_acc,
            c_l2_mis,
            c_it_acc,
            c_it_mis,
            c_dt_acc,
            c_dt_mis,
            i_stamp,
            i_acc,
            i_mis,
            l2_stamp,
            l2_acc,
            l2_mis,
            d1_stamp,
            d1_acc,
            d1_mis,
            it_stamp,
            it_acc,
            it_mis,
            dt_stamp,
            dt_acc,
            dt_mis,
            b_stamp,
            b_lookups,
            b_misses,
            b_updates,
            g_hist,
            g_preds,
            g_mis,
            r_pushes,
            r_pops,
            r_mis,
        ) = self._load_state()

        while True:
            i = self._i
            if not pending and (self._cur is not dec or i >= n):
                break
            if not pending and not force_slow and fast[kinds[i]]:
                # ------------------------------------------- fast path
                while i < n:
                    k = kinds[i]
                    if not fast[k]:
                        break
                    if k == _K_MARK:
                        ti = -1 if tag_idx is None else tag_idx[i]
                        marks_append(
                            Mark(None if ti < 0 else tags[ti], c_instr, cycles)
                        )
                        i += 1
                        continue
                    if k == _K_CALL_DIRECT:
                        # Trampoline-pair lookahead as an index peek
                        # (CPU._handle_call_direct's cursor protocol).
                        # pair_s: ARM stub row or -1; pair_j: indirect
                        # branch row or -1 for a plain direct call.
                        pair_s = -1
                        pair_j = -1
                        nj = i + 1
                        if nj >= n:
                            force_slow = True  # lookahead leaves the batch
                            break
                        nk = kinds[nj]
                        if nk == _K_JMP_INDIRECT and pcs[nj] == targets[i]:
                            pair_j = nj  # x86-64 stub: branch is the body
                        elif (
                            nk == _K_BLOCK
                            and pcs[nj] == targets[i]
                            and nbs[nj] <= 12
                        ):
                            # ARM-style address-computation prefix.
                            nj2 = i + 2
                            if nj2 >= n:
                                force_slow = True
                                break
                            if (
                                kinds[nj2] == _K_JMP_INDIRECT
                                and pcs[nj2] == pcs[nj] + nbs[nj]
                            ):
                                pair_s = nj
                                pair_j = nj2
                    # --- CPU._fetch, inlined ---
                    ni = n_instrs[i]
                    c_instr += ni
                    cycles += ni * base_cpi
                    line = ifirst[i]
                    lb = ilast[i]
                    vpn = pfirst[i]
                    pb = plast[i]
                    if line == lb == last_iline and vpn == pb == last_vpn:
                        # Whole fetch inside the MRU line and MRU page:
                        # two guaranteed hits (and the reference's
                        # `0 * itlb_miss` charge is a float no-op).
                        c_l1i_acc += 1
                        i_acc += 1
                        i_stamp += 1
                        last_ie[last_itg] = i_stamp
                        c_it_acc += 1
                        it_acc += 1
                        it_stamp += 1
                        last_pe[last_ptg] = it_stamp
                        if k == _K_BLOCK:
                            i += 1
                            continue
                    else:
                        c_l1i_acc += lb - line + 1
                        while True:
                            if line == last_iline:
                                i_acc += 1
                                i_stamp += 1
                                last_ie[last_itg] = i_stamp
                            else:
                                i_acc += 1
                                i_stamp += 1
                                e = i_sets[line & i_mask]
                                tg = line >> i_tagshift
                                if tg in e:
                                    del e[tg]
                                    e[tg] = i_stamp
                                else:
                                    i_mis += 1
                                    if len(e) >= i_ways:
                                        del e[next(iter(e))]
                                    e[tg] = i_stamp
                                    c_l1i_mis += 1
                                    cycles += lat_i1
                                    c_l2_acc += 1
                                    l2_acc += 1
                                    l2_stamp += 1
                                    e2 = l2_sets[line & l2_mask]
                                    tg2 = line >> l2_tagshift
                                    if tg2 in e2:
                                        del e2[tg2]
                                        e2[tg2] = l2_stamp
                                    else:
                                        l2_mis += 1
                                        if len(e2) >= l2_ways:
                                            del e2[next(iter(e2))]
                                        e2[tg2] = l2_stamp
                                        c_l2_mis += 1
                                        cycles += lat_l2
                                last_iline = line
                                last_ie = e
                                last_itg = tg
                            if line >= lb:
                                break
                            line += 1
                        c_it_acc += pb - vpn + 1
                        if vpn == pb and vpn == last_vpn:
                            # Same single page again: guaranteed hit, and
                            # the reference's `0 * itlb_miss` cycle charge
                            # is a float no-op, so skipping it is
                            # bit-exact.
                            it_acc += 1
                            it_stamp += 1
                            last_pe[last_ptg] = it_stamp
                        else:
                            tmiss = 0
                            while True:
                                it_acc += 1
                                it_stamp += 1
                                e = it_sets[vpn & it_mask]
                                tg = vpn >> it_tagshift
                                if tg in e:
                                    del e[tg]
                                    e[tg] = it_stamp
                                else:
                                    it_mis += 1
                                    tmiss += 1
                                    if len(e) >= it_ways:
                                        del e[next(iter(e))]
                                    e[tg] = it_stamp
                                if vpn >= pb:
                                    break
                                vpn += 1
                            last_vpn = vpn
                            last_pe = e
                            last_ptg = tg
                            # One fused add, as the reference charges
                            # I-TLB misses.
                            c_it_mis += tmiss
                            cycles += tmiss * lat_it
                        if k == _K_BLOCK:
                            i += 1
                            continue
                    if k == _K_LOAD or k == _K_STORE:
                        # --- CPU._data_access, inlined ---
                        if k == _K_STORE:
                            c_stores += 1
                        else:
                            c_loads += 1
                        vpn = dvpns[i]
                        dt_acc += 1
                        dt_stamp += 1
                        e = dt_sets[vpn & dt_mask]
                        tg = vpn >> dt_tagshift
                        if tg in e:
                            del e[tg]
                            e[tg] = dt_stamp
                        else:
                            dt_mis += 1
                            if len(e) >= dt_ways:
                                del e[next(iter(e))]
                            e[tg] = dt_stamp
                            c_dt_mis += 1
                            cycles += lat_dt
                        c_dt_acc += 1
                        line = dlines[i]
                        d1_acc += 1
                        d1_stamp += 1
                        e = d1_sets[line & d1_mask]
                        tg = line >> d1_tagshift
                        if tg in e:
                            del e[tg]
                            e[tg] = d1_stamp
                        else:
                            d1_mis += 1
                            if len(e) >= d1_ways:
                                del e[next(iter(e))]
                            e[tg] = d1_stamp
                            c_l1d_mis += 1
                            cycles += lat_d1
                            c_l2_acc += 1
                            line2 = dlines2[i]
                            l2_acc += 1
                            l2_stamp += 1
                            e2 = l2_sets[line2 & l2_mask]
                            tg2 = line2 >> l2_tagshift
                            if tg2 in e2:
                                del e2[tg2]
                                e2[tg2] = l2_stamp
                            else:
                                l2_mis += 1
                                if len(e2) >= l2_ways:
                                    del e2[next(iter(e2))]
                                e2[tg2] = l2_stamp
                                c_l2_mis += 1
                                cycles += lat_l2
                        c_l1d_acc += 1
                        if k == _K_STORE and snoop is not None:
                            # --- CPU._handle_store's mechanism tail ---
                            snoop(mem_addrs[i])
                            if tag_idx is not None and not use_bloom:
                                ti = tag_idx[i]
                                if ti >= 0 and tags[ti] == "got-store":
                                    mech_invalidate()
                    elif k == _K_COND_BRANCH:
                        # --- CPU._cond_branch, inlined past the fetch
                        # (gshare.record and the BTB probe in locals) ---
                        c_branches += 1
                        pc_ = pcs[i]
                        tk = takens[i]
                        g_preds += 1
                        gi = ((pc_ >> 2) ^ g_hist) & g_mask
                        counter = g_table[gi]
                        if tk:
                            if counter < 3:
                                g_table[gi] = counter + 1
                            g_hist = ((g_hist << 1) | 1) & g_hmask
                            if counter < 2:  # predicted not-taken
                                g_mis += 1
                                c_mispred += 1
                                cycles += lat_mp
                            c_btb_lk += 1
                            b_lookups += 1
                            bse = b_sets[(pc_ >> 2) & b_mask]
                            hit = bse.get(pc_)
                            if hit is None:
                                b_misses += 1
                                c_btb_miss += 1
                                cycles += bubble
                            else:
                                b_stamp += 1
                                del bse[pc_]
                                bse[pc_] = (hit[0], b_stamp)
                            # update runs on hit and miss alike
                            b_updates += 1
                            b_stamp += 1
                            if pc_ in bse:
                                del bse[pc_]
                            elif len(bse) >= b_ways:
                                del bse[next(iter(bse))]
                            bse[pc_] = (targets[i], b_stamp)
                        else:
                            if counter > 0:
                                g_table[gi] = counter - 1
                            g_hist = (g_hist << 1) & g_hmask
                            if counter >= 2:  # predicted taken
                                g_mis += 1
                                c_mispred += 1
                                cycles += lat_mp
                    elif k == _K_RET:
                        # --- CPU._ret, inlined past the fetch ---
                        c_branches += 1
                        r_pops += 1
                        if r_stack:
                            predicted = r_stack.pop()
                        else:
                            predicted = None
                        if predicted != targets[i]:
                            r_mis += 1
                            c_mispred += 1
                            cycles += lat_mp
                    elif k == _K_JMP_DIRECT:
                        # --- CPU._jmp_direct, inlined past the fetch ---
                        c_branches += 1
                        c_btb_lk += 1
                        b_lookups += 1
                        pc_ = pcs[i]
                        bse = b_sets[(pc_ >> 2) & b_mask]
                        hit = bse.get(pc_)
                        if hit is None:
                            b_misses += 1
                            c_btb_miss += 1
                            cycles += bubble
                            b_updates += 1
                            b_stamp += 1
                            if len(bse) >= b_ways:
                                del bse[next(iter(bse))]
                            bse[pc_] = (targets[i], b_stamp)
                        else:
                            b_stamp += 1
                            del bse[pc_]
                            bse[pc_] = (hit[0], b_stamp)
                    elif k == _K_CALL_INDIRECT:
                        # --- CPU._call_indirect, inlined past the fetch ---
                        if mem_addrs[i]:
                            # target load: CPU._data_access, inlined
                            c_loads += 1
                            vpn = dvpns[i]
                            dt_acc += 1
                            dt_stamp += 1
                            e = dt_sets[vpn & dt_mask]
                            tg = vpn >> dt_tagshift
                            if tg in e:
                                del e[tg]
                                e[tg] = dt_stamp
                            else:
                                dt_mis += 1
                                if len(e) >= dt_ways:
                                    del e[next(iter(e))]
                                e[tg] = dt_stamp
                                c_dt_mis += 1
                                cycles += lat_dt
                            c_dt_acc += 1
                            line = dlines[i]
                            d1_acc += 1
                            d1_stamp += 1
                            e = d1_sets[line & d1_mask]
                            tg = line >> d1_tagshift
                            if tg in e:
                                del e[tg]
                                e[tg] = d1_stamp
                            else:
                                d1_mis += 1
                                if len(e) >= d1_ways:
                                    del e[next(iter(e))]
                                e[tg] = d1_stamp
                                c_l1d_mis += 1
                                cycles += lat_d1
                                c_l2_acc += 1
                                line2 = dlines2[i]
                                l2_acc += 1
                                l2_stamp += 1
                                e2 = l2_sets[line2 & l2_mask]
                                tg2 = line2 >> l2_tagshift
                                if tg2 in e2:
                                    del e2[tg2]
                                    e2[tg2] = l2_stamp
                                else:
                                    l2_mis += 1
                                    if len(e2) >= l2_ways:
                                        del e2[next(iter(e2))]
                                    e2[tg2] = l2_stamp
                                    c_l2_mis += 1
                                    cycles += lat_l2
                            c_l1d_acc += 1
                        c_branches += 1
                        pc_ = pcs[i]
                        r_pushes += 1
                        if len(r_stack) >= r_depth:
                            del r_stack[0]  # circular overflow
                        r_stack.append(pc_ + nbs[i])
                        c_btb_lk += 1
                        b_lookups += 1
                        bse = b_sets[(pc_ >> 2) & b_mask]
                        hit = bse.get(pc_)
                        if hit is None:
                            b_misses += 1
                            c_btb_miss += 1
                            pred = None
                        else:
                            b_stamp += 1
                            del bse[pc_]
                            bse[pc_] = (hit[0], b_stamp)
                            pred = hit[0]
                        if pred != targets[i]:
                            c_mispred += 1
                            cycles += lat_mp
                        # update runs unconditionally
                        b_updates += 1
                        b_stamp += 1
                        if pc_ in bse:
                            del bse[pc_]
                        elif len(bse) >= b_ways:
                            del bse[next(iter(bse))]
                        bse[pc_] = (targets[i], b_stamp)
                    elif k == _K_JMP_INDIRECT:
                        # --- CPU._jmp_indirect, inlined past the fetch.
                        # Only stream-reached stubs land here; pair tails
                        # are consumed by the CALL_DIRECT path above.
                        # (The tail-call hooks callback is void: this kind
                        # is fast only when hooks is None.) ---
                        if mem_addrs[i]:
                            # GOT load: CPU._data_access, inlined
                            c_loads += 1
                            vpn = dvpns[i]
                            dt_acc += 1
                            dt_stamp += 1
                            e = dt_sets[vpn & dt_mask]
                            tg = vpn >> dt_tagshift
                            if tg in e:
                                del e[tg]
                                e[tg] = dt_stamp
                            else:
                                dt_mis += 1
                                if len(e) >= dt_ways:
                                    del e[next(iter(e))]
                                e[tg] = dt_stamp
                                c_dt_mis += 1
                                cycles += lat_dt
                            c_dt_acc += 1
                            line = dlines[i]
                            d1_acc += 1
                            d1_stamp += 1
                            e = d1_sets[line & d1_mask]
                            tg = line >> d1_tagshift
                            if tg in e:
                                del e[tg]
                                e[tg] = d1_stamp
                            else:
                                d1_mis += 1
                                if len(e) >= d1_ways:
                                    del e[next(iter(e))]
                                e[tg] = d1_stamp
                                c_l1d_mis += 1
                                cycles += lat_d1
                                c_l2_acc += 1
                                line2 = dlines2[i]
                                l2_acc += 1
                                l2_stamp += 1
                                e2 = l2_sets[line2 & l2_mask]
                                tg2 = line2 >> l2_tagshift
                                if tg2 in e2:
                                    del e2[tg2]
                                    e2[tg2] = l2_stamp
                                else:
                                    l2_mis += 1
                                    if len(e2) >= l2_ways:
                                        del e2[next(iter(e2))]
                                    e2[tg2] = l2_stamp
                                    c_l2_mis += 1
                                    cycles += lat_l2
                            c_l1d_acc += 1
                            c_got_loads += 1
                        c_branches += 1
                        ti = -1 if tag_idx is None else tag_idx[i]
                        if ti >= 0 and tags[ti] == "plt":
                            # Tail-called trampoline: executes, never
                            # learned by the call+branch pattern.
                            c_tramp_exec += 1
                            c_tramp_instr += 1
                        pc_ = pcs[i]
                        c_btb_lk += 1
                        b_lookups += 1
                        bse = b_sets[(pc_ >> 2) & b_mask]
                        hit = bse.get(pc_)
                        if hit is None:
                            b_misses += 1
                            c_btb_miss += 1
                            pred = None
                        else:
                            b_stamp += 1
                            del bse[pc_]
                            bse[pc_] = (hit[0], b_stamp)
                            pred = hit[0]
                        if pred != targets[i]:
                            c_mispred += 1
                            cycles += lat_mp
                        # update runs unconditionally
                        b_updates += 1
                        b_stamp += 1
                        if pc_ in bse:
                            del bse[pc_]
                        elif len(bse) >= b_ways:
                            del bse[next(iter(bse))]
                        bse[pc_] = (targets[i], b_stamp)
                    else:
                        # --- CALL_DIRECT: CPU._call_direct or
                        # CPU._trampoline_pair, inlined past the fetch ---
                        c_branches += 1
                        pc_ = pcs[i]
                        real = targets[i]
                        r_pushes += 1
                        if len(r_stack) >= r_depth:
                            del r_stack[0]  # circular overflow
                        r_stack.append(pc_ + nbs[i])
                        c_btb_lk += 1
                        b_lookups += 1
                        bse = b_sets[(pc_ >> 2) & b_mask]
                        hit = bse.get(pc_)
                        if hit is None:
                            b_misses += 1
                            c_btb_miss += 1
                            pred = None
                        else:
                            b_stamp += 1
                            del bse[pc_]
                            bse[pc_] = (hit[0], b_stamp)
                            pred = hit[0]
                        if pair_j < 0:
                            # Plain direct call.
                            if pred is None:
                                cycles += bubble
                                b_updates += 1
                                b_stamp += 1
                                if len(bse) >= b_ways:
                                    del bse[next(iter(bse))]
                                bse[pc_] = (real, b_stamp)
                            elif pred != real:
                                c_mispred += 1
                                cycles += lat_mp
                                b_updates += 1
                                b_stamp += 1
                                del bse[pc_]
                                bse[pc_] = (real, b_stamp)
                            i += 1
                            continue
                        jpc = pcs[pair_j]
                        jt = targets[pair_j]
                        jma = mem_addrs[pair_j]
                        if mech is not None:
                            mapped = mapped_target(real)
                            if mapped is not None:
                                c_abtb_hits += 1
                            else:
                                c_abtb_misses += 1
                            if mapped is not None and pred == mapped:
                                # Promoted prediction validated by the
                                # ABTB: the stub's rows are consumed
                                # without charging any structure.
                                if mapped != jt:
                                    note_unsafe_skip()
                                c_tramp_skip += 1
                                i = pair_j + 1
                                continue
                            update_target = mapped if mapped is not None else real
                            if (
                                pred is not None
                                and pred != real
                                and pred != (mapped or -1)
                            ):
                                c_mispred += 1
                                cycles += lat_mp
                                b_updates += 1
                                b_stamp += 1
                                del bse[pc_]
                                bse[pc_] = (update_target, b_stamp)
                            elif pred is None:
                                cycles += bubble
                                b_updates += 1
                                b_stamp += 1
                                if len(bse) >= b_ways:
                                    del bse[next(iter(bse))]
                                bse[pc_] = (update_target, b_stamp)
                                if mapped is not None:
                                    note_promotion()
                            elif mapped is not None and pred == real:
                                b_updates += 1
                                b_stamp += 1
                                del bse[pc_]
                                bse[pc_] = (mapped, b_stamp)
                                note_promotion()
                        else:
                            if pred is None:
                                cycles += bubble
                                b_updates += 1
                                b_stamp += 1
                                if len(bse) >= b_ways:
                                    del bse[next(iter(bse))]
                                bse[pc_] = (real, b_stamp)
                            elif pred != real:
                                c_mispred += 1
                                cycles += lat_mp
                                b_updates += 1
                                b_stamp += 1
                                del bse[pc_]
                                bse[pc_] = (real, b_stamp)
                        # --- the trampoline executes ---
                        c_tramp_exec += 1
                        c_tramp_instr += 1 + (n_instrs[pair_s] if pair_s >= 0 else 0)
                        x = pair_s if pair_s >= 0 else pair_j
                        while True:
                            # Fetch the stub prefix (ARM) then the branch
                            # row — same inline fetch as the loop head.
                            ni = n_instrs[x]
                            c_instr += ni
                            cycles += ni * base_cpi
                            line = ifirst[x]
                            lb = ilast[x]
                            c_l1i_acc += lb - line + 1
                            while True:
                                if line == last_iline:
                                    i_acc += 1
                                    i_stamp += 1
                                    last_ie[last_itg] = i_stamp
                                else:
                                    i_acc += 1
                                    i_stamp += 1
                                    e = i_sets[line & i_mask]
                                    tg = line >> i_tagshift
                                    if tg in e:
                                        del e[tg]
                                        e[tg] = i_stamp
                                    else:
                                        i_mis += 1
                                        if len(e) >= i_ways:
                                            del e[next(iter(e))]
                                        e[tg] = i_stamp
                                        c_l1i_mis += 1
                                        cycles += lat_i1
                                        c_l2_acc += 1
                                        l2_acc += 1
                                        l2_stamp += 1
                                        e2 = l2_sets[line & l2_mask]
                                        tg2 = line >> l2_tagshift
                                        if tg2 in e2:
                                            del e2[tg2]
                                            e2[tg2] = l2_stamp
                                        else:
                                            l2_mis += 1
                                            if len(e2) >= l2_ways:
                                                del e2[next(iter(e2))]
                                            e2[tg2] = l2_stamp
                                            c_l2_mis += 1
                                            cycles += lat_l2
                                    last_iline = line
                                    last_ie = e
                                    last_itg = tg
                                if line >= lb:
                                    break
                                line += 1
                            vpn = pfirst[x]
                            pb = plast[x]
                            c_it_acc += pb - vpn + 1
                            if vpn == pb and vpn == last_vpn:
                                it_acc += 1
                                it_stamp += 1
                                last_pe[last_ptg] = it_stamp
                            else:
                                tmiss = 0
                                while True:
                                    it_acc += 1
                                    it_stamp += 1
                                    e = it_sets[vpn & it_mask]
                                    tg = vpn >> it_tagshift
                                    if tg in e:
                                        del e[tg]
                                        e[tg] = it_stamp
                                    else:
                                        it_mis += 1
                                        tmiss += 1
                                        if len(e) >= it_ways:
                                            del e[next(iter(e))]
                                        e[tg] = it_stamp
                                    if vpn >= pb:
                                        break
                                    vpn += 1
                                last_vpn = vpn
                                last_pe = e
                                last_ptg = tg
                                c_it_mis += tmiss
                                cycles += tmiss * lat_it
                            if x >= pair_j:
                                break
                            x = pair_j
                        if jma:
                            # --- GOT load: CPU._data_access, inlined ---
                            c_loads += 1
                            vpn = dvpns[pair_j]
                            dt_acc += 1
                            dt_stamp += 1
                            e = dt_sets[vpn & dt_mask]
                            tg = vpn >> dt_tagshift
                            if tg in e:
                                del e[tg]
                                e[tg] = dt_stamp
                            else:
                                dt_mis += 1
                                if len(e) >= dt_ways:
                                    del e[next(iter(e))]
                                e[tg] = dt_stamp
                                c_dt_mis += 1
                                cycles += lat_dt
                            c_dt_acc += 1
                            line = dlines[pair_j]
                            d1_acc += 1
                            d1_stamp += 1
                            e = d1_sets[line & d1_mask]
                            tg = line >> d1_tagshift
                            if tg in e:
                                del e[tg]
                                e[tg] = d1_stamp
                            else:
                                d1_mis += 1
                                if len(e) >= d1_ways:
                                    del e[next(iter(e))]
                                e[tg] = d1_stamp
                                c_l1d_mis += 1
                                cycles += lat_d1
                                c_l2_acc += 1
                                line2 = dlines2[pair_j]
                                l2_acc += 1
                                l2_stamp += 1
                                e2 = l2_sets[line2 & l2_mask]
                                tg2 = line2 >> l2_tagshift
                                if tg2 in e2:
                                    del e2[tg2]
                                    e2[tg2] = l2_stamp
                                else:
                                    l2_mis += 1
                                    if len(e2) >= l2_ways:
                                        del e2[next(iter(e2))]
                                    e2[tg2] = l2_stamp
                                    c_l2_mis += 1
                                    cycles += lat_l2
                            c_l1d_acc += 1
                            c_got_loads += 1
                        c_branches += 1
                        c_btb_lk += 1
                        b_lookups += 1
                        bsej = b_sets[(jpc >> 2) & b_mask]
                        hit = bsej.get(jpc)
                        if hit is None:
                            b_misses += 1
                            c_btb_miss += 1
                            tpred = None
                        else:
                            b_stamp += 1
                            del bsej[jpc]
                            bsej[jpc] = (hit[0], b_stamp)
                            tpred = hit[0]
                        if tpred != jt:
                            c_mispred += 1
                            cycles += lat_mp
                        b_updates += 1
                        b_stamp += 1
                        if jpc in bsej:
                            del bsej[jpc]
                        elif len(bsej) >= b_ways:
                            del bsej[next(iter(bsej))]
                        bsej[jpc] = (jt, b_stamp)
                        # --- retire-time learning ---
                        if mech is not None and jma:
                            mech_learn(pc_, real, jt, jma)
                            c_abtb_inserts += 1
                            b_updates += 1
                            b_stamp += 1
                            if pc_ in bse:
                                del bse[pc_]
                            elif len(bse) >= b_ways:
                                del bse[next(iter(bse))]
                            bse[pc_] = (jt, b_stamp)
                            note_promotion()
                        i = pair_j
                    i += 1
                self._i = i
                continue
            # ------------------- slow path: reference dispatch units,
            # synced once per slow *run* rather than per event.
            self._store_state(
                (
                    cycles, c_instr, c_loads, c_stores,
                    c_branches, c_mispred, c_btb_lk, c_btb_miss,
                    c_tramp_exec, c_tramp_skip, c_tramp_instr, c_got_loads,
                    c_abtb_hits, c_abtb_misses, c_abtb_inserts,
                    c_l1i_acc, c_l1i_mis, c_l1d_acc, c_l1d_mis,
                    c_l2_acc, c_l2_mis, c_it_acc, c_it_mis,
                    c_dt_acc, c_dt_mis,
                    i_stamp, i_acc, i_mis, l2_stamp, l2_acc, l2_mis,
                    d1_stamp, d1_acc, d1_mis, it_stamp, it_acc, it_mis,
                    dt_stamp, dt_acc, dt_mis,
                    b_stamp, b_lookups, b_misses, b_updates,
                    g_hist, g_preds, g_mis,
                    r_pushes, r_pops, r_mis,
                )
            )
            first = True
            while True:
                if pending:
                    # A fallback handler's lookahead pushed events back;
                    # they retire through the reference dispatch before
                    # any more batch rows are consumed (LIFO, as
                    # EventCursor pops).
                    ev = pending.pop()
                else:
                    i = self._i
                    if self._cur is not dec or i >= n:
                        break
                    if fast[kinds[i]] and not (force_slow and first):
                        break
                    ev = dec.event(i)
                    self._i = i + 1
                handler = dispatch.get(ev.kind)
                if handler is None:
                    raise TraceError(f"unhandled event kind {ev.kind!r}")
                handler(ev, cursor)
                first = False
            force_slow = False
            (
                cycles,
                c_instr,
                c_loads,
                c_stores,
                c_branches,
                c_mispred,
                c_btb_lk,
                c_btb_miss,
                c_tramp_exec,
                c_tramp_skip,
                c_tramp_instr,
                c_got_loads,
                c_abtb_hits,
                c_abtb_misses,
                c_abtb_inserts,
                c_l1i_acc,
                c_l1i_mis,
                c_l1d_acc,
                c_l1d_mis,
                c_l2_acc,
                c_l2_mis,
                c_it_acc,
                c_it_mis,
                c_dt_acc,
                c_dt_mis,
                i_stamp,
                i_acc,
                i_mis,
                l2_stamp,
                l2_acc,
                l2_mis,
                d1_stamp,
                d1_acc,
                d1_mis,
                it_stamp,
                it_acc,
                it_mis,
                dt_stamp,
                dt_acc,
                dt_mis,
                b_stamp,
                b_lookups,
                b_misses,
                b_updates,
                g_hist,
                g_preds,
                g_mis,
                r_pushes,
                r_pops,
                r_mis,
            ) = self._load_state()
            # The handlers probed the same structures: MRU shortcuts are
            # stale, and a component may even have swapped its tables.
            last_iline = last_vpn = -1
            i_sets = l1i.hot_state()[0]
            l2_sets = l2.hot_state()[0]
            d1_sets = l1d.hot_state()[0]
            it_sets = itlb.hot_state()[0]
            dt_sets = dtlb.hot_state()[0]
            b_sets = btb._sets
            g_table = gshare._table
            r_stack = ras._stack

        self._store_state(
            (
                cycles, c_instr, c_loads, c_stores,
                c_branches, c_mispred, c_btb_lk, c_btb_miss,
                c_tramp_exec, c_tramp_skip, c_tramp_instr, c_got_loads,
                c_abtb_hits, c_abtb_misses, c_abtb_inserts,
                c_l1i_acc, c_l1i_mis, c_l1d_acc, c_l1d_mis,
                c_l2_acc, c_l2_mis, c_it_acc, c_it_mis,
                c_dt_acc, c_dt_mis,
                i_stamp, i_acc, i_mis, l2_stamp, l2_acc, l2_mis,
                d1_stamp, d1_acc, d1_mis, it_stamp, it_acc, it_mis,
                dt_stamp, dt_acc, dt_mis,
                b_stamp, b_lookups, b_misses, b_updates,
                g_hist, g_preds, g_mis,
                r_pushes, r_pops, r_mis,
            )
        )


def make_runner(cpu, backend: str = "reference", batch_events: int = 4096):
    """A ``run(events)`` callable for ``cpu`` under the named backend."""
    if backend == "reference":
        return cpu.run
    if backend == "batched":
        return BatchedBackend(cpu, batch_events).run
    raise ConfigError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
