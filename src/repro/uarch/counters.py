"""Performance counters — the model's equivalent of the paper's VTune runs.

Counter names mirror Table 4 of the paper (misses and mispredictions per
kilo-instruction) plus mechanism-specific counters used by Figure 5 and
the ablation experiments.
"""

from __future__ import annotations

_FIELDS = (
    "instructions",
    "cycles",
    "l1i_accesses",
    "l1i_misses",
    "l1d_accesses",
    "l1d_misses",
    "l2_accesses",
    "l2_misses",
    "itlb_accesses",
    "itlb_misses",
    "dtlb_accesses",
    "dtlb_misses",
    "branches",
    "branch_mispredictions",
    "btb_lookups",
    "btb_misses",
    "loads",
    "stores",
    "trampolines_executed",
    "trampolines_skipped",
    "trampoline_instructions",
    "got_loads",
    "resolver_runs",
    "abtb_hits",
    "abtb_misses",
    "abtb_inserts",
    "abtb_flushes",
    "bloom_store_hits",
    "context_switches",
)


class PerfCounters:
    """A bundle of monotonically increasing event counters.

    Supports snapshot/delta arithmetic so experiments can attribute costs
    to individual requests, and PKI normalisation for paper-style tables.
    """

    __slots__ = _FIELDS

    def __init__(self, **initial: int) -> None:
        for name in _FIELDS:
            setattr(self, name, initial.pop(name, 0))
        if initial:
            raise TypeError(f"unknown counter(s): {sorted(initial)}")

    @staticmethod
    def field_names() -> tuple[str, ...]:
        """All counter names in declaration order."""
        return _FIELDS

    def copy(self) -> "PerfCounters":
        """An independent snapshot of the current values."""
        out = PerfCounters()
        for name in _FIELDS:
            setattr(out, name, getattr(self, name))
        return out

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        """Counters accumulated since ``earlier`` (self - earlier)."""
        out = PerfCounters()
        for name in _FIELDS:
            setattr(out, name, getattr(self, name) - getattr(earlier, name))
        return out

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Element-wise sum into a new bundle (multi-run aggregation)."""
        out = PerfCounters()
        for name in _FIELDS:
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out

    def _value(self, field: str) -> int:
        """A counter value, with a helpful error for typo'd field names."""
        if field not in _FIELDS:
            raise ValueError(
                f"unknown counter field {field!r}; valid fields: {', '.join(_FIELDS)}"
            )
        return getattr(self, field)

    def pki(self, field: str) -> float:
        """A counter normalised per kilo-instruction, as the paper reports."""
        value = self._value(field)
        if self.instructions == 0:
            return 0.0
        return 1000.0 * value / self.instructions

    def rate(self, field: str, per: str = "instructions") -> float:
        """``field`` divided by ``per`` (0.0 when the denominator is zero).

        The metrics sampler uses this for windowed ratios, e.g.
        ``rate("abtb_hits", "btb_lookups")`` or plain per-instruction rates.
        """
        numerator = self._value(field)
        denominator = self._value(per)
        return numerator / denominator if denominator else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def as_dict(self) -> dict[str, int]:
        """Plain dict of all counters."""
        return {name: getattr(self, name) for name in _FIELDS}

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """All counter values, JSON-safe."""
        return self.as_dict()

    def restore(self, state: dict) -> None:
        """Restore a snapshot; unknown fields raise ValueError."""
        unknown = set(state) - set(_FIELDS)
        if unknown:
            raise ValueError(f"unknown counter(s) in snapshot: {sorted(unknown)}")
        for name in _FIELDS:
            setattr(self, name, state.get(name, 0))

    def reset(self) -> None:
        """Zero every counter."""
        for name in _FIELDS:
            setattr(self, name, 0)

    def describe(self) -> dict:
        """Static metadata: the counter fields tracked."""
        return {"kind": "perf_counters", "fields": list(_FIELDS)}

    def table4_row(self) -> dict[str, float]:
        """The five PKI metrics of the paper's Table 4."""
        return {
            "I-$ Misses": self.pki("l1i_misses"),
            "I-TLB Misses": self.pki("itlb_misses"),
            "D-$ Misses": self.pki("l1d_misses"),
            "D-TLB Misses": self.pki("dtlb_misses"),
            "Branch Mispredictions": self.pki("branch_mispredictions"),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{n}={getattr(self, n)}" for n in _FIELDS if getattr(self, n))
        return f"PerfCounters({inner})"
