"""Branch target buffer model.

The BTB stores predicted targets indexed by branch PC.  It is the structure
the paper's mechanism reuses: the modified update logic writes the *library
function* address into a call site's entry instead of the trampoline
address, which is what makes the front end skip the trampoline.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.uarch.component import check_geometry


class BTB:
    """Set-associative branch target buffer with LRU replacement."""

    def __init__(self, entries: int = 2048, ways: int = 4) -> None:
        if entries % ways != 0:
            raise ConfigError(f"BTB: {entries} entries not divisible by {ways} ways")
        self.ways = ways
        self.n_sets = entries // ways
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError(f"BTB: set count {self.n_sets} must be a power of two")
        self._set_mask = self.n_sets - 1
        # Per set: pc -> (target, stamp), kept in LRU order (least
        # recently used first) for O(1) eviction; see cache.py.
        self._sets: list[dict[int, tuple[int, int]]] = [dict() for _ in range(self.n_sets)]
        self._stamp = 0
        self.lookups = 0
        self.misses = 0
        self.updates = 0

    def _set_for(self, pc: int) -> dict[int, tuple[int, int]]:
        return self._sets[(pc >> 2) & self._set_mask]

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at ``pc`` (None on miss)."""
        self.lookups += 1
        entries = self._set_for(pc)
        hit = entries.get(pc)
        if hit is None:
            self.misses += 1
            return None
        self._stamp += 1
        del entries[pc]  # move to MRU position (dict insertion order)
        entries[pc] = (hit[0], self._stamp)
        return hit[0]

    def update(self, pc: int, target: int) -> None:
        """Install or correct the target for the branch at ``pc``."""
        self.updates += 1
        self._stamp += 1
        entries = self._set_for(pc)
        if pc in entries:
            del entries[pc]
        elif len(entries) >= self.ways:
            del entries[next(iter(entries))]  # first key is LRU
        entries[pc] = (target, self._stamp)

    def peek(self, pc: int) -> int | None:
        """Non-mutating probe (no stats, no LRU update)."""
        hit = self._set_for(pc).get(pc)
        return hit[0] if hit is not None else None

    def invalidate(self, pc: int) -> None:
        """Drop the entry for one branch if present."""
        self._set_for(pc).pop(pc, None)

    def flush(self) -> None:
        """Invalidate every entry."""
        for entries in self._sets:
            entries.clear()

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Complete prediction/LRU state plus stats, JSON-safe."""
        return {
            "n_sets": self.n_sets,
            "ways": self.ways,
            "sets": [
                [[pc, target, stamp] for pc, (target, stamp) in entries.items()]
                for entries in self._sets
            ],
            "stamp": self._stamp,
            "lookups": self.lookups,
            "misses": self.misses,
            "updates": self.updates,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically shaped BTB."""
        check_geometry("BTB", state, n_sets=self.n_sets, ways=self.ways)
        self._sets = [
            {
                int(pc): (int(target), int(stamp))
                for pc, target, stamp in sorted(rows, key=lambda r: r[2])
            }
            for rows in state["sets"]
        ]
        self._stamp = int(state["stamp"])
        self.lookups = int(state["lookups"])
        self.misses = int(state["misses"])
        self.updates = int(state["updates"])

    def reset(self) -> None:
        """Cold BTB: empty sets, zeroed stats."""
        self.flush()
        self._stamp = 0
        self.lookups = 0
        self.misses = 0
        self.updates = 0

    def describe(self) -> dict:
        """Static geometry."""
        return {
            "kind": "btb",
            "entries": self.n_sets * self.ways,
            "ways": self.ways,
            "n_sets": self.n_sets,
        }

    @property
    def occupancy(self) -> int:
        """Number of live entries."""
        return sum(len(s) for s in self._sets)
