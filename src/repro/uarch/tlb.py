"""Translation lookaside buffer model (set-associative, LRU)."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.memory.pages import PAGE_SHIFT
from repro.uarch.cache import _in_lru_order
from repro.uarch.component import check_geometry, decode_table, encode_table


class TLB:
    """A set-associative TLB over 4 KB pages.

    Like the cache model, only reach (which pages are resident) is
    simulated; translations themselves are identity.
    """

    def __init__(self, name: str, entries: int, ways: int, page_shift: int = PAGE_SHIFT) -> None:
        if entries % ways != 0:
            raise ConfigError(f"{name}: {entries} entries not divisible by {ways} ways")
        self.name = name
        self.ways = ways
        self.n_sets = entries // ways
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError(f"{name}: set count {self.n_sets} must be a power of two")
        self._set_mask = self.n_sets - 1
        self._page_shift = page_shift
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._stamp = 0
        self.accesses = 0
        self.misses = 0

    def access_page(self, vpn: int) -> bool:
        """Translate one page; returns True on hit."""
        self.accesses += 1
        self._stamp += 1
        index = vpn & self._set_mask
        tag = vpn >> self._set_mask.bit_length() if self._set_mask else vpn
        entries = self._sets[index]
        if tag in entries:
            del entries[tag]  # move to MRU position (dict insertion order)
            entries[tag] = self._stamp
            return True
        self.misses += 1
        if len(entries) >= self.ways:
            del entries[next(iter(entries))]  # first key is LRU
        entries[tag] = self._stamp
        return False

    def access(self, addr: int) -> bool:
        """Translate the page containing ``addr``."""
        return self.access_page(addr >> self._page_shift)

    def access_range(self, addr: int, nbytes: int) -> int:
        """Translate all pages in ``[addr, addr+nbytes)``; returns misses."""
        if nbytes <= 0:
            return 0
        first = addr >> self._page_shift
        last = (addr + nbytes - 1) >> self._page_shift
        before = self.misses
        for vpn in range(first, last + 1):
            self.access_page(vpn)
        return self.misses - before

    def flush(self) -> None:
        """Invalidate all translations (a context switch without ASIDs)."""
        for entries in self._sets:
            entries.clear()

    @property
    def page_shift(self) -> int:
        """Byte address → virtual page number shift."""
        return self._page_shift

    def hot_state(self) -> tuple:
        """Lookup state for the batched backend's inline hot loop.

        Returns ``(sets, set_mask, tag_shift, ways)`` with the same tag
        rule as :meth:`access_page` (``tag_shift`` is 0 for a single-set
        TLB, where ``vpn >> 0`` is the full VPN).
        """
        return (self._sets, self._set_mask, self._set_mask.bit_length(), self.ways)

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Complete residency/LRU state plus stats, JSON-safe."""
        return {
            "name": self.name,
            "n_sets": self.n_sets,
            "ways": self.ways,
            "page_shift": self._page_shift,
            "sets": [encode_table(entries) for entries in self._sets],
            "stamp": self._stamp,
            "accesses": self.accesses,
            "misses": self.misses,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically shaped TLB."""
        check_geometry(
            self.name,
            state,
            n_sets=self.n_sets,
            ways=self.ways,
            page_shift=self._page_shift,
        )
        self._sets = [_in_lru_order(decode_table(rows)) for rows in state["sets"]]
        self._stamp = int(state["stamp"])
        self.accesses = int(state["accesses"])
        self.misses = int(state["misses"])

    def reset(self) -> None:
        """Cold TLB: empty sets, zeroed stats."""
        self.flush()
        self._stamp = 0
        self.accesses = 0
        self.misses = 0

    def describe(self) -> dict:
        """Static geometry."""
        return {
            "kind": "tlb",
            "name": self.name,
            "entries": self.n_sets * self.ways,
            "ways": self.ways,
            "n_sets": self.n_sets,
            "page_shift": self._page_shift,
        }

    @property
    def miss_rate(self) -> float:
        """Fraction of translations that missed."""
        return self.misses / self.accesses if self.accesses else 0.0
