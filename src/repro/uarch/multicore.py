"""Dual-core system with GOT-store coherence forwarding.

Section 3.2 of the paper: "When the processor retires a store instruction
to an address that hits in the bloom filter **(or an invalidation for
such an address is received from the coherence subsystem)**, all entries
in ABTB and the bloom filter are cleared."

This module models that cross-core path: two cores with private L1s,
TLBs, predictors and mechanisms, optionally sharing an L2.  Every store
one core retires is forwarded to the other core's mechanism as a
coherence invalidation, so a `dlopen`/`dlclose` (or any GOT rewrite)
performed by one core safely flushes the sibling's ABTB.

Intra-slice visibility window
-----------------------------

Execution is interleaved in fixed event slices, and a slice's stores are
forwarded to the sibling *after* the slice retires.  A store core 0
retires mid-slice is therefore guaranteed visible (as a coherence
invalidation) to core 1 before core 1's **next** slice begins, but not
within core 1's concurrently-modelled slice.  That window is the
modelling granularity, not a mechanism property: real hardware delivers
the invalidation at store retirement.  Tests that reason about cross-core
flush ordering must only assert visibility at slice boundaries
(``slice_events`` controls the window size).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import ConfigError
from repro.isa.events import TraceEvent
from repro.isa.kinds import EventKind
from repro.uarch.cpu import CPU, CPUConfig

#: Decides whether a store retired by ``src_core`` is forwarded to the
#: sibling's mechanism as a coherence invalidation.  Returning False drops
#: the invalidation — the fault-injection harness uses this to model lossy
#: or broken coherence delivery.
CoherenceFilter = Callable[[int, TraceEvent], bool]


class DualCoreSystem:
    """Two cores running independent traces with coherence between them.

    Traces are interleaved in fixed event slices (a coarse stand-in for
    simultaneous execution — fine-grained timing interaction is not the
    modelled phenomenon; store visibility ordering is).
    """

    def __init__(
        self,
        cpus: tuple[CPU, CPU],
        slice_events: int = 256,
        coherence_filter: CoherenceFilter | None = None,
    ) -> None:
        if len(cpus) != 2:
            raise ConfigError("DualCoreSystem models exactly two cores")
        if slice_events < 1:
            raise ConfigError("slice_events must be positive")
        self.cpus = cpus
        self.slice_events = slice_events
        self.coherence_filter = coherence_filter
        #: Coherence invalidations delivered to each core.
        self.invalidations_delivered = [0, 0]
        #: Invalidations the filter suppressed, per destination core.
        self.invalidations_dropped = [0, 0]

    @staticmethod
    def with_shared_l2(
        config: CPUConfig | None = None,
        mechanisms=(None, None),
        coherence_filter: CoherenceFilter | None = None,
    ) -> "DualCoreSystem":
        """Construct two cores sharing one L2 (like the paper's E5450)."""
        cpu0 = CPU(config, mechanisms[0])
        # Share the L2 through the component registry so cpu1's
        # ``components`` map (which snapshot/restore/describe iterate)
        # holds the shared instance.  Assigning ``cpu1.l2 = cpu0.l2``
        # after construction would only rebind the attribute alias and
        # leave the stale private L2 registered.
        registry = cpu0.registry.clone()
        registry.register("l2", lambda _cfg: cpu0.l2)
        cpu1 = CPU(config, mechanisms[1], registry=registry)
        return DualCoreSystem((cpu0, cpu1), coherence_filter=coherence_filter)

    def run(self, stream0: Iterable[TraceEvent], stream1: Iterable[TraceEvent]) -> None:
        """Interleave the two streams until both are exhausted."""
        iters: list[Iterator[TraceEvent] | None] = [iter(stream0), iter(stream1)]
        while any(iters):
            for core in (0, 1):
                it = iters[core]
                if it is None:
                    continue
                chunk: list[TraceEvent] = []
                for _ in range(self.slice_events):
                    ev = next(it, None)
                    if ev is None:
                        iters[core] = None
                        break
                    chunk.append(ev)
                if chunk:
                    self._run_slice(core, chunk)

    def _run_slice(self, core: int, chunk: list[TraceEvent]) -> None:
        """Run one slice on ``core`` and forward its stores to the other."""
        self.cpus[core].run(chunk)
        other = self.cpus[1 - core]
        if other.mechanism is None:
            return
        for ev in chunk:
            if ev.kind == EventKind.STORE:
                if self.coherence_filter is not None and not self.coherence_filter(core, ev):
                    self.invalidations_dropped[1 - core] += 1
                    continue
                self.invalidations_delivered[1 - core] += 1
                other.mechanism.coherence_invalidate(ev.mem_addr)

    def finalize(self):
        """Finalise both cores; returns their counter bundles."""
        return tuple(cpu.finalize() for cpu in self.cpus)
