"""Cycle cost model.

A simple additive timing model over the structural events the simulator
observes: base pipeline throughput plus fixed penalties for cache misses,
TLB walks and branch mispredictions.  Penalties default to values
representative of the paper's Xeon E5450 (Core-microarchitecture) testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TimingModel:
    """Penalty table used to convert event counts into cycles.

    Attributes:
        base_cpi: cycles per instruction with no stalls (superscalar issue).
        l1i_miss: extra cycles per L1I miss that hits the L2.
        l1d_miss: extra cycles per L1D miss that hits the L2.
        l2_miss: additional cycles when the L2 also misses (DRAM access).
        itlb_miss: extra cycles per I-TLB walk.
        dtlb_miss: extra cycles per D-TLB walk.
        mispredict: pipeline refill cost per branch misprediction.
        clock_ghz: clock rate used to convert cycles into wall time.
    """

    base_cpi: float = 0.40
    l1i_miss: float = 12.0
    l1d_miss: float = 14.0
    l2_miss: float = 120.0
    itlb_miss: float = 30.0
    dtlb_miss: float = 30.0
    mispredict: float = 14.0
    clock_ghz: float = 3.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0 or self.clock_ghz <= 0:
            raise ConfigError("base_cpi and clock_ghz must be positive")
        for name in ("l1i_miss", "l1d_miss", "l2_miss", "itlb_miss", "dtlb_miss", "mispredict"):
            if getattr(self, name) < 0:
                raise ConfigError(f"penalty {name} must be non-negative")

    def cycles_to_seconds(self, cycles: float) -> float:
        """Wall-clock seconds for ``cycles`` at the configured clock."""
        return cycles / (self.clock_ghz * 1e9)

    def cycles_to_microseconds(self, cycles: float) -> float:
        """Wall-clock microseconds for ``cycles``."""
        return cycles / (self.clock_ghz * 1e3)
