"""Trace-driven CPU front-end model.

The CPU consumes a stream of :class:`~repro.isa.events.TraceEvent` and
charges every structural effect the paper measures: L1I/L1D line touches,
I-TLB/D-TLB page touches, BTB lookups, direction predictions, RAS
operations and the resulting cycle costs.

When constructed with a :class:`~repro.core.TrampolineSkipMechanism`, the
model implements the paper's protocol:

* a ``call`` immediately followed by the indirect branch at its target is a
  *trampoline pair*;
* at the pair's retirement the mechanism learns the trampoline→function
  mapping and the call's BTB entry is promoted to the function address;
* on later executions the promoted prediction is validated against the
  ABTB and the trampoline is skipped entirely — no fetch, no GOT load, no
  second BTB entry;
* retired stores are snooped against the Bloom filter; hits flush the ABTB
  and execution degrades gracefully to baseline behaviour.

Misprediction accounting is deliberately symmetric between base and
enhanced configurations (Section 3.3's parity argument): direct branches
never count as mispredictions (a BTB miss on one costs only a small
front-end bubble), while indirect branches, conditional direction errors
and RAS mismatches count fully in both systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import TraceError
from repro.isa.events import TraceEvent
from repro.isa.kinds import EventKind
from repro.uarch.btb import BTB
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.counters import PerfCounters
from repro.uarch.predictor import GsharePredictor, ReturnAddressStack
from repro.uarch.timing import TimingModel
from repro.uarch.tlb import TLB


@dataclass(frozen=True)
class CPUConfig:
    """Structure sizes, defaulting to the paper's Xeon E5450 testbed.

    Attributes:
        l1i_bytes / l1i_ways: instruction cache geometry (32 KB, 8-way).
        l1d_bytes / l1d_ways: data cache geometry (32 KB, 8-way).
        l2_bytes / l2_ways: unified second-level cache (scaled from the
            E5450's shared 6 MB per core pair to the model's footprints).
        line_bytes: cache line size (64 B — four PLT stubs per line).
        itlb_entries / itlb_ways, dtlb_entries / dtlb_ways: TLB geometry.
        btb_entries / btb_ways: branch target buffer geometry (scaled
            to the synthetic workloads' branch-PC footprint).
        gshare_entries / history_bits: direction predictor geometry.
        ras_depth: return-address stack depth.
        direct_btb_bubble: cycles lost when a *direct* branch misses the
            BTB (front-end redirect at decode, not a true misprediction).
        timing: penalty table for the cycle model.
    """

    l1i_bytes: int = 32 * 1024
    l1i_ways: int = 8
    l1d_bytes: int = 32 * 1024
    l1d_ways: int = 8
    l2_bytes: int = 4 * 1024 * 1024
    l2_ways: int = 16
    line_bytes: int = 64
    itlb_entries: int = 128
    itlb_ways: int = 4
    dtlb_entries: int = 256
    dtlb_ways: int = 4
    btb_entries: int = 2048
    btb_ways: int = 4
    gshare_entries: int = 4096
    history_bits: int = 12
    ras_depth: int = 16
    direct_btb_bubble: float = 3.0
    timing: TimingModel = field(default_factory=TimingModel)


@dataclass
class Mark:
    """A request/phase boundary observed in the trace."""

    tag: object
    instructions: int
    cycles: float


class CPUHooks:
    """Observation points used by the chaos/fault-injection harness.

    Subclass (or duck-type) and override what you need; the default
    implementations are no-ops so hooks stay cheap to mix in.
    """

    def on_skip(self, call: TraceEvent, jmp: TraceEvent, target: int) -> None:
        """A trampoline skip committed: the call at ``call.pc`` went
        straight to ``target`` and the stub (``jmp``) was never fetched."""

    def on_store(self, addr: int) -> None:
        """A store to ``addr`` retired on this core."""

    def on_trampoline(
        self,
        site_pc: int,
        stub_pc: int,
        target: int,
        skipped: bool,
        n_instr: int,
        got_load: bool,
        abtb_hit: bool,
        mispredicted: bool,
    ) -> None:
        """One trampoline interaction retired — executed *or* skipped.

        ``site_pc`` is the originating call site (equal to ``stub_pc`` for
        tail-called trampolines the pairing logic never sees), ``n_instr``
        the stub instructions actually fetched (0 on a skip).  The
        observability profiler charges per-call-site costs through this
        hook point.
        """


class ChainedHooks(CPUHooks):
    """Fan one CPU's hook stream out to several observers.

    Lets the chaos oracle and the observability profiler (or any other
    :class:`CPUHooks` implementations) watch the same core at once.
    """

    def __init__(self, *hooks: CPUHooks | None) -> None:
        self.hooks: tuple[CPUHooks, ...] = tuple(h for h in hooks if h is not None)

    def on_skip(self, call: TraceEvent, jmp: TraceEvent, target: int) -> None:
        for hook in self.hooks:
            hook.on_skip(call, jmp, target)

    def on_store(self, addr: int) -> None:
        for hook in self.hooks:
            hook.on_store(addr)

    def on_trampoline(self, *args, **kwargs) -> None:
        for hook in self.hooks:
            hook.on_trampoline(*args, **kwargs)


class CPU:
    """One simulated core, optionally equipped with the skip mechanism."""

    def __init__(
        self,
        config: CPUConfig | None = None,
        mechanism: TrampolineSkipMechanism | None = None,
        hooks: CPUHooks | None = None,
    ) -> None:
        self.config = config if config is not None else CPUConfig()
        cfg = self.config
        self.mechanism = mechanism
        self.hooks = hooks
        self.l1i = SetAssociativeCache("L1I", cfg.l1i_bytes, cfg.line_bytes, cfg.l1i_ways)
        self.l1d = SetAssociativeCache("L1D", cfg.l1d_bytes, cfg.line_bytes, cfg.l1d_ways)
        self.l2 = SetAssociativeCache("L2", cfg.l2_bytes, cfg.line_bytes, cfg.l2_ways)
        self.itlb = TLB("ITLB", cfg.itlb_entries, cfg.itlb_ways)
        self.dtlb = TLB("DTLB", cfg.dtlb_entries, cfg.dtlb_ways)
        self.btb = BTB(cfg.btb_entries, cfg.btb_ways)
        self.gshare = GsharePredictor(cfg.gshare_entries, cfg.history_bits)
        self.ras = ReturnAddressStack(cfg.ras_depth)
        self.counters = PerfCounters()
        self.cycles = 0.0
        self.marks: list[Mark] = []

    # ------------------------------------------------------------ plumbing

    def _fetch(self, ev: TraceEvent) -> None:
        """Charge instruction fetch for an event's code bytes."""
        c = self.counters
        t = self.config.timing
        c.instructions += ev.n_instr
        self.cycles += ev.n_instr * t.base_cpi

        shift = self.l1i._line_shift
        first = ev.pc >> shift
        last = (ev.pc + max(ev.nbytes, 1) - 1) >> shift
        c.l1i_accesses += last - first + 1
        for line in range(first, last + 1):
            if not self.l1i.access_line(line):
                c.l1i_misses += 1
                self.cycles += t.l1i_miss
                c.l2_accesses += 1
                if not self.l2.access_line(line):
                    c.l2_misses += 1
                    self.cycles += t.l2_miss

        pshift = self.itlb._page_shift
        pfirst = ev.pc >> pshift
        plast = (ev.pc + max(ev.nbytes, 1) - 1) >> pshift
        c.itlb_accesses += plast - pfirst + 1
        before = self.itlb.misses
        for vpn in range(pfirst, plast + 1):
            self.itlb.access_page(vpn)
        t_misses = self.itlb.misses - before
        c.itlb_misses += t_misses
        self.cycles += t_misses * t.itlb_miss

    def _data_access(self, addr: int, is_store: bool) -> None:
        """Charge a data-side access (D-TLB walk + L1D line)."""
        c = self.counters
        t = self.config.timing
        if is_store:
            c.stores += 1
        else:
            c.loads += 1
        if not self.dtlb.access(addr):
            c.dtlb_misses += 1
            self.cycles += t.dtlb_miss
        c.dtlb_accesses += 1
        if not self.l1d.access(addr):
            c.l1d_misses += 1
            self.cycles += t.l1d_miss
            c.l2_accesses += 1
            if not self.l2.access(addr):
                c.l2_misses += 1
                self.cycles += t.l2_miss
        c.l1d_accesses += 1

    def _mispredict(self) -> None:
        self.counters.branch_mispredictions += 1
        self.cycles += self.config.timing.mispredict

    def _btb_lookup(self, pc: int) -> int | None:
        self.counters.btb_lookups += 1
        target = self.btb.lookup(pc)
        if target is None:
            self.counters.btb_misses += 1
        return target

    # ------------------------------------------------------------- events

    def run(self, events) -> PerfCounters:
        """Process an event stream; returns the (live) counter bundle."""
        it = iter(events)
        pending: list[TraceEvent] = []
        K = EventKind
        while True:
            if pending:
                ev = pending.pop(0)
            else:
                ev = next(it, None)
                if ev is None:
                    break
            kind = ev.kind
            if kind == K.BLOCK:
                self._fetch(ev)
            elif kind == K.CALL_DIRECT:
                nxt = pending.pop(0) if pending else next(it, None)
                if nxt is not None and nxt.kind == K.JMP_INDIRECT and nxt.pc == ev.target:
                    # x86-64 stub: the indirect branch is the whole body.
                    self._trampoline_pair(ev, nxt)
                elif (
                    nxt is not None
                    and nxt.kind == K.BLOCK
                    and nxt.pc == ev.target
                    and nxt.nbytes <= 12
                ):
                    # ARM-style stub: an address-computation prefix before
                    # the indirect branch (paper Figure 2b).
                    nxt2 = pending.pop(0) if pending else next(it, None)
                    if (
                        nxt2 is not None
                        and nxt2.kind == K.JMP_INDIRECT
                        and nxt2.pc == nxt.pc + nxt.nbytes
                    ):
                        self._trampoline_pair(ev, nxt2, stub=nxt)
                    else:
                        self._call_direct(ev)
                        pending = [e for e in (nxt, nxt2) if e is not None] + pending
                else:
                    self._call_direct(ev)
                    if nxt is not None:
                        pending.insert(0, nxt)
            elif kind == K.LOAD:
                self._fetch(ev)
                self._data_access(ev.mem_addr, is_store=False)
            elif kind == K.STORE:
                self._fetch(ev)
                self._data_access(ev.mem_addr, is_store=True)
                if self.hooks is not None:
                    self.hooks.on_store(ev.mem_addr)
                if self.mechanism is not None:
                    self.mechanism.snoop_store(ev.mem_addr)
                    if ev.tag == "got-store" and not self.mechanism.config.use_bloom:
                        # Section 3.4: without the Bloom filter, software
                        # (the dynamic linker) explicitly invalidates the
                        # ABTB whenever it rewrites a GOT slot.
                        self.mechanism.invalidate()
            elif kind == K.COND_BRANCH:
                self._cond_branch(ev)
            elif kind == K.RET:
                self._ret(ev)
            elif kind == K.CALL_INDIRECT:
                self._call_indirect(ev)
            elif kind == K.JMP_INDIRECT:
                # An indirect jump outside a trampoline pair (e.g. the
                # resolver's final jump to the function).
                self._jmp_indirect(ev)
            elif kind == K.JMP_DIRECT:
                self._jmp_direct(ev)
            elif kind == K.COHERENCE_INVAL:
                # A remote core invalidated this line; no local execution,
                # but the mechanism snoops it like a store (Section 3.2).
                if self.mechanism is not None:
                    self.mechanism.coherence_invalidate(ev.mem_addr)
            elif kind == K.CONTEXT_SWITCH:
                self._context_switch()
            elif kind == K.MARK:
                self.marks.append(Mark(ev.tag, self.counters.instructions, self.cycles))
            else:  # pragma: no cover - exhaustive dispatch
                raise TraceError(f"unhandled event kind {kind!r}")
        self.counters.cycles = self.cycles
        return self.counters

    # -------------------------------------------------------- branch kinds

    def _call_direct(self, ev: TraceEvent) -> None:
        """A direct call that is not a trampoline pair head."""
        self._fetch(ev)
        self.counters.branches += 1
        self.ras.push(ev.pc + ev.nbytes)
        pred = self._btb_lookup(ev.pc)
        if pred is None:
            # Direct target: decode redirects the front end — a bubble,
            # not an architectural misprediction.
            self.cycles += self.config.direct_btb_bubble
            self.btb.update(ev.pc, ev.target)
        elif pred != ev.target:
            # Only possible if the entry was promoted and then the pair
            # vanished (e.g. a patched binary); treat as a full flush.
            self._mispredict()
            self.btb.update(ev.pc, ev.target)

    def _jmp_direct(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        self.counters.branches += 1
        pred = self._btb_lookup(ev.pc)
        if pred is None:
            self.cycles += self.config.direct_btb_bubble
            self.btb.update(ev.pc, ev.target)

    def _call_indirect(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        if ev.mem_addr:
            self._data_access(ev.mem_addr, is_store=False)
        self.counters.branches += 1
        self.ras.push(ev.pc + ev.nbytes)
        pred = self._btb_lookup(ev.pc)
        if pred != ev.target:
            self._mispredict()
        self.btb.update(ev.pc, ev.target)

    def _jmp_indirect(self, ev: TraceEvent) -> None:
        """Indirect jump executed outside the trampoline-pair fast path."""
        self._fetch(ev)
        if ev.mem_addr:
            self._data_access(ev.mem_addr, is_store=False)
            self.counters.got_loads += 1
        self.counters.branches += 1
        tail_call = ev.tag == "plt"
        if tail_call:
            # A trampoline reached by a tail call (jmp, not call): it
            # executes but the mechanism's call+branch pattern never
            # learns it (Section 2.3's "unconventional tricks").
            self.counters.trampolines_executed += 1
            self.counters.trampoline_instructions += 1
        pred = self._btb_lookup(ev.pc)
        mispredicted = pred != ev.target
        if mispredicted:
            self._mispredict()
        self.btb.update(ev.pc, ev.target)
        if tail_call and self.hooks is not None:
            # No call site to charge: the stub's own PC is the best key.
            self.hooks.on_trampoline(
                ev.pc, ev.pc, ev.target, False, 1, bool(ev.mem_addr), False, mispredicted
            )

    def _cond_branch(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        self.counters.branches += 1
        if self.gshare.record(ev.pc, ev.taken):
            self._mispredict()
        if ev.taken:
            pred = self._btb_lookup(ev.pc)
            if pred is None:
                self.cycles += self.config.direct_btb_bubble
            self.btb.update(ev.pc, ev.target)

    def _ret(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        self.counters.branches += 1
        if self.ras.pop_and_check(ev.target):
            self._mispredict()

    # ----------------------------------------------------- trampoline pair

    def _trampoline_pair(
        self, call: TraceEvent, jmp: TraceEvent, stub: TraceEvent | None = None
    ) -> None:
        """A library call: ``call plt_stub`` + stub body ending in ``jmp *GOT``.

        ``stub`` carries the ARM-style address-computation prefix (None on
        x86-64).  With the mechanism enabled and the call's BTB entry
        promoted, the whole stub is skipped: its events are consumed
        without charging any structure — the instructions are never
        fetched or executed (3 instructions saved per call on ARM, 1 on
        x86-64).
        """
        c = self.counters
        mech = self.mechanism
        mp_before = c.branch_mispredictions
        abtb_hit = False

        self._fetch(call)
        c.branches += 1
        self.ras.push(call.pc + call.nbytes)
        pred = self._btb_lookup(call.pc)
        real = call.target  # the trampoline (PLT stub) address

        if mech is not None:
            mapped = mech.mapped_target(real)
            if mapped is not None:
                c.abtb_hits += 1
                abtb_hit = True
            else:
                c.abtb_misses += 1

            if mapped is not None and pred == mapped:
                # Promoted prediction validated by the ABTB: the trampoline
                # was never fetched.  (With the Bloom filter active the
                # mapping can never be stale; without it, a stale mapping is
                # a §3.4 contract violation that we count.)
                if mapped != jmp.target:
                    mech.note_unsafe_skip()
                c.trampolines_skipped += 1
                if self.hooks is not None:
                    self.hooks.on_skip(call, jmp, mapped)
                    self.hooks.on_trampoline(
                        call.pc, jmp.pc, mapped, True, 0, False, True, False
                    )
                return

            # The modified update logic always installs the ABTB-mapped
            # target when one exists (promotion), else the real target.
            update_target = mapped if mapped is not None else real
            if pred is not None and pred != real and pred != (mapped or -1):
                # Wrong-path fetch (e.g. promoted entry surviving an ABTB
                # flush): full pipeline flush, refetch of the trampoline.
                self._mispredict()
                self.btb.update(call.pc, update_target)
            elif pred is None:
                self.cycles += self.config.direct_btb_bubble
                self.btb.update(call.pc, update_target)
                if mapped is not None:
                    mech.note_promotion()
            elif mapped is not None and pred == real:
                # Correct trampoline-path prediction, but the modified
                # update logic promotes the entry to the function address.
                self.btb.update(call.pc, mapped)
                mech.note_promotion()
        else:
            if pred is None:
                self.cycles += self.config.direct_btb_bubble
                self.btb.update(call.pc, real)
            elif pred != real:
                self._mispredict()
                self.btb.update(call.pc, real)

        # --- the trampoline executes ---
        c.trampolines_executed += 1
        c.trampoline_instructions += 1 + (stub.n_instr if stub is not None else 0)
        if stub is not None:
            self._fetch(stub)
        self._fetch(jmp)
        if jmp.mem_addr:
            self._data_access(jmp.mem_addr, is_store=False)
            c.got_loads += 1
        c.branches += 1
        tpred = self._btb_lookup(jmp.pc)
        if tpred != jmp.target:
            self._mispredict()
        self.btb.update(jmp.pc, jmp.target)

        # --- retire-time learning ---
        # The ABTB is indexed by the call's real target (the stub address):
        # on x86-64 that equals the indirect branch's PC, on ARM the branch
        # sits after the stub's address-computation prefix.
        if mech is not None and jmp.mem_addr:
            mech.learn(call.pc, real, jmp.target, jmp.mem_addr)
            c.abtb_inserts += 1
            # Promote the call's BTB entry as the pair retires: the next
            # execution can already skip.  (On a first call this installs
            # the stub's lazy-resolution target, which the resolver's GOT
            # store immediately invalidates via the Bloom filter — one
            # extra startup misprediction, never in steady state.)
            self.btb.update(call.pc, jmp.target)
            mech.note_promotion()
        if self.hooks is not None:
            self.hooks.on_trampoline(
                call.pc,
                jmp.pc,
                jmp.target,
                False,
                1 + (stub.n_instr if stub is not None else 0),
                bool(jmp.mem_addr),
                abtb_hit,
                c.branch_mispredictions > mp_before,
            )

    # ------------------------------------------------------ context switch

    def _context_switch(self) -> None:
        self.counters.context_switches += 1
        self.itlb.flush()
        self.dtlb.flush()
        self.btb.flush()  # another process's branches evict our entries
        self.ras.clear()
        self.gshare.reset_history()
        if self.mechanism is not None:
            flushes_before = self.mechanism.abtb.flushes
            self.mechanism.on_context_switch()
            self.counters.abtb_flushes += self.mechanism.abtb.flushes - flushes_before

    # ----------------------------------------------------------- reporting

    def finalize(self) -> PerfCounters:
        """Sync the cycle accumulator into the counters and return them."""
        self.counters.cycles = self.cycles
        if self.mechanism is not None:
            self.counters.abtb_flushes = self.mechanism.abtb.flushes
            self.counters.bloom_store_hits = self.mechanism.stats.store_flushes
        return self.counters
