"""Trace-driven CPU front-end model.

The CPU consumes a stream of :class:`~repro.isa.events.TraceEvent` and
charges every structural effect the paper measures: L1I/L1D line touches,
I-TLB/D-TLB page touches, BTB lookups, direction predictions, RAS
operations and the resulting cycle costs.

Architecturally the CPU is a *composition of components*: every hardware
structure it contains (caches, TLBs, BTB, direction predictor, RAS,
performance counters) implements the
:class:`~repro.uarch.component.SimComponent` protocol and is assembled
from the :class:`~repro.uarch.component.ComponentRegistry` the CPU is
constructed with.  That buys two things:

* **swappability** — alternative structures drop in by overriding a
  registry entry, without touching the CPU;
* **snapshot/restore** — :meth:`CPU.snapshot` serialises the complete
  machine state (components, mechanism, cycle clock, marks) to a
  JSON-safe dict and :meth:`CPU.restore` reproduces it exactly, which is
  what :mod:`repro.uarch.machine` checkpoints are built on.

Event handling is a dispatch table over per-kind handlers
(:attr:`CPU._dispatch`); the trampoline-pair lookahead runs through an
:class:`EventCursor` that supports bounded push-back, replacing the old
monolithic ``run()`` loop.

When constructed with a :class:`~repro.core.TrampolineSkipMechanism`, the
model implements the paper's protocol:

* a ``call`` immediately followed by the indirect branch at its target is a
  *trampoline pair*;
* at the pair's retirement the mechanism learns the trampoline→function
  mapping and the call's BTB entry is promoted to the function address;
* on later executions the promoted prediction is validated against the
  ABTB and the trampoline is skipped entirely — no fetch, no GOT load, no
  second BTB entry;
* retired stores are snooped against the Bloom filter; hits flush the ABTB
  and execution degrades gracefully to baseline behaviour.

Misprediction accounting is deliberately symmetric between base and
enhanced configurations (Section 3.3's parity argument): direct branches
never count as mispredictions (a BTB miss on one costs only a small
front-end bubble), while indirect branches, conditional direction errors
and RAS mismatches count fully in both systems.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields as dataclass_fields

from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import ConfigError, TraceError
from repro.isa.events import TraceEvent
from repro.isa.kinds import EventKind
from repro.uarch.component import ComponentRegistry, default_registry
from repro.uarch.counters import PerfCounters
from repro.uarch.timing import TimingModel

#: Component names the CPU's datapath requires from any registry.
REQUIRED_COMPONENTS = (
    "l1i",
    "l1d",
    "l2",
    "itlb",
    "dtlb",
    "btb",
    "gshare",
    "ras",
    "counters",
)

#: CPUConfig fields that must be powers of two (structure indexability).
_POWER_OF_TWO_FIELDS = (
    "l1i_bytes",
    "l1d_bytes",
    "l2_bytes",
    "line_bytes",
    "itlb_entries",
    "dtlb_entries",
    "btb_entries",
    "gshare_entries",
)

#: CPUConfig fields that must be positive integers.
_POSITIVE_FIELDS = (
    "l1i_ways",
    "l1d_ways",
    "l2_ways",
    "itlb_ways",
    "dtlb_ways",
    "btb_ways",
    "ras_depth",
)


@dataclass(frozen=True)
class CPUConfig:
    """Structure sizes, defaulting to the paper's Xeon E5450 testbed.

    Every field is validated at construction: non-power-of-two structure
    sizes or negative latencies raise :class:`ValueError` naming the bad
    field (rather than silently producing nonsense counters downstream).

    Attributes:
        l1i_bytes / l1i_ways: instruction cache geometry (32 KB, 8-way).
        l1d_bytes / l1d_ways: data cache geometry (32 KB, 8-way).
        l2_bytes / l2_ways: unified second-level cache (scaled from the
            E5450's shared 6 MB per core pair to the model's footprints).
        line_bytes: cache line size (64 B — four PLT stubs per line).
        itlb_entries / itlb_ways, dtlb_entries / dtlb_ways: TLB geometry.
        btb_entries / btb_ways: branch target buffer geometry (scaled
            to the synthetic workloads' branch-PC footprint).
        gshare_entries / history_bits: direction predictor geometry.
        ras_depth: return-address stack depth.
        direct_btb_bubble: cycles lost when a *direct* branch misses the
            BTB (front-end redirect at decode, not a true misprediction).
        timing: penalty table for the cycle model.
    """

    l1i_bytes: int = 32 * 1024
    l1i_ways: int = 8
    l1d_bytes: int = 32 * 1024
    l1d_ways: int = 8
    l2_bytes: int = 4 * 1024 * 1024
    l2_ways: int = 16
    line_bytes: int = 64
    itlb_entries: int = 128
    itlb_ways: int = 4
    dtlb_entries: int = 256
    dtlb_ways: int = 4
    btb_entries: int = 2048
    btb_ways: int = 4
    gshare_entries: int = 4096
    history_bits: int = 12
    ras_depth: int = 16
    direct_btb_bubble: float = 3.0
    timing: TimingModel = field(default_factory=TimingModel)

    def __post_init__(self) -> None:
        for name in _POWER_OF_TWO_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1 or value & (value - 1):
                raise ValueError(
                    f"CPUConfig.{name} must be a positive power of two, got {value!r}"
                )
        for name in _POSITIVE_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"CPUConfig.{name} must be >= 1, got {value!r}")
        if not 1 <= self.history_bits <= 32:
            raise ValueError(
                f"CPUConfig.history_bits must be in [1, 32], got {self.history_bits!r}"
            )
        if self.direct_btb_bubble < 0:
            raise ValueError(
                "CPUConfig.direct_btb_bubble is a latency and must be "
                f"non-negative, got {self.direct_btb_bubble!r}"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict of every field (timing nested as a dict)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CPUConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown CPUConfig field(s): {sorted(unknown)}")
        payload = dict(data)
        if isinstance(payload.get("timing"), dict):
            payload["timing"] = TimingModel(**payload["timing"])
        return cls(**payload)


@dataclass
class Mark:
    """A request/phase boundary observed in the trace."""

    tag: object
    instructions: int
    cycles: float


class CPUHooks:
    """Observation points used by the chaos/fault-injection harness.

    Subclass (or duck-type) and override what you need; the default
    implementations are no-ops so hooks stay cheap to mix in.
    """

    def on_skip(self, call: TraceEvent, jmp: TraceEvent, target: int) -> None:
        """A trampoline skip committed: the call at ``call.pc`` went
        straight to ``target`` and the stub (``jmp``) was never fetched."""

    def on_store(self, addr: int) -> None:
        """A store to ``addr`` retired on this core."""

    def on_trampoline(
        self,
        site_pc: int,
        stub_pc: int,
        target: int,
        skipped: bool,
        n_instr: int,
        got_load: bool,
        abtb_hit: bool,
        mispredicted: bool,
    ) -> None:
        """One trampoline interaction retired — executed *or* skipped.

        ``site_pc`` is the originating call site (equal to ``stub_pc`` for
        tail-called trampolines the pairing logic never sees), ``n_instr``
        the stub instructions actually fetched (0 on a skip).  The
        observability profiler charges per-call-site costs through this
        hook point.
        """


class ChainedHooks(CPUHooks):
    """Fan one CPU's hook stream out to several observers.

    Lets the chaos oracle and the observability profiler (or any other
    :class:`CPUHooks` implementations) watch the same core at once.
    """

    def __init__(self, *hooks: CPUHooks | None) -> None:
        self.hooks: tuple[CPUHooks, ...] = tuple(h for h in hooks if h is not None)

    def on_skip(self, call: TraceEvent, jmp: TraceEvent, target: int) -> None:
        for hook in self.hooks:
            hook.on_skip(call, jmp, target)

    def on_store(self, addr: int) -> None:
        for hook in self.hooks:
            hook.on_store(addr)

    def on_trampoline(
        self,
        site_pc: int,
        stub_pc: int,
        target: int,
        skipped: bool,
        n_instr: int,
        got_load: bool,
        abtb_hit: bool,
        mispredicted: bool,
    ) -> None:
        for hook in self.hooks:
            hook.on_trampoline(
                site_pc,
                stub_pc,
                target,
                skipped,
                n_instr,
                got_load,
                abtb_hit,
                mispredicted,
            )


class EventCursor:
    """Pull-based view over an event stream with bounded push-back.

    The trampoline-pair handler looks ahead up to two events and may put
    them back; the cursor keeps that lookahead local instead of threading
    a ``pending`` list through the run loop.  Push-back is LIFO: events
    pushed in reverse order come back out in stream order.
    """

    __slots__ = ("_it", "_pushed")

    def __init__(self, events) -> None:
        self._it = iter(events)
        self._pushed: list[TraceEvent] = []

    def next(self) -> TraceEvent | None:
        """The next event, or None at end of stream."""
        if self._pushed:
            return self._pushed.pop()
        return next(self._it, None)

    def push(self, ev: TraceEvent) -> None:
        """Return an event to the front of the stream."""
        self._pushed.append(ev)


#: Schema version of :meth:`CPU.snapshot` payloads.  Version 2: the
#: Bloom filter snapshot carries its distinct-key set.
CPU_SNAPSHOT_VERSION = 2


class CPU:
    """One simulated core, optionally equipped with the skip mechanism.

    Args:
        config: structure geometry (defaults to the paper's testbed).
        mechanism: optional trampoline-skip mechanism (the "enhanced"
            configuration).
        hooks: optional :class:`CPUHooks` observer.
        registry: component registry the core is assembled from; defaults
            to :func:`~repro.uarch.component.default_registry`.  Must
            provide every name in :data:`REQUIRED_COMPONENTS`.
    """

    def __init__(
        self,
        config: CPUConfig | None = None,
        mechanism: TrampolineSkipMechanism | None = None,
        hooks: CPUHooks | None = None,
        registry: ComponentRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else CPUConfig()
        self.registry = registry if registry is not None else default_registry()
        missing = [n for n in REQUIRED_COMPONENTS if n not in self.registry]
        if missing:
            raise ConfigError(f"component registry is missing {missing}")
        self.mechanism = mechanism
        self.hooks = hooks
        #: Name → component map; attributes of the same names alias it.
        self.components = self.registry.build(self.config)
        for name, component in self.components.items():
            setattr(self, name, component)
        self.counters: PerfCounters  # for type checkers; set via components
        self.cycles = 0.0
        self.marks: list[Mark] = []
        self._dispatch = self._build_dispatch()

    def _build_dispatch(self):
        """The per-kind handler table the run loop dispatches through."""
        K = EventKind
        return {
            K.BLOCK: self._handle_block,
            K.CALL_DIRECT: self._handle_call_direct,
            K.LOAD: self._handle_load,
            K.STORE: self._handle_store,
            K.COND_BRANCH: self._handle_cond_branch,
            K.RET: self._handle_ret,
            K.CALL_INDIRECT: self._handle_call_indirect,
            K.JMP_INDIRECT: self._handle_jmp_indirect,
            K.JMP_DIRECT: self._handle_jmp_direct,
            K.COHERENCE_INVAL: self._handle_coherence_inval,
            K.CONTEXT_SWITCH: self._handle_context_switch,
            K.MARK: self._handle_mark,
        }

    # ------------------------------------------------------------ plumbing

    def _fetch(self, ev: TraceEvent) -> None:
        """Charge instruction fetch for an event's code bytes."""
        c = self.counters
        t = self.config.timing
        c.instructions += ev.n_instr
        self.cycles += ev.n_instr * t.base_cpi

        shift = self.l1i._line_shift
        first = ev.pc >> shift
        last = (ev.pc + max(ev.nbytes, 1) - 1) >> shift
        c.l1i_accesses += last - first + 1
        for line in range(first, last + 1):
            if not self.l1i.access_line(line):
                c.l1i_misses += 1
                self.cycles += t.l1i_miss
                c.l2_accesses += 1
                if not self.l2.access_line(line):
                    c.l2_misses += 1
                    self.cycles += t.l2_miss

        pshift = self.itlb._page_shift
        pfirst = ev.pc >> pshift
        plast = (ev.pc + max(ev.nbytes, 1) - 1) >> pshift
        c.itlb_accesses += plast - pfirst + 1
        before = self.itlb.misses
        for vpn in range(pfirst, plast + 1):
            self.itlb.access_page(vpn)
        t_misses = self.itlb.misses - before
        c.itlb_misses += t_misses
        self.cycles += t_misses * t.itlb_miss

    def _data_access(self, addr: int, is_store: bool) -> None:
        """Charge a data-side access (D-TLB walk + L1D line)."""
        c = self.counters
        t = self.config.timing
        if is_store:
            c.stores += 1
        else:
            c.loads += 1
        if not self.dtlb.access(addr):
            c.dtlb_misses += 1
            self.cycles += t.dtlb_miss
        c.dtlb_accesses += 1
        if not self.l1d.access(addr):
            c.l1d_misses += 1
            self.cycles += t.l1d_miss
            c.l2_accesses += 1
            if not self.l2.access(addr):
                c.l2_misses += 1
                self.cycles += t.l2_miss
        c.l1d_accesses += 1

    def _mispredict(self) -> None:
        self.counters.branch_mispredictions += 1
        self.cycles += self.config.timing.mispredict

    def _btb_lookup(self, pc: int) -> int | None:
        self.counters.btb_lookups += 1
        target = self.btb.lookup(pc)
        if target is None:
            self.counters.btb_misses += 1
        return target

    # ------------------------------------------------------------- events

    def run(self, events) -> PerfCounters:
        """Process an event stream; returns the (live) counter bundle."""
        cursor = EventCursor(events)
        dispatch = self._dispatch
        while True:
            ev = cursor.next()
            if ev is None:
                break
            handler = dispatch.get(ev.kind)
            if handler is None:
                raise TraceError(f"unhandled event kind {ev.kind!r}")
            handler(ev, cursor)
        self.counters.cycles = self.cycles
        return self.counters

    # ------------------------------------------------------ event handlers
    #
    # One handler per EventKind; each takes the event and the cursor (only
    # CALL_DIRECT looks ahead, to detect trampoline pairs).

    def _handle_block(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._fetch(ev)

    def _handle_call_direct(self, ev: TraceEvent, cursor: EventCursor) -> None:
        nxt = cursor.next()
        if nxt is not None and nxt.kind == EventKind.JMP_INDIRECT and nxt.pc == ev.target:
            # x86-64 stub: the indirect branch is the whole body.
            self._trampoline_pair(ev, nxt)
        elif (
            nxt is not None
            and nxt.kind == EventKind.BLOCK
            and nxt.pc == ev.target
            and nxt.nbytes <= 12
        ):
            # ARM-style stub: an address-computation prefix before
            # the indirect branch (paper Figure 2b).
            nxt2 = cursor.next()
            if (
                nxt2 is not None
                and nxt2.kind == EventKind.JMP_INDIRECT
                and nxt2.pc == nxt.pc + nxt.nbytes
            ):
                self._trampoline_pair(ev, nxt2, stub=nxt)
            else:
                self._call_direct(ev)
                if nxt2 is not None:
                    cursor.push(nxt2)
                cursor.push(nxt)
        else:
            self._call_direct(ev)
            if nxt is not None:
                cursor.push(nxt)

    def _handle_load(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._fetch(ev)
        self._data_access(ev.mem_addr, is_store=False)

    def _handle_store(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._fetch(ev)
        self._data_access(ev.mem_addr, is_store=True)
        if self.hooks is not None:
            self.hooks.on_store(ev.mem_addr)
        if self.mechanism is not None:
            self.mechanism.snoop_store(ev.mem_addr)
            if ev.tag == "got-store" and not self.mechanism.config.use_bloom:
                # Section 3.4: without the Bloom filter, software
                # (the dynamic linker) explicitly invalidates the
                # ABTB whenever it rewrites a GOT slot.
                self.mechanism.invalidate()

    def _handle_cond_branch(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._cond_branch(ev)

    def _handle_ret(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._ret(ev)

    def _handle_call_indirect(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._call_indirect(ev)

    def _handle_jmp_indirect(self, ev: TraceEvent, cursor: EventCursor) -> None:
        # An indirect jump outside a trampoline pair (e.g. the
        # resolver's final jump to the function).
        self._jmp_indirect(ev)

    def _handle_jmp_direct(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._jmp_direct(ev)

    def _handle_coherence_inval(self, ev: TraceEvent, cursor: EventCursor) -> None:
        # A remote core invalidated this line; no local execution,
        # but the mechanism snoops it like a store (Section 3.2).
        if self.mechanism is not None:
            self.mechanism.coherence_invalidate(ev.mem_addr)

    def _handle_context_switch(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self._context_switch()

    def _handle_mark(self, ev: TraceEvent, cursor: EventCursor) -> None:
        self.marks.append(Mark(ev.tag, self.counters.instructions, self.cycles))

    # -------------------------------------------------------- branch kinds

    def _call_direct(self, ev: TraceEvent) -> None:
        """A direct call that is not a trampoline pair head."""
        self._fetch(ev)
        self.counters.branches += 1
        self.ras.push(ev.pc + ev.nbytes)
        pred = self._btb_lookup(ev.pc)
        if pred is None:
            # Direct target: decode redirects the front end — a bubble,
            # not an architectural misprediction.
            self.cycles += self.config.direct_btb_bubble
            self.btb.update(ev.pc, ev.target)
        elif pred != ev.target:
            # Only possible if the entry was promoted and then the pair
            # vanished (e.g. a patched binary); treat as a full flush.
            self._mispredict()
            self.btb.update(ev.pc, ev.target)

    def _jmp_direct(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        self.counters.branches += 1
        pred = self._btb_lookup(ev.pc)
        if pred is None:
            self.cycles += self.config.direct_btb_bubble
            self.btb.update(ev.pc, ev.target)

    def _call_indirect(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        if ev.mem_addr:
            self._data_access(ev.mem_addr, is_store=False)
        self.counters.branches += 1
        self.ras.push(ev.pc + ev.nbytes)
        pred = self._btb_lookup(ev.pc)
        if pred != ev.target:
            self._mispredict()
        self.btb.update(ev.pc, ev.target)

    def _jmp_indirect(self, ev: TraceEvent) -> None:
        """Indirect jump executed outside the trampoline-pair fast path."""
        self._fetch(ev)
        if ev.mem_addr:
            self._data_access(ev.mem_addr, is_store=False)
            self.counters.got_loads += 1
        self.counters.branches += 1
        tail_call = ev.tag == "plt"
        if tail_call:
            # A trampoline reached by a tail call (jmp, not call): it
            # executes but the mechanism's call+branch pattern never
            # learns it (Section 2.3's "unconventional tricks").
            self.counters.trampolines_executed += 1
            self.counters.trampoline_instructions += 1
        pred = self._btb_lookup(ev.pc)
        mispredicted = pred != ev.target
        if mispredicted:
            self._mispredict()
        self.btb.update(ev.pc, ev.target)
        if tail_call and self.hooks is not None:
            # No call site to charge: the stub's own PC is the best key.
            self.hooks.on_trampoline(
                ev.pc, ev.pc, ev.target, False, 1, bool(ev.mem_addr), False, mispredicted
            )

    def _cond_branch(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        self.counters.branches += 1
        if self.gshare.record(ev.pc, ev.taken):
            self._mispredict()
        if ev.taken:
            pred = self._btb_lookup(ev.pc)
            if pred is None:
                self.cycles += self.config.direct_btb_bubble
            self.btb.update(ev.pc, ev.target)

    def _ret(self, ev: TraceEvent) -> None:
        self._fetch(ev)
        self.counters.branches += 1
        if self.ras.pop_and_check(ev.target):
            self._mispredict()

    # ----------------------------------------------------- trampoline pair

    def _trampoline_pair(
        self, call: TraceEvent, jmp: TraceEvent, stub: TraceEvent | None = None
    ) -> None:
        """A library call: ``call plt_stub`` + stub body ending in ``jmp *GOT``.

        ``stub`` carries the ARM-style address-computation prefix (None on
        x86-64).  With the mechanism enabled and the call's BTB entry
        promoted, the whole stub is skipped: its events are consumed
        without charging any structure — the instructions are never
        fetched or executed (3 instructions saved per call on ARM, 1 on
        x86-64).
        """
        c = self.counters
        mech = self.mechanism
        mp_before = c.branch_mispredictions
        abtb_hit = False

        self._fetch(call)
        c.branches += 1
        self.ras.push(call.pc + call.nbytes)
        pred = self._btb_lookup(call.pc)
        real = call.target  # the trampoline (PLT stub) address

        if mech is not None:
            mapped = mech.mapped_target(real)
            if mapped is not None:
                c.abtb_hits += 1
                abtb_hit = True
            else:
                c.abtb_misses += 1

            if mapped is not None and pred == mapped:
                # Promoted prediction validated by the ABTB: the trampoline
                # was never fetched.  (With the Bloom filter active the
                # mapping can never be stale; without it, a stale mapping is
                # a §3.4 contract violation that we count.)
                if mapped != jmp.target:
                    mech.note_unsafe_skip()
                c.trampolines_skipped += 1
                if self.hooks is not None:
                    self.hooks.on_skip(call, jmp, mapped)
                    self.hooks.on_trampoline(
                        call.pc, jmp.pc, mapped, True, 0, False, True, False
                    )
                return

            # The modified update logic always installs the ABTB-mapped
            # target when one exists (promotion), else the real target.
            update_target = mapped if mapped is not None else real
            if pred is not None and pred != real and pred != (mapped or -1):
                # Wrong-path fetch (e.g. promoted entry surviving an ABTB
                # flush): full pipeline flush, refetch of the trampoline.
                self._mispredict()
                self.btb.update(call.pc, update_target)
            elif pred is None:
                self.cycles += self.config.direct_btb_bubble
                self.btb.update(call.pc, update_target)
                if mapped is not None:
                    mech.note_promotion()
            elif mapped is not None and pred == real:
                # Correct trampoline-path prediction, but the modified
                # update logic promotes the entry to the function address.
                self.btb.update(call.pc, mapped)
                mech.note_promotion()
        else:
            if pred is None:
                self.cycles += self.config.direct_btb_bubble
                self.btb.update(call.pc, real)
            elif pred != real:
                self._mispredict()
                self.btb.update(call.pc, real)

        # --- the trampoline executes ---
        c.trampolines_executed += 1
        c.trampoline_instructions += 1 + (stub.n_instr if stub is not None else 0)
        if stub is not None:
            self._fetch(stub)
        self._fetch(jmp)
        if jmp.mem_addr:
            self._data_access(jmp.mem_addr, is_store=False)
            c.got_loads += 1
        c.branches += 1
        tpred = self._btb_lookup(jmp.pc)
        if tpred != jmp.target:
            self._mispredict()
        self.btb.update(jmp.pc, jmp.target)

        # --- retire-time learning ---
        # The ABTB is indexed by the call's real target (the stub address):
        # on x86-64 that equals the indirect branch's PC, on ARM the branch
        # sits after the stub's address-computation prefix.
        if mech is not None and jmp.mem_addr:
            mech.learn(call.pc, real, jmp.target, jmp.mem_addr)
            c.abtb_inserts += 1
            # Promote the call's BTB entry as the pair retires: the next
            # execution can already skip.  (On a first call this installs
            # the stub's lazy-resolution target, which the resolver's GOT
            # store immediately invalidates via the Bloom filter — one
            # extra startup misprediction, never in steady state.)
            self.btb.update(call.pc, jmp.target)
            mech.note_promotion()
        if self.hooks is not None:
            self.hooks.on_trampoline(
                call.pc,
                jmp.pc,
                jmp.target,
                False,
                1 + (stub.n_instr if stub is not None else 0),
                bool(jmp.mem_addr),
                abtb_hit,
                c.branch_mispredictions > mp_before,
            )

    # ------------------------------------------------------ context switch

    def _context_switch(self) -> None:
        self.counters.context_switches += 1
        self.itlb.flush()
        self.dtlb.flush()
        self.btb.flush()  # another process's branches evict our entries
        self.ras.clear()
        self.gshare.reset_history()
        if self.mechanism is not None:
            flushes_before = self.mechanism.abtb.flushes
            self.mechanism.on_context_switch()
            self.counters.abtb_flushes += self.mechanism.abtb.flushes - flushes_before

    # --------------------------------------------------------- SimComponent
    #
    # The CPU is itself a component: its snapshot is the composition of
    # its parts plus the cycle clock and the mark stream.

    def snapshot(self) -> dict:
        """Complete machine state as a JSON-safe dict.

        Mark tags that are tuples are serialised as lists and converted
        back to tuples by :meth:`restore` — the only tag shapes the
        workloads emit are flat tuples, strings and None.
        """
        self.counters.cycles = self.cycles
        state: dict = {
            "version": CPU_SNAPSHOT_VERSION,
            "components": {
                name: component.snapshot()
                for name, component in self.components.items()
            },
            "cycles": self.cycles,
            "marks": [
                [_encode_tag(m.tag), m.instructions, m.cycles] for m in self.marks
            ],
            "mechanism": None,
        }
        if self.mechanism is not None:
            state["mechanism"] = self.mechanism.snapshot()
        return state

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on a compatibly configured CPU."""
        version = state.get("version")
        if version != CPU_SNAPSHOT_VERSION:
            raise ConfigError(
                f"CPU snapshot version {version!r} unsupported "
                f"(expected {CPU_SNAPSHOT_VERSION})"
            )
        comps = state["components"]
        missing = set(self.components) - set(comps)
        extra = set(comps) - set(self.components)
        if missing or extra:
            raise ConfigError(
                f"snapshot component mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        mech_state = state.get("mechanism")
        if mech_state is not None and self.mechanism is None:
            raise ConfigError("snapshot carries mechanism state but CPU has none")
        if mech_state is None and self.mechanism is not None:
            raise ConfigError("snapshot has no mechanism state but CPU has one")
        for name, component in self.components.items():
            component.restore(comps[name])
        if self.mechanism is not None:
            self.mechanism.restore(mech_state)
        self.cycles = float(state["cycles"])
        self.marks = [
            Mark(_decode_tag(tag), int(instructions), float(cycles))
            for tag, instructions, cycles in state["marks"]
        ]

    def reset(self) -> None:
        """Cold machine: every component reset, clock zeroed, marks gone."""
        for component in self.components.values():
            component.reset()
        if self.mechanism is not None:
            self.mechanism.reset()
        self.cycles = 0.0
        self.marks = []

    def describe(self) -> dict:
        """Static description: config plus every component's geometry."""
        return {
            "kind": "cpu",
            "config": self.config.as_dict(),
            "components": {
                name: component.describe()
                for name, component in self.components.items()
            },
            "mechanism": self.mechanism.describe() if self.mechanism else None,
        }

    # ----------------------------------------------------------- reporting

    def finalize(self) -> PerfCounters:
        """Sync the cycle accumulator into the counters and return them."""
        self.counters.cycles = self.cycles
        if self.mechanism is not None:
            self.counters.abtb_flushes = self.mechanism.abtb.flushes
            self.counters.bloom_store_hits = self.mechanism.stats.store_flushes
        return self.counters


def _encode_tag(tag: object) -> object:
    """JSON-safe mark tag (tuples become tagged lists)."""
    if isinstance(tag, tuple):
        return list(tag)
    return tag


def _decode_tag(tag: object) -> object:
    """Inverse of :func:`_encode_tag` (lists come back as tuples)."""
    if isinstance(tag, list):
        return tuple(tag)
    return tag
