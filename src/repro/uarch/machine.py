"""Machine-state checkpointing built on the SimComponent protocol.

A :class:`MachineState` is a versioned, JSON-safe capture of one simulated
core: the CPU/mechanism *configuration* (so a fresh machine can be rebuilt
from the file alone), the composite component snapshot, and the trace
position the capture was taken at.

The intended use is warm-up reuse: a run simulates startup + warm-up once,
captures a checkpoint, and later runs with the *identical machine
configuration* restore it instead of re-simulating — the trace generator
is advanced to the same position by draining (see
:meth:`repro.trace.engine.TraceCursor.drain`), which is far cheaper than
simulating, and the measurement window then produces counter-for-counter
identical results.  :class:`CheckpointStore` keys checkpoints by a hash of
everything that determines warm-up state, so mismatched configurations can
never share state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import CheckpointCorruptionError, ConfigError
from repro.resilience.incidents import IncidentKind
from repro.resilience.integrity import read_artifact, write_artifact
from repro.uarch.cpu import CPU, CPUConfig

#: Schema version of serialised machine states.  Version 2: embeds the
#: version-2 CPU snapshot (Bloom filter key set); version-1 checkpoints
#: are rejected on load, which :class:`CheckpointStore` treats as a miss.
MACHINE_STATE_VERSION = 2

#: Integrity-envelope schema name for on-disk machine states.
MACHINE_STATE_SCHEMA = "repro.machine-state"


@dataclass
class MachineState:
    """One core's complete simulation state, rebuildable from JSON.

    Attributes:
        version: schema version (:data:`MACHINE_STATE_VERSION`).
        cpu_config: :meth:`CPUConfig.as_dict` of the captured machine.
        mechanism_config: mechanism config dict, or None for a base CPU.
        cpu: the composite :meth:`CPU.snapshot` payload.
        trace_position: events consumed from the trace when captured.
        meta: free-form caller context (workload name, warm-up size, ...).
    """

    cpu_config: dict
    cpu: dict
    mechanism_config: dict | None = None
    trace_position: int = 0
    meta: dict = field(default_factory=dict)
    version: int = MACHINE_STATE_VERSION

    # ------------------------------------------------------------- capture

    @classmethod
    def capture(
        cls,
        cpu: CPU,
        trace_position: int = 0,
        meta: dict | None = None,
    ) -> "MachineState":
        """Snapshot a live CPU (and its mechanism, if any)."""
        return cls(
            cpu_config=cpu.config.as_dict(),
            mechanism_config=(
                asdict(cpu.mechanism.config) if cpu.mechanism is not None else None
            ),
            cpu=cpu.snapshot(),
            trace_position=trace_position,
            meta=dict(meta or {}),
        )

    # ------------------------------------------------------------- restore

    def restore_into(self, cpu: CPU) -> None:
        """Restore this state into an already-built, matching CPU."""
        if self.version != MACHINE_STATE_VERSION:
            raise ConfigError(
                f"machine state version {self.version!r} unsupported "
                f"(expected {MACHINE_STATE_VERSION})"
            )
        if cpu.config.as_dict() != self.cpu_config:
            raise ConfigError(
                "machine state was captured under a different CPUConfig; "
                "refusing to restore"
            )
        mech_cfg = (
            asdict(cpu.mechanism.config) if cpu.mechanism is not None else None
        )
        if mech_cfg != self.mechanism_config:
            raise ConfigError(
                "machine state was captured under a different mechanism "
                "configuration; refusing to restore"
            )
        cpu.restore(self.cpu)

    def build_cpu(self, hooks=None, registry=None) -> CPU:
        """Rebuild a fresh CPU from the stored configs and restore into it."""
        config = CPUConfig.from_dict(self.cpu_config)
        mechanism = None
        if self.mechanism_config is not None:
            mechanism = TrampolineSkipMechanism(MechanismConfig(**self.mechanism_config))
        cpu = CPU(config, mechanism=mechanism, hooks=hooks, registry=registry)
        self.restore_into(cpu)
        return cpu

    # --------------------------------------------------------- persistence

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, so equal states serialise equally)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_payload(cls, data: object) -> "MachineState":
        """Build a state from an already-parsed payload dict."""
        if not isinstance(data, dict):
            raise ConfigError(f"machine state must be a JSON object, got {type(data).__name__}")
        known = {"version", "cpu_config", "mechanism_config", "cpu", "trace_position", "meta"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown machine-state field(s): {sorted(unknown)}")
        state = cls(**data)
        if state.version != MACHINE_STATE_VERSION:
            raise ConfigError(
                f"machine state version {state.version!r} unsupported "
                f"(expected {MACHINE_STATE_VERSION})"
            )
        return state

    @classmethod
    def from_json(cls, text: str) -> "MachineState":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"machine state is not valid JSON: {exc}") from exc
        return cls.from_payload(data)

    def save(self, path: str | Path) -> Path:
        """Atomically write the state inside an integrity envelope.

        The round-trip is validated first; the payload checksum and schema
        version in the envelope let :meth:`load` distinguish truncation and
        bit rot from honest absence.
        """
        self.validate_roundtrip()
        return write_artifact(path, asdict(self), MACHINE_STATE_SCHEMA, MACHINE_STATE_VERSION)

    @classmethod
    def load(cls, path: str | Path) -> "MachineState":
        """Load an integrity-checked machine state.

        Raises :class:`~repro.errors.CheckpointCorruptionError` when the
        envelope is damaged and :class:`ConfigError` when the payload
        inside a *valid* envelope is malformed.
        """
        payload = read_artifact(path, MACHINE_STATE_SCHEMA, MACHINE_STATE_VERSION)
        return cls.from_payload(payload)

    # ---------------------------------------------------------- validation

    def validate_roundtrip(self) -> None:
        """Prove the state survives JSON and restores bit-for-bit.

        Serialises to JSON, rebuilds a fresh machine from the parsed copy,
        and compares its re-taken snapshot against the original payload.
        Raises :class:`ConfigError` on any divergence — a checkpoint that
        fails this must never be written to disk.
        """
        clone = MachineState.from_json(self.to_json())
        cpu = clone.build_cpu()
        retaken = cpu.snapshot()
        original = json.loads(json.dumps(self.cpu))  # normalise tuples → lists
        if retaken != original:
            diverged = [
                name
                for name in original.get("components", {})
                if retaken.get("components", {}).get(name)
                != original["components"].get(name)
            ]
            raise ConfigError(
                f"machine state failed round-trip validation "
                f"(diverging components: {diverged or 'top-level fields'})"
            )


def machine_key(**parts) -> str:
    """Stable identity hash over everything that determines machine state.

    Callers pass the full recipe — workload config, link mode, CPU config,
    mechanism config, warm-up sizes — as JSON-safe values; any difference
    yields a different key, so checkpoints can never be shared across
    configurations that would diverge.
    """
    canonical = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


class CheckpointStore:
    """A directory of machine-state checkpoints keyed by config hash.

    Writes are atomic, so concurrent campaign workers that race to produce
    the same checkpoint simply last-write-wins with identical content.

    A corrupted or truncated checkpoint is *detected* (integrity envelope:
    schema version + content checksum) and treated as a miss — the caller
    re-simulates warm-up and overwrites it — never trusted.  When an
    :class:`~repro.resilience.incidents.IncidentRecorder` is attached, each
    such detection is logged as a ``checkpoint_corrupt`` incident.
    """

    def __init__(self, root: str | Path, recorder=None) -> None:
        self.root = Path(root)
        self.recorder = recorder
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.machine.json"

    def load(self, key: str) -> MachineState | None:
        """The stored state for ``key``, or None (corrupt files count as misses).

        Read-and-catch, not exists()-then-read: a concurrent cleaner (or a
        racing writer's rename) between probe and read would otherwise turn
        an honest miss into a spurious corruption incident.
        """
        path = self.path(key)
        try:
            state = MachineState.load(path)
        except (OSError, ValueError, ConfigError, CheckpointCorruptionError) as exc:
            self.misses += 1
            reason = getattr(exc, "reason", type(exc).__name__)
            if reason == "missing":
                return None  # honest cache miss, not corruption
            if self.recorder is not None:
                self.recorder.record(
                    IncidentKind.CHECKPOINT_CORRUPT,
                    f"machine checkpoint {path.name} failed integrity "
                    f"validation ({reason}); will re-simulate",
                    key=key,
                    path=str(path),
                    reason=reason,
                )
            return None
        self.hits += 1
        return state

    def save(self, key: str, state: MachineState) -> Path:
        self.writes += 1
        return state.save(self.path(key))

    def keys(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(p.name[: -len(".machine.json")] for p in self.root.glob("*.machine.json"))
