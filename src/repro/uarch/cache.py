"""Set-associative cache model with LRU replacement.

Only hit/miss behaviour is modelled (no data): the paper's results are
counts of misses per kilo-instruction, which depend on tag state alone.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.uarch.component import check_geometry, decode_table, encode_table


def _in_lru_order(table: dict[int, int]) -> dict[int, int]:
    """Rebuild a tag→stamp table in LRU order (oldest stamp first).

    The live tables rely on dict insertion order for O(1) eviction;
    snapshots only guarantee the stamps, so restore re-sorts.
    """
    return dict(sorted(table.items(), key=lambda kv: kv[1]))


class SetAssociativeCache:
    """A set-associative, LRU, allocate-on-miss cache.

    Used for both L1I and L1D.  Addresses are byte addresses; the cache
    indexes by line.
    """

    def __init__(self, name: str, size_bytes: int, line_bytes: int, ways: int) -> None:
        if size_bytes % (line_bytes * ways) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by line*ways {line_bytes * ways}"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError(f"{name}: set count {self.n_sets} must be a power of two")
        self._set_mask = self.n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        if (1 << self._line_shift) != line_bytes:
            raise ConfigError(f"{name}: line size {line_bytes} must be a power of two")
        # Per set: dict tag -> last-use stamp, kept in LRU order (least
        # recently used first) so eviction is O(1) instead of a min()
        # scan.  Hits delete and re-insert their key to move it to the
        # end; the stamp values are what snapshots persist, so restore
        # rebuilds the ordering by sorting on them.
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._stamp = 0
        self.accesses = 0
        self.misses = 0

    def access_line(self, line: int) -> bool:
        """Access one cache line by line number; returns True on hit."""
        self.accesses += 1
        self._stamp += 1
        index = line & self._set_mask
        tag = line >> self._set_mask.bit_length() if self._set_mask else line
        entries = self._sets[index]
        if tag in entries:
            del entries[tag]  # move to MRU position (dict insertion order)
            entries[tag] = self._stamp
            return True
        self.misses += 1
        if len(entries) >= self.ways:
            del entries[next(iter(entries))]  # first key is LRU
        entries[tag] = self._stamp
        return False

    def access(self, addr: int) -> bool:
        """Access the line containing byte address ``addr``."""
        return self.access_line(addr >> self._line_shift)

    def access_range(self, addr: int, nbytes: int) -> int:
        """Access every line covered by ``[addr, addr+nbytes)``; returns misses."""
        if nbytes <= 0:
            return 0
        first = addr >> self._line_shift
        last = (addr + nbytes - 1) >> self._line_shift
        before = self.misses
        for line in range(first, last + 1):
            self.access_line(line)
        return self.misses - before

    def line_of(self, addr: int) -> int:
        """Line number containing ``addr``."""
        return addr >> self._line_shift

    def contains(self, addr: int) -> bool:
        """Non-mutating residency probe (no stats, no LRU update)."""
        line = self.line_of(addr)
        index = line & self._set_mask
        tag = line >> self._set_mask.bit_length() if self._set_mask else line
        return tag in self._sets[index]

    def flush(self) -> None:
        """Invalidate all lines (stats are preserved)."""
        for entries in self._sets:
            entries.clear()

    @property
    def line_shift(self) -> int:
        """``log2(line_bytes)`` — byte address → line number shift."""
        return self._line_shift

    def hot_state(self) -> tuple:
        """Lookup state for the batched backend's inline hot loop.

        Returns ``(sets, set_mask, tag_shift, ways)``; ``sets`` is the
        live per-set table list (mutated in place by the caller), and
        ``tag_shift`` is ``set_mask.bit_length()`` — for a single-set
        structure the mask is 0, the shift is 0, and ``line >> 0`` equals
        the whole line, matching :meth:`access_line`'s tag rule.
        """
        return (self._sets, self._set_mask, self._set_mask.bit_length(), self.ways)

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Complete tag/LRU state plus stats, JSON-safe."""
        return {
            "name": self.name,
            "n_sets": self.n_sets,
            "ways": self.ways,
            "line_bytes": self.line_bytes,
            "sets": [encode_table(entries) for entries in self._sets],
            "stamp": self._stamp,
            "accesses": self.accesses,
            "misses": self.misses,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically shaped cache."""
        check_geometry(
            self.name,
            state,
            n_sets=self.n_sets,
            ways=self.ways,
            line_bytes=self.line_bytes,
        )
        self._sets = [_in_lru_order(decode_table(rows)) for rows in state["sets"]]
        self._stamp = int(state["stamp"])
        self.accesses = int(state["accesses"])
        self.misses = int(state["misses"])

    def reset(self) -> None:
        """Cold cache: empty sets, zeroed stats."""
        self.flush()
        self._stamp = 0
        self.accesses = 0
        self.misses = 0

    def describe(self) -> dict:
        """Static geometry."""
        return {
            "kind": "set_associative_cache",
            "name": self.name,
            "size_bytes": self.n_sets * self.ways * self.line_bytes,
            "line_bytes": self.line_bytes,
            "ways": self.ways,
            "n_sets": self.n_sets,
        }

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0
