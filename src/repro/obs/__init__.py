"""repro.obs — the cross-cutting observability layer.

Three pillars, all **off by default** with a null-sink fast path (the
disabled configuration constructs nothing and wraps nothing):

* :mod:`repro.obs.tracer` — structured tracing (spans + instant events)
  exported as Chrome trace-event JSON, loadable in Perfetto;
* :mod:`repro.obs.metrics` — time-series metrics: a registry of
  counters/gauges/histograms plus ring-buffered series fed by a
  :class:`~repro.obs.metrics.PerfCounterSampler` that snapshots
  :class:`~repro.uarch.counters.PerfCounters` deltas every N
  instructions; JSON-lines and Prometheus-text exporters;
* :mod:`repro.obs.profiler` — per-call-site / per-symbol attribution of
  trampoline cost, rendered as top-N "hot trampoline" tables.

:class:`Observability` is the session object the CLI builds from
``--trace-out`` / ``--metrics-out`` / ``--sample-every`` flags and the
``profile`` subcommand; library users can construct one directly and
pass it to :func:`repro.quick_comparison`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.isa.events import TraceEvent
from repro.obs.dashboard import (
    load_snapshot_from_dir,
    render_dashboard,
    snapshot_from_manager,
    write_dashboard,
)
from repro.obs.events import Event, EventBus, downsample, load_event_log
from repro.obs.metrics import (
    DEFAULT_SAMPLED_FIELDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PerfCounterSampler,
    TimeSeries,
    sampled,
    warmup_shape,
)
from repro.obs.profiler import SiteStats, TrampolineProfiler
from repro.obs.tracer import Tracer, validate_chrome_trace
from repro.uarch.cpu import CPU, ChainedHooks, CPUHooks


class Observability:
    """One observability session: tracer + metrics + profiler, as enabled.

    Args:
        trace_out: path for the Chrome trace JSON (None disables tracing).
        metrics_out: path for the metrics export — ``.prom`` selects
            Prometheus text format, anything else JSON-lines.
        sample_every: instruction interval for counter sampling
            (0 disables; requires nothing else to be enabled).
        profile: collect per-call-site trampoline attribution.
        sampled_fields: counter fields the sampler tracks.
    """

    def __init__(
        self,
        trace_out: str | None = None,
        metrics_out: str | None = None,
        sample_every: int = 0,
        profile: bool = False,
        sampled_fields=DEFAULT_SAMPLED_FIELDS,
    ) -> None:
        if sample_every < 0:
            raise ValueError(f"sample_every must be >= 0, got {sample_every}")
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.sample_every = sample_every
        self.sampled_fields = tuple(sampled_fields)
        self.tracer: Tracer | None = Tracer() if trace_out else None
        want_metrics = bool(metrics_out) or sample_every > 0
        self.metrics: MetricsRegistry | None = MetricsRegistry() if want_metrics else None
        self.profiler: TrampolineProfiler | None = TrampolineProfiler() if profile else None
        self.samplers: list[PerfCounterSampler] = []
        self._tids: dict[str, int] = {}

    @classmethod
    def from_flags(cls, args) -> "Observability | None":
        """Build a session from parsed CLI args; None when all-off."""
        trace_out = getattr(args, "trace_out", None)
        metrics_out = getattr(args, "metrics_out", None)
        sample_every = getattr(args, "sample_every", 0) or 0
        profile = bool(getattr(args, "profile", False))
        if not (trace_out or metrics_out or sample_every or profile):
            return None
        return cls(trace_out, metrics_out, sample_every, profile)

    @property
    def enabled(self) -> bool:
        return bool(self.tracer or self.metrics or self.profiler)

    # ------------------------------------------------------------- wiring

    def tid_for(self, label: str) -> int:
        """A stable per-label track id (registered as a Perfetto row name)."""
        tid = self._tids.get(label)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[label] = tid
            if self.tracer is not None:
                self.tracer.thread_name(tid, label)
        return tid

    def attach_workload(self, workload) -> None:
        """Wire the tracer into a built workload's linker and engine, and
        teach the profiler this workload's call-site names."""
        if self.tracer is not None:
            program = workload.program
            if hasattr(program, "attach_tracer"):
                program.attach_tracer(self.tracer)
            workload.engine.tracer = self.tracer
        if self.profiler is not None:
            self.profiler.site_names.update(
                (pc, f"{caller}:{symbol}")
                for pc, caller, symbol in workload.all_call_sites()
            )

    def hooks(self, *extra: CPUHooks | None) -> CPUHooks | None:
        """The hook object to hand a :class:`CPU` (None when nothing to
        observe); chains the profiler with any extra hooks given."""
        candidates = [self.profiler, *extra]
        present = [h for h in candidates if h is not None]
        if not present:
            return None
        if len(present) == 1:
            return present[0]
        return ChainedHooks(*present)

    def instrument(
        self, events: Iterable[TraceEvent], cpu: CPU, label: str
    ) -> Iterable[TraceEvent]:
        """Wrap an event stream with counter sampling for ``label``.

        Returns the stream unchanged when sampling is off — the null-sink
        fast path adds no generator frame.
        """
        if self.sample_every <= 0 or self.metrics is None:
            return events
        sampler = PerfCounterSampler(
            cpu,
            self.metrics,
            self.sample_every,
            fields=self.sampled_fields,
            prefix=f"{label}." if label else "",
            tracer=self.tracer,
            tracer_tid=self.tid_for(label) if label else 1,
        )
        self.samplers.append(sampler)
        return sampled(events, sampler)

    def incident_recorder(self):
        """An :class:`~repro.resilience.incidents.IncidentRecorder` wired
        into this session's metrics and tracer: every recorded incident
        bumps ``incidents.*`` counters and lands as an instant event on
        the trace timeline."""
        from repro.resilience.incidents import IncidentRecorder

        return IncidentRecorder(metrics=self.metrics, tracer=self.tracer)

    def finish_run(self, cpu: CPU, label: str, marks_from: int = 0) -> None:
        """Reconstruct per-request spans from the CPU's mark stream onto
        the simulated-clock track for ``label``."""
        if self.tracer is None:
            return
        emit_request_spans(self.tracer, cpu, self.tid_for(label), marks_from)

    # ------------------------------------------------------------- export

    def export(self) -> list[str]:
        """Write the configured output files; returns the paths written."""
        written: list[str] = []
        if self.tracer is not None and self.trace_out:
            self.tracer.write(self.trace_out)
            written.append(self.trace_out)
        if self.metrics is not None and self.metrics_out:
            self.metrics.write(self.metrics_out)
            written.append(self.metrics_out)
        return written


def emit_request_spans(
    tracer: Tracer, cpu: CPU, tid: int, marks_from: int = 0
) -> int:
    """Convert begin/end marks into simulated-clock spans; returns count.

    Marks carry ``(phase, class_name, request_id)`` tags (see
    :meth:`repro.workloads.base.Workload.trace`); unmatched marks are
    skipped — tracing is diagnostics, not accounting.
    """
    emitted = 0
    open_marks: dict[object, tuple[str, float]] = {}
    for mark in cpu.marks[marks_from:]:
        tag = mark.tag
        if not (isinstance(tag, tuple) and len(tag) == 3):
            continue
        phase, class_name, request_id = tag
        if phase == "begin":
            open_marks[request_id] = (class_name, mark.cycles)
        elif phase == "end":
            opened = open_marks.pop(request_id, None)
            if opened is None:
                continue
            class_name, start = opened
            tracer.complete(
                f"request:{class_name}",
                start,
                max(mark.cycles - start, 0.0),
                category="request",
                tid=tid,
                request_id=request_id,
            )
            emitted += 1
    return emitted


__all__ = [
    "CPU",
    "ChainedHooks",
    "Counter",
    "DEFAULT_SAMPLED_FIELDS",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PerfCounterSampler",
    "SiteStats",
    "TimeSeries",
    "Tracer",
    "TrampolineProfiler",
    "downsample",
    "emit_request_spans",
    "load_event_log",
    "load_snapshot_from_dir",
    "render_dashboard",
    "sampled",
    "snapshot_from_manager",
    "validate_chrome_trace",
    "warmup_shape",
    "write_dashboard",
]
