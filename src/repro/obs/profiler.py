"""The hot-trampoline profiler: per-call-site / per-symbol attribution.

The paper argues in *totals* (Table 4's PKI counters); this profiler
answers the question totals cannot: **which call sites pay for the PLT?**
It rides the CPU's :meth:`~repro.uarch.cpu.CPUHooks.on_trampoline` hook
point and charges every trampoline interaction — stub instructions
fetched, GOT loads, ABTB hits/misses, mispredictions, committed skips —
to the originating call site, then renders top-N "hot trampoline" tables
via :class:`repro.analysis.report.Table`.

Call sites are named through a ``site_pc → "caller:symbol"`` map built
from the workload's linked program (:meth:`TrampolineProfiler.
from_workload`), so the output reads like a real profiler's: symbols,
not addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.uarch.counters import PerfCounters
from repro.uarch.cpu import CPUHooks

#: Label for trampoline work with no known call site (tail-called stubs).
UNATTRIBUTED = "<unattributed>"


@dataclass
class SiteStats:
    """Costs charged to one call site."""

    site_pc: int
    executed: int = 0
    skipped: int = 0
    instructions: int = 0
    got_loads: int = 0
    abtb_hits: int = 0
    abtb_misses: int = 0
    mispredictions: int = 0

    @property
    def calls(self) -> int:
        """Total trampoline interactions (executed + skipped)."""
        return self.executed + self.skipped

    @property
    def skip_rate(self) -> float:
        return self.skipped / self.calls if self.calls else 0.0

    @property
    def abtb_hit_rate(self) -> float:
        lookups = self.abtb_hits + self.abtb_misses
        return self.abtb_hits / lookups if lookups else 0.0


class TrampolineProfiler(CPUHooks):
    """Accumulates per-site trampoline costs from the CPU hook stream.

    Args:
        site_names: optional ``pc → name`` map; unnamed sites render as
            hex addresses and count as unattributed.
    """

    def __init__(self, site_names: dict[int, str] | None = None) -> None:
        self.site_names = site_names or {}
        self.sites: dict[int, SiteStats] = {}

    @classmethod
    def from_workload(cls, workload) -> "TrampolineProfiler":
        """Build a profiler whose site map names every call site of a
        built :class:`~repro.workloads.base.Workload`."""
        names = {
            pc: f"{caller}:{symbol}"
            for pc, caller, symbol in workload.all_call_sites()
        }
        return cls(names)

    # -------------------------------------------------------------- hook

    def on_trampoline(
        self,
        site_pc: int,
        stub_pc: int,
        target: int,
        skipped: bool,
        n_instr: int,
        got_load: bool,
        abtb_hit: bool,
        mispredicted: bool,
    ) -> None:
        stats = self.sites.get(site_pc)
        if stats is None:
            stats = self.sites[site_pc] = SiteStats(site_pc)
        if skipped:
            stats.skipped += 1
        else:
            stats.executed += 1
            stats.instructions += n_instr
        if got_load:
            stats.got_loads += 1
        if abtb_hit:
            stats.abtb_hits += 1
        else:
            stats.abtb_misses += 1
        if mispredicted:
            stats.mispredictions += 1

    # --------------------------------------------------------- reporting

    def name_of(self, site_pc: int) -> str:
        return self.site_names.get(site_pc, f"{site_pc:#x}")

    def total_instructions(self) -> int:
        """Trampoline instructions charged across all sites."""
        return sum(s.instructions for s in self.sites.values())

    def attributed_instructions(self) -> int:
        """Trampoline instructions charged to *named* call sites."""
        return sum(
            s.instructions for pc, s in self.sites.items() if pc in self.site_names
        )

    def attribution_fraction(self, counters: PerfCounters | None = None) -> float:
        """Fraction of trampoline instructions attributed to named sites.

        Measured against the CPU's ``trampoline_instructions`` counter
        when given (ground truth includes anything the hook missed), else
        against the profiler's own total.
        """
        total = (
            counters.trampoline_instructions
            if counters is not None
            else self.total_instructions()
        )
        return self.attributed_instructions() / total if total else 1.0

    def top_sites(self, n: int = 10) -> list[SiteStats]:
        """The N hottest sites by trampoline interactions (then by
        instructions charged, so base-config profiles order identically)."""
        return sorted(
            self.sites.values(),
            key=lambda s: (s.calls, s.instructions, -s.site_pc),
            reverse=True,
        )[:n]

    def table(self, top: int = 10) -> Table:
        """The top-N hot-trampoline table."""
        table = Table(
            f"Hot trampolines (top {top} call sites)",
            [
                "call site",
                "symbol",
                "calls",
                "skips",
                "skip%",
                "tramp instr",
                "GOT loads",
                "ABTB hit%",
                "mispredicts",
            ],
        )
        for stats in self.top_sites(top):
            table.add_row(
                f"{stats.site_pc:#x}",
                self.name_of(stats.site_pc),
                stats.calls,
                stats.skipped,
                f"{stats.skip_rate:.1%}",
                stats.instructions,
                stats.got_loads,
                f"{stats.abtb_hit_rate:.1%}",
                stats.mispredictions,
            )
        return table

    def as_dicts(self, top: int = 10) -> list[dict]:
        """JSON-safe top-N site records (the dashboard's hot-trampoline
        table; same ordering as :meth:`table`)."""
        return [
            {
                "site_pc": f"{stats.site_pc:#x}",
                "symbol": self.name_of(stats.site_pc),
                "calls": stats.calls,
                "skipped": stats.skipped,
                "skip_rate": round(stats.skip_rate, 4),
                "instructions": stats.instructions,
                "got_loads": stats.got_loads,
                "abtb_hit_rate": round(stats.abtb_hit_rate, 4),
                "mispredictions": stats.mispredictions,
            }
            for stats in self.top_sites(top)
        ]

    def write_json(self, path, top: int = 20) -> None:
        """Write the top-N profile as JSON (consumed by ``repro dash``)."""
        import json
        from pathlib import Path

        payload = {
            "sites": self.as_dicts(top),
            "total_instructions": self.total_instructions(),
            "attributed_instructions": self.attributed_instructions(),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def summary_lines(self, counters: PerfCounters | None = None) -> list[str]:
        """Human-readable attribution summary printed under the table."""
        total_sites = len(self.sites)
        named = sum(1 for pc in self.sites if pc in self.site_names)
        frac = self.attribution_fraction(counters)
        lines = [
            f"call sites observed : {total_sites} ({named} named)",
            f"trampoline instr    : {self.total_instructions()} charged, "
            f"{frac:.1%} attributed to named call sites",
        ]
        if counters is not None:
            lines.append(
                f"counter ground truth: {counters.trampoline_instructions} "
                f"trampoline instructions, {counters.trampolines_skipped} skips"
            )
        return lines
