"""Time-series metrics: counters, gauges, histograms, ring-buffered series.

The registry turns the model's end-of-run :class:`~repro.uarch.counters.
PerfCounters` totals into *plottable time series*: a
:class:`PerfCounterSampler` snapshots counter deltas every N instructions
into ring-buffered :class:`TimeSeries`, so ABTB warm-up transients, flush
storms and Bloom-filter saturation become curves instead of single
numbers.

Exporters: JSON-lines (one metric object per line, trivially greppable /
pandas-loadable) and Prometheus text exposition format (for anything that
scrapes ``.prom`` files).

Nothing here touches the CPU's hot loop: sampling piggybacks on the event
stream via :func:`sampled`, a generator wrapper that only exists when the
user asked for sampling.  Disabled observability runs the unwrapped
stream — the fast path is the absence of this module.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import deque
from typing import IO, Iterable, Iterator, Sequence

from repro.isa.events import TraceEvent
from repro.uarch.counters import PerfCounters
from repro.uarch.cpu import CPU

#: Histogram bucket upper bounds used when none are given.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)

#: Counter fields the sampler tracks by default — the structures the
#: paper's Table 4 and Figures 5-8 argue about.
DEFAULT_SAMPLED_FIELDS = (
    "l1i_misses",
    "itlb_misses",
    "branch_mispredictions",
    "trampolines_executed",
    "trampolines_skipped",
    "abtb_hits",
    "abtb_misses",
    "abtb_flushes",
    "got_loads",
)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name}: buckets must be sorted")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    def cumulative_counts(self) -> list[int]:
        """Bucket counts with each bucket including all smaller ones."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


class TimeSeries:
    """A ring-buffered (t, value) series: old points fall off the front."""

    kind = "series"

    def __init__(self, name: str, capacity: int = 4096, help: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"series {name}: capacity must be positive")
        self.name = name
        self.help = help
        self.capacity = capacity
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)
        #: Total points ever appended (drops = appended - len).
        self.appended = 0

    def append(self, t: float, value: float) -> None:
        self._points.append((float(t), float(value)))
        self.appended += 1

    def points(self) -> list[tuple[float, float]]:
        return list(self._points)

    def timestamps(self) -> list[float]:
        return [p[0] for p in self._points]

    def values(self) -> list[float]:
        return [p[1] for p in self._points]

    def __len__(self) -> int:
        return len(self._points)


class MetricsRegistry:
    """Named metrics, get-or-create style.

    ``registry.counter("faults_injected").inc()`` — creating and updating
    are the same call, so instrumentation sites stay one line.
    """

    def __init__(self, series_capacity: int = 4096) -> None:
        self.series_capacity = series_capacity
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind: type, factory) -> object:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"  # type: ignore[attr-defined]
                )
            return existing
        created = factory()
        self._metrics[name] = created
        return created

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help))  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets, help))  # type: ignore[return-value]

    def series(self, name: str, help: str = "", capacity: int | None = None) -> TimeSeries:
        cap = capacity if capacity is not None else self.series_capacity
        return self._get(name, TimeSeries, lambda: TimeSeries(name, cap, help))  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        """Look a metric up by name (KeyError when absent)."""
        return self._metrics[name]

    # ------------------------------------------------------- worker merging

    def state_dict(self) -> dict:
        """JSON-safe dump of every metric, for cross-process aggregation.

        Campaign workers run with their own registry and ship this dict
        back to the parent, which folds it in with :meth:`merge_state`.
        """
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            record: dict[str, object] = {"kind": metric.kind, "help": metric.help}  # type: ignore[attr-defined]
            if isinstance(metric, (Counter, Gauge)):
                record["value"] = metric.value
            elif isinstance(metric, Histogram):
                record["buckets"] = list(metric.buckets)
                record["bucket_counts"] = list(metric.bucket_counts)
                record["count"] = metric.count
                record["sum"] = metric.sum
            elif isinstance(metric, TimeSeries):
                record["capacity"] = metric.capacity
                record["points"] = [[t, v] for t, v in metric.points()]
                record["appended"] = metric.appended
            out[name] = record
        return out

    def merge_state(self, state: dict) -> None:
        """Fold a worker's :meth:`state_dict` into this registry.

        Counters and histograms sum, gauges take the incoming value
        (last-writer-wins), series extend with the worker's points.  Kind
        or bucket mismatches raise ValueError rather than merge nonsense.
        """
        for name in sorted(state):
            record = state[name]
            kind = record["kind"]
            help_text = record.get("help", "")
            if kind == "counter":
                self.counter(name, help_text).value += float(record["value"])
            elif kind == "gauge":
                self.gauge(name, help_text).set(float(record["value"]))
            elif kind == "histogram":
                hist = self.histogram(name, tuple(record["buckets"]), help_text)
                if list(hist.buckets) != list(record["buckets"]):
                    raise ValueError(
                        f"histogram {name!r}: incoming buckets {record['buckets']} "
                        f"do not match existing {list(hist.buckets)}"
                    )
                for i, c in enumerate(record["bucket_counts"]):
                    hist.bucket_counts[i] += int(c)
                hist.count += int(record["count"])
                hist.sum += float(record["sum"])
            elif kind == "series":
                series = self.series(name, help_text, capacity=int(record["capacity"]))
                points = record["points"]
                for t, v in points:
                    series.append(t, v)
                # Preserve the worker's drop count (appends beyond capacity).
                series.appended += int(record["appended"]) - len(points)
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")

    # ----------------------------------------------------------- exporters

    def to_jsonl(self) -> str:
        """One JSON object per metric per line."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            record: dict[str, object] = {"name": name, "kind": metric.kind}  # type: ignore[attr-defined]
            if isinstance(metric, (Counter, Gauge)):
                record["value"] = metric.value
            elif isinstance(metric, Histogram):
                record["count"] = metric.count
                record["sum"] = metric.sum
                record["buckets"] = [
                    {"le": b, "count": c}
                    for b, c in zip(metric.buckets, metric.cumulative_counts())
                ]
            elif isinstance(metric, TimeSeries):
                record["points"] = [[t, v] for t, v in metric.points()]
                record["appended"] = metric.appended
            lines.append(json.dumps(record))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (fully compliant).

        Every family gets a ``# HELP`` (the metric's help text, or a
        generated placeholder — the exposition format expects HELP before
        TYPE for each family) and a ``# TYPE``; histograms emit
        cumulative ``le`` buckets ending in ``+Inf`` plus ``_sum`` and
        ``_count``.  Series export their most recent value as a gauge
        (Prometheus scrapes are point-in-time); the full history lives in
        the JSONL export.
        """
        out: list[str] = []

        def _family(prom: str, help_text: str, kind: str) -> None:
            text = help_text or f"repro metric {prom}"
            out.append(f"# HELP {prom} {_prom_escape_help(text)}")
            out.append(f"# TYPE {prom} {kind}")

        for name in self.names():
            metric = self._metrics[name]
            prom = _prom_name(name)
            if isinstance(metric, (Counter, Gauge)):
                _family(prom, metric.help, metric.kind)
                out.append(f"{prom} {_prom_value(metric.value)}")
            elif isinstance(metric, Histogram):
                _family(prom, metric.help, "histogram")
                for bound, count in zip(metric.buckets, metric.cumulative_counts()):
                    out.append(f'{prom}_bucket{{le="{_prom_value(bound)}"}} {count}')
                out.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
                out.append(f"{prom}_sum {_prom_value(metric.sum)}")
                out.append(f"{prom}_count {metric.count}")
            elif isinstance(metric, TimeSeries):
                _family(prom, metric.help, "gauge")
                last = metric.values()[-1] if len(metric) else 0.0
                out.append(f"{prom} {_prom_value(last)}")
        return "\n".join(out) + ("\n" if out else "")

    def write(self, path: str) -> None:
        """Write the registry to ``path``; ``.prom`` selects Prometheus
        text format, anything else JSON-lines.

        The write is atomic (mkstemp + rename): a scraper reading the
        ``.prom`` file mid-export sees the old complete file or the new
        one, never a torn mix.
        """
        text = self.to_prometheus() if path.endswith(".prom") else self.to_jsonl()
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def write_jsonl(self, fh: IO[str]) -> None:
        fh.write(self.to_jsonl())


def _prom_name(name: str) -> str:
    """Sanitise a metric name for Prometheus (dots/dashes → underscores;
    a leading digit gets an underscore prefix per the name grammar)."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return f"_{safe}" if safe[:1].isdigit() else safe


def _prom_escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline, per the format spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_value(value: float) -> str:
    return repr(float(value))


class PerfCounterSampler:
    """Snapshots :class:`PerfCounters` deltas every N instructions.

    Each sample appends, per tracked field, two points timestamped by the
    cumulative instruction count:

    * ``<prefix><field>_pki`` — cumulative per-kilo-instruction rate (the
      paper's normalisation; smooth, ideal for warm-up curves);
    * ``<prefix><field>_pki_window`` — the rate *within* the sampling
      window (spiky, ideal for spotting flush storms and fault impact).

    Plus ``<prefix>cpi`` (cumulative cycles per instruction).  When a
    tracer is attached, every sample also lands as a Perfetto counter
    track on the simulated clock.
    """

    def __init__(
        self,
        cpu: CPU,
        registry: MetricsRegistry,
        every: int,
        fields: Sequence[str] = DEFAULT_SAMPLED_FIELDS,
        prefix: str = "",
        tracer=None,
        tracer_tid: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError(f"sample interval must be positive, got {every}")
        for field in fields:
            if field not in PerfCounters.field_names():
                raise ValueError(
                    f"unknown counter field {field!r}; valid fields: "
                    f"{', '.join(PerfCounters.field_names())}"
                )
        self.cpu = cpu
        self.registry = registry
        self.every = every
        self.fields = tuple(fields)
        self.prefix = prefix
        self.tracer = tracer
        self.tracer_tid = tracer_tid
        self.samples_taken = 0
        self._last = cpu.counters.copy()
        self._next_at = cpu.counters.instructions + every

    def due(self) -> bool:
        return self.cpu.counters.instructions >= self._next_at

    def maybe_sample(self) -> bool:
        """Take a sample iff the instruction interval has elapsed."""
        if not self.due():
            return False
        self.sample()
        return True

    def sample(self) -> None:
        """Record one snapshot unconditionally (also used at end-of-run)."""
        counters = self.cpu.counters
        counters.cycles = self.cpu.cycles  # keep CPI fresh mid-run
        t = float(counters.instructions)
        window = counters.delta(self._last)
        reg = self.registry
        for field in self.fields:
            cumulative = counters.pki(field)
            reg.series(f"{self.prefix}{field}_pki").append(t, cumulative)
            reg.series(f"{self.prefix}{field}_pki_window").append(t, window.pki(field))
            if self.tracer is not None:
                self.tracer.counter(
                    f"{self.prefix}{field}_pki",
                    cumulative,
                    ts=counters.cycles,
                    tid=self.tracer_tid,
                )
        reg.series(f"{self.prefix}cpi").append(t, counters.cpi)
        if self.tracer is not None:
            self.tracer.counter(
                f"{self.prefix}cpi", counters.cpi, ts=counters.cycles, tid=self.tracer_tid
            )
        self.samples_taken += 1
        self._last = counters.copy()
        self._next_at = counters.instructions + self.every


def sampled(
    events: Iterable[TraceEvent], sampler: PerfCounterSampler
) -> Iterator[TraceEvent]:
    """Wrap an event stream so ``sampler`` fires on instruction intervals.

    The check runs as the CPU pulls each next event — i.e. after it has
    retired the previous one — so samples land within one event of the
    exact interval boundary.  A final sample is taken when the stream
    ends, so short runs always produce at least one point.
    """
    for ev in events:
        if sampler.due():
            sampler.sample()
        yield ev
    sampler.sample()


def warmup_shape(
    values: Sequence[float],
    min_rise: float = 1.5,
    tail_frac: float = 0.25,
    tail_tol: float = 0.15,
    dip_tol: float = 0.10,
) -> bool:
    """Does a series look like a warm-up transient — rising, then stable?

    Checks three properties of e.g. a cumulative ``abtb_hits_pki`` curve:

    * the plateau is at least ``min_rise`` times the first sample
      (a transient actually happened);
    * the final ``tail_frac`` of samples stay within ``tail_tol``
      (relative) of their mean (it plateaued);
    * no sample dips more than ``dip_tol`` below the running maximum
      (monotone rise, modulo sampling noise).
    """
    if len(values) < 4:
        return False
    first, last = values[0], values[-1]
    if last <= 0:
        return False
    if first > 0 and last / first < min_rise:
        return False
    if first <= 0 and last <= 0:
        return False
    tail = values[-max(2, int(len(values) * tail_frac)):]
    mean = sum(tail) / len(tail)
    if mean <= 0 or any(abs(v - mean) > tail_tol * mean for v in tail):
        return False
    running_max = values[0]
    for v in values:
        if v < running_max * (1.0 - dip_tol):
            return False
        running_max = max(running_max, v)
    return True
