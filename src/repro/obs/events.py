"""Correlated structured event bus: the campaign's live narration.

An :class:`Event` is one timestamped, correlated fact about a running
campaign — a shard leased, a worker registered, an incident struck, a
pair of simulations finished.  Every event carries the correlation
triple ``(campaign_id, shard_key, worker_id)`` (any subset may be empty)
so a dashboard or an operator tailing ``/events`` can slice the firehose
by campaign, by shard, or by worker without parsing free-text messages.

The :class:`EventBus` is a bounded ring buffer (old events fall off the
front, like :class:`~repro.obs.metrics.TimeSeries`) with a monotonically
increasing sequence number.  The sequence number is the resume cursor:
``GET /events`` emits it as the SSE ``id:`` field, and a reconnecting
client replays from ``Last-Event-ID`` via :meth:`EventBus.since`.
Consumers that want to block until news arrives use
:meth:`EventBus.wait_for` (condition-variable backed, no polling).

Mirroring follows the :class:`~repro.resilience.incidents.
IncidentRecorder` pattern: when a metrics registry or tracer is
attached, every emit also bumps ``events.total`` / ``events.<kind>``
counters and lands as a tracer instant — the bus is an *additional*
view over the same happenings, never a replacement.

The bus is deliberately optional everywhere it is threaded: the
disabled-observability fast path constructs no bus and pays nothing
(enforced by ``benchmarks/bench_obs.py``'s <5% overhead gate).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

#: Schema version stamped on every serialised event.
EVENT_SCHEMA_VERSION = 1

#: Allowed severities, mildest first (same vocabulary as incidents).
EVENT_SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Event:
    """One correlated happening on the bus.

    ``seq`` is assigned by the bus at emit time (unique, monotonically
    increasing, never reused); ``timestamp`` is host wall-clock time —
    events are diagnostics, never part of a determinism-checked result.
    """

    seq: int
    kind: str
    message: str
    severity: str = "info"
    campaign_id: str = ""
    shard_key: str = ""
    worker_id: str = ""
    data: dict = field(default_factory=dict)
    timestamp: float = 0.0

    def as_dict(self) -> dict:
        return {
            "schema_version": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "campaign_id": self.campaign_id,
            "shard_key": self.shard_key,
            "worker_id": self.worker_id,
            "data": self.data,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        problems = _event_problems(data)
        if problems:
            raise ValueError(f"invalid event record: {'; '.join(problems)}")
        return cls(
            seq=int(data["seq"]),
            kind=data["kind"],
            message=data["message"],
            severity=data["severity"],
            campaign_id=str(data.get("campaign_id", "")),
            shard_key=str(data.get("shard_key", "")),
            worker_id=str(data.get("worker_id", "")),
            data=dict(data.get("data", {})),
            timestamp=float(data.get("timestamp", 0.0)),
        )


def _event_problems(data: object) -> list[str]:
    """Schema problems of one deserialised event record."""
    if not isinstance(data, dict):
        return [f"not an object: {type(data).__name__}"]
    problems = []
    if data.get("schema_version") != EVENT_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data.get('schema_version')!r} "
            f"(expected {EVENT_SCHEMA_VERSION})"
        )
    if not isinstance(data.get("seq"), int) or data.get("seq") < 1:
        problems.append(f"seq {data.get('seq')!r} is not a positive integer")
    if not isinstance(data.get("kind"), str) or not data.get("kind"):
        problems.append("kind missing or empty")
    if data.get("severity") not in EVENT_SEVERITIES:
        problems.append(
            f"severity {data.get('severity')!r} not in {EVENT_SEVERITIES}"
        )
    if not isinstance(data.get("message"), str) or not data.get("message"):
        problems.append("message missing or empty")
    if "data" in data and not isinstance(data["data"], dict):
        problems.append("data is not an object")
    return problems


class EventBus:
    """Bounded, thread-safe ring buffer of correlated events.

    Args:
        capacity: ring size; the oldest events fall off when exceeded.
            ``dropped`` counts them, and :meth:`since` reports the gap so
            a resuming SSE client knows its cursor aged out.
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to mirror
            emit counts into (or None).
        tracer: a :class:`~repro.obs.tracer.Tracer` for instant events
            (or None).
        clock: timestamp source (overridable for deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 2048,
        metrics=None,
        tracer=None,
        clock=time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"event bus capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self.tracer = tracer
        self._clock = clock
        self._events: deque[Event] = deque(maxlen=capacity)
        self._cond = threading.Condition()
        self._seq = 0
        #: Events that fell off the ring (emitted - retained).
        self.dropped = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when none yet)."""
        with self._cond:
            return self._seq

    def emit(
        self,
        kind: str,
        message: str,
        severity: str = "info",
        campaign_id: str = "",
        shard_key: str = "",
        worker_id: str = "",
        **data,
    ) -> Event:
        """Append one event; returns it with its assigned ``seq``.

        Like incident recording, emitting never raises into the caller's
        path over bad ``data`` values: non-JSON-safe extras are
        stringified rather than exploding mid-recovery.
        """
        if severity not in EVENT_SEVERITIES:
            severity = "info"
        payload = {k: _json_safe(v) for k, v in data.items() if v is not None}
        with self._cond:
            self._seq += 1
            event = Event(
                seq=self._seq,
                kind=str(kind),
                message=str(message),
                severity=severity,
                campaign_id=str(campaign_id or ""),
                shard_key=str(shard_key or ""),
                worker_id=str(worker_id or ""),
                data=payload,
                timestamp=float(self._clock()),
            )
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            self._cond.notify_all()
        if self.metrics is not None:
            self.metrics.counter("events.total").inc()
            self.metrics.counter(f"events.{event.kind}").inc()
        if self.tracer is not None:
            self.tracer.instant(
                f"event:{event.kind}",
                category="event",
                severity=event.severity,
                message=event.message,
            )
        return event

    def since(self, seq: int = 0, limit: int | None = None) -> list[Event]:
        """Events with ``seq`` strictly greater than the cursor, oldest
        first.  A cursor that aged out of the ring simply yields from the
        oldest retained event — resumption is best-effort, and the
        ``dropped`` counter tells the operator a gap existed."""
        with self._cond:
            out = [e for e in self._events if e.seq > seq]
        if limit is not None:
            out = out[:limit]
        return out

    def wait_for(self, seq: int, timeout: float | None = None) -> bool:
        """Block until an event newer than ``seq`` exists (or timeout).

        Returns True when news arrived, False on timeout — the SSE
        streamer uses the False branch to send keep-alive comments.
        """
        with self._cond:
            return self._cond.wait_for(lambda: self._seq > seq, timeout=timeout)

    def snapshot(self) -> list[Event]:
        """Every retained event, oldest first."""
        with self._cond:
            return list(self._events)

    def as_dicts(self) -> list[dict]:
        return [e.as_dict() for e in self.snapshot()]

    # ------------------------------------------------------------- export

    def write_jsonl(self, path: str | Path) -> Path:
        """Write retained events as JSON lines (one event per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = "".join(
            json.dumps(e.as_dict(), sort_keys=True) + "\n" for e in self.snapshot()
        )
        path.write_text(text)
        return path


def _json_safe(value):
    """Coerce one event-data value to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def load_event_log(path: str | Path) -> list[Event]:
    """Parse a JSONL event log, raising ``ValueError`` on any bad line."""
    events = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        try:
            events.append(Event.from_dict(data))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return events


def downsample(
    points: list[tuple[float, float]], max_points: int
) -> list[tuple[float, float]]:
    """Bucket-mean downsample of a (t, value) series to ``max_points``.

    Keeps the exact first and last points (so warm-up start and the
    current value are never averaged away) and replaces each interior
    bucket with its mean point.  Series at or under the budget pass
    through untouched.
    """
    if max_points < 2:
        raise ValueError(f"max_points must be >= 2, got {max_points}")
    n = len(points)
    if n <= max_points:
        return list(points)
    interior = points[1:-1]
    buckets = max_points - 2
    out = [points[0]]
    if buckets > 0:
        step = len(interior) / buckets
        for b in range(buckets):
            chunk = interior[int(b * step): int((b + 1) * step)]
            if not chunk:
                continue
            t = sum(p[0] for p in chunk) / len(chunk)
            v = sum(p[1] for p in chunk) / len(chunk)
            out.append((t, v))
    out.append(points[-1])
    return out
