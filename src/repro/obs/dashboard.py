"""The zero-dependency campaign dashboard.

One self-contained HTML page — inline CSS, inline JS, inline SVG charts,
no npm, no CDN — rendered from a JSON *snapshot* whose shape is shared
by both serving modes:

* **live** — ``GET /dash`` on the manager embeds a snapshot built by
  :func:`snapshot_from_manager` and the page then keeps itself fresh by
  listening to ``GET /events`` (SSE) and re-polling ``GET /dash/data``;
* **offline** — ``python -m repro dash --from <dir>`` builds the same
  snapshot from exported JSONL artifacts (metrics, incidents, events,
  optional profile/trace) via :func:`load_snapshot_from_dir`, so a
  post-mortem needs no running manager.

The page shows campaign progress bars, per-shard/per-worker lease health
(with live heartbeat progress), queue-depth and warm-up curves, the
hot-trampoline table from :class:`~repro.obs.profiler.TrampolineProfiler`
exports, and a correlated incident/event feed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.events import downsample
from repro.obs.metrics import Counter, Gauge, TimeSeries

#: Schema version stamped on every snapshot.
SNAPSHOT_SCHEMA_VERSION = 1

#: Placeholder in the template the snapshot JSON replaces.
_PLACEHOLDER = "__SNAPSHOT__"

#: Point budget per series in a snapshot (downsampled, first/last kept).
SNAPSHOT_MAX_POINTS = 150

#: Events retained in a snapshot's feed seed.
SNAPSHOT_MAX_EVENTS = 100


def snapshot_from_manager(manager) -> dict:
    """The live snapshot: manager telemetry + downsampled series."""
    telemetry = manager.telemetry()
    series: dict[str, dict] = {}
    counters: dict[str, float] = {}
    for name in manager.metrics.names():
        metric = manager.metrics.get(name)
        if isinstance(metric, TimeSeries):
            points = downsample(metric.points(), SNAPSHOT_MAX_POINTS)
            series[name] = {
                "points": [[t, v] for t, v in points],
                "appended": metric.appended,
            }
        elif isinstance(metric, (Counter, Gauge)):
            counters[name] = metric.value
    events = [e.as_dict() for e in manager.bus.snapshot()[-SNAPSHOT_MAX_EVENTS:]]
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "mode": "live",
        "generated_at": time.time(),
        "source": str(manager.data_dir),
        **telemetry,
        "series": series,
        "counters": counters,
        "events": events,
        "profile": None,
    }


def load_snapshot_from_dir(directory: str | Path) -> dict:
    """The offline snapshot, from exported artifacts in ``directory``.

    Recognised files (all optional — the dashboard renders empty states
    for whatever is missing): ``metrics.jsonl`` (the registry's JSONL
    export), ``incidents.jsonl``, ``events.jsonl`` (the bus export),
    ``profile.json`` (:meth:`TrampolineProfiler.write_json`), and
    ``trace.json`` (Chrome trace, counted only).  Unparseable lines are
    skipped — a dashboard must render *something* from a damaged export.
    """
    d = Path(directory)
    if not d.is_dir():
        raise FileNotFoundError(f"no such artifact directory: {d}")
    series: dict[str, dict] = {}
    counters: dict[str, float] = {}
    for record in _jsonl_records(d / "metrics.jsonl"):
        kind = record.get("kind")
        name = record.get("name")
        if not isinstance(name, str):
            continue
        if kind == "series" and isinstance(record.get("points"), list):
            points = [
                (float(p[0]), float(p[1]))
                for p in record["points"]
                if isinstance(p, (list, tuple)) and len(p) == 2
            ]
            series[name] = {
                "points": [
                    [t, v] for t, v in downsample(points, SNAPSHOT_MAX_POINTS)
                ] if points else [],
                "appended": int(record.get("appended", len(points))),
            }
        elif kind in ("counter", "gauge") and isinstance(
            record.get("value"), (int, float)
        ):
            counters[name] = float(record["value"])

    incidents = [
        r for r in _jsonl_records(d / "incidents.jsonl") if r.get("kind")
    ]
    incident_counts: dict[str, int] = {}
    for incident in incidents:
        kind = str(incident["kind"])
        incident_counts[kind] = incident_counts.get(kind, 0) + 1

    events = [
        r for r in _jsonl_records(d / "events.jsonl") if r.get("kind")
    ][-SNAPSHOT_MAX_EVENTS:]

    profile = None
    profile_path = d / "profile.json"
    if profile_path.is_file():
        try:
            loaded = json.loads(profile_path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("sites"), list):
                profile = loaded
        except (json.JSONDecodeError, OSError):
            profile = None

    trace_events = 0
    trace_path = d / "trace.json"
    if trace_path.is_file():
        try:
            trace = json.loads(trace_path.read_text())
            events_list = (
                trace.get("traceEvents") if isinstance(trace, dict) else trace
            )
            trace_events = len(events_list) if isinstance(events_list, list) else 0
        except (json.JSONDecodeError, OSError):
            trace_events = 0

    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "mode": "offline",
        "generated_at": time.time(),
        "source": str(d),
        "campaigns": [],
        "leases": [],
        "workers": [],
        "incident_counts": dict(sorted(incident_counts.items())),
        "incidents": incidents[-50:],
        "last_seq": max((int(e.get("seq", 0)) for e in events), default=0),
        "series": series,
        "counters": counters,
        "events": events,
        "profile": profile,
        "trace_events": trace_events,
    }


def render_dashboard(snapshot: dict) -> str:
    """The self-contained dashboard HTML with ``snapshot`` embedded."""
    payload = json.dumps(snapshot, sort_keys=True)
    # "</" must not appear inside an inline <script> block.
    payload = payload.replace("</", "<\\/")
    return _TEMPLATE.replace(_PLACEHOLDER, payload)


def write_dashboard(snapshot: dict, out_path: str | Path) -> Path:
    """Render and write the dashboard; returns the written path."""
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(snapshot))
    return out


def _jsonl_records(path: Path) -> list[dict]:
    """Best-effort JSONL parse: bad lines are skipped, not fatal."""
    if not path.is_file():
        return []
    records: list[dict] = []
    try:
        text = path.read_text()
    except OSError:
        return []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


#: The dashboard's visual system -- palette variables (light/dark),
#: tiles, cards, tables, chart and badge styles -- exported so other
#: self-contained report pages (e.g. the sweep engine's Pareto report,
#: repro.sweep.report) render with the same look without duplicating
#: the stylesheet.
DASHBOARD_CSS = """.viz-root {
  color-scheme: light;
  --page:          #f9f9f7;
  --surface-1:     #fcfcfb;
  --text-primary:  #0b0b0b;
  --text-secondary:#52514e;
  --text-muted:    #898781;
  --gridline:      #e1e0d9;
  --baseline:      #c3c2b7;
  --border:        rgba(11,11,11,0.10);
  --series-1:      #2a78d6;
  --series-2:      #eb6834;
  --series-3:      #1baf7a;
  --track:         #b7d3f6;
  --status-good:     #0ca30c;
  --status-warning:  #fab219;
  --status-serious:  #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:          #0d0d0d;
    --surface-1:     #1a1a19;
    --text-primary:  #ffffff;
    --text-secondary:#c3c2b7;
    --text-muted:    #898781;
    --gridline:      #2c2c2a;
    --baseline:      #383835;
    --border:        rgba(255,255,255,0.10);
    --series-1:      #3987e5;
    --series-2:      #d95926;
    --series-3:      #199e70;
    --track:         #184f95;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:          #0d0d0d;
  --surface-1:     #1a1a19;
  --text-primary:  #ffffff;
  --text-secondary:#c3c2b7;
  --text-muted:    #898781;
  --gridline:      #2c2c2a;
  --baseline:      #383835;
  --border:        rgba(255,255,255,0.10);
  --series-1:      #3987e5;
  --series-2:      #d95926;
  --series-3:      #199e70;
  --track:         #184f95;
}
* { box-sizing: border-box; }
body.viz-root {
  margin: 0;
  background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1200px; margin: 0 auto; padding: 20px 24px 48px; }
header.top {
  display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap;
  padding: 8px 0 16px;
}
header.top h1 { font-size: 20px; font-weight: 600; margin: 0; }
.badge {
  font-size: 11px; font-weight: 600; letter-spacing: 0.04em;
  padding: 2px 8px; border-radius: 999px; border: 1px solid var(--border);
  color: var(--text-secondary); text-transform: uppercase;
}
.badge.live::before {
  content: ""; display: inline-block; width: 7px; height: 7px;
  border-radius: 50%; background: var(--status-good); margin-right: 5px;
}
.meta { color: var(--text-muted); font-size: 12px; }
.tiles {
  display: grid; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
  gap: 12px; margin-bottom: 20px;
}
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 14px;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
section.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px; margin-bottom: 16px;
}
section.card h2 {
  font-size: 13px; font-weight: 600; margin: 0 0 10px;
  color: var(--text-secondary);
}
.grid2 { display: grid; grid-template-columns: 1fr 1fr; gap: 16px; }
@media (max-width: 860px) { .grid2 { grid-template-columns: 1fr; } }
.empty { color: var(--text-muted); font-size: 13px; padding: 14px 0; }
table { width: 100%; border-collapse: collapse; font-size: 13px; }
th {
  text-align: left; font-weight: 500; color: var(--text-muted);
  border-bottom: 1px solid var(--gridline); padding: 4px 8px 6px;
}
td {
  padding: 5px 8px; border-bottom: 1px solid var(--gridline);
  font-variant-numeric: tabular-nums;
}
tr:last-child td { border-bottom: none; }
td.num, th.num { text-align: right; }
.campaign-row { margin-bottom: 12px; }
.campaign-row .line1 {
  display: flex; justify-content: space-between; gap: 8px;
  align-items: baseline; margin-bottom: 4px; font-size: 13px;
}
.campaign-row .cname { font-weight: 600; }
.campaign-row .counts {
  color: var(--text-secondary); font-variant-numeric: tabular-nums;
}
.meter {
  height: 10px; border-radius: 5px; background: var(--track);
  overflow: hidden; position: relative;
}
.meter .fill {
  position: absolute; inset: 0 auto 0 0; border-radius: 5px;
  background: var(--series-1); min-width: 0;
}
.meter .fill.degraded { background: var(--status-serious); }
.chip {
  font-size: 11px; padding: 1px 7px; border-radius: 999px;
  border: 1px solid var(--border); color: var(--text-secondary);
  white-space: nowrap;
}
.chip .ico { margin-right: 3px; }
.legend {
  display: flex; gap: 14px; flex-wrap: wrap; font-size: 12px;
  color: var(--text-secondary); margin-bottom: 6px;
}
.legend .key {
  display: inline-block; width: 14px; height: 3px; border-radius: 2px;
  vertical-align: middle; margin-right: 5px;
}
svg.chart { width: 100%; height: 180px; display: block; }
svg.chart text {
  fill: var(--text-muted); font-size: 11px;
  font-variant-numeric: tabular-nums;
}
.tooltip {
  position: fixed; pointer-events: none; z-index: 10; display: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 9px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.15);
}
.feed { max-height: 360px; overflow-y: auto; font-size: 13px; }
.feed .ev {
  display: flex; gap: 8px; padding: 5px 0; align-items: baseline;
  border-bottom: 1px solid var(--gridline);
}
.feed .ev:last-child { border-bottom: none; }
.feed .ico { flex: 0 0 auto; }
.feed .ico.warning { color: var(--status-warning); }
.feed .ico.error { color: var(--status-critical); }
.feed .ico.info { color: var(--text-muted); }
.feed .kind { color: var(--text-secondary); white-space: nowrap; }
.feed .msg { flex: 1; }
.feed .corr { color: var(--text-muted); font-size: 11px; white-space: nowrap; }
"""

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Campaign telemetry</title>
<style>
""" + DASHBOARD_CSS + """</style>
</head>
<body class="viz-root">
<main>
  <header class="top">
    <h1>Campaign telemetry</h1>
    <span id="mode-badge" class="badge"></span>
    <span id="meta" class="meta"></span>
  </header>
  <div id="tiles" class="tiles"></div>
  <section class="card">
    <h2>Campaigns</h2>
    <div id="campaigns"></div>
  </section>
  <div class="grid2">
    <section class="card">
      <h2>Queue depth</h2>
      <div id="queue-chart"></div>
    </section>
    <section class="card">
      <h2 id="curves-title">Progress curves</h2>
      <div id="curves-chart"></div>
    </section>
  </div>
  <section class="card">
    <h2>Lease health</h2>
    <div id="leases"></div>
  </section>
  <div class="grid2">
    <section class="card">
      <h2>Workers</h2>
      <div id="workers"></div>
    </section>
    <section class="card">
      <h2>Hot trampolines</h2>
      <div id="profile"></div>
    </section>
  </div>
  <section class="card">
    <h2>Incident &amp; event feed</h2>
    <div id="feed" class="feed"></div>
  </section>
</main>
<div id="tooltip" class="tooltip"></div>
<script>
"use strict";
var SNAPSHOT = __SNAPSHOT__;

var SERIES_COLORS = ["var(--series-1)", "var(--series-2)", "var(--series-3)"];
var SEV_ICON = { info: "\\u24D8", warning: "\\u26A0", error: "\\u2716" };

function el(tag, cls, text) {
  var node = document.createElement(tag);
  if (cls) node.className = cls;
  if (text !== undefined) node.textContent = text;
  return node;
}
function fmt(n) {
  if (n === null || n === undefined || isNaN(n)) return "–";
  if (Math.abs(n) >= 1e6) return (n / 1e6).toFixed(1) + "M";
  if (Math.abs(n) >= 1e4) return (n / 1e3).toFixed(1) + "K";
  if (Number.isInteger(n)) return String(n);
  return n.toFixed(2);
}

function renderTiles(snap) {
  var counters = snap.counters || {};
  var campaigns = snap.campaigns || [];
  var active = campaigns.filter(function (c) { return c.state === "running"; }).length;
  var incidents = 0;
  var counts = snap.incident_counts || {};
  Object.keys(counts).forEach(function (k) { incidents += counts[k]; });
  var tiles = [
    ["Campaigns", campaigns.length || fmt(counters["service.campaigns_submitted"] || 0)],
    ["Active", snap.mode === "live" ? active : "–"],
    ["Shards completed", fmt(counters["service.shards_completed"] ||
                             counters["campaign.pairs_completed"] || 0)],
    ["Leases live", snap.mode === "live" ? (snap.leases || []).length : "–"],
    ["Incidents", fmt(incidents)],
    ["Events seen", fmt(counters["events.total"] || (snap.events || []).length)]
  ];
  var root = document.getElementById("tiles");
  root.textContent = "";
  tiles.forEach(function (t) {
    var tile = el("div", "tile");
    tile.appendChild(el("div", "label", t[0]));
    tile.appendChild(el("div", "value", String(t[1])));
    root.appendChild(tile);
  });
}

function stateChip(state) {
  var icons = { running: "\\u25B6", complete: "\\u2713", degraded: "\\u26A0",
                cancelled: "\\u2298" };
  var chip = el("span", "chip");
  var ico = el("span", "ico", icons[state] || "\\u2022");
  if (state === "complete") ico.style.color = "var(--status-good)";
  if (state === "degraded") ico.style.color = "var(--status-serious)";
  if (state === "cancelled") ico.style.color = "var(--text-muted)";
  chip.appendChild(ico);
  chip.appendChild(document.createTextNode(state));
  return chip;
}

function renderCampaigns(snap) {
  var root = document.getElementById("campaigns");
  root.textContent = "";
  var campaigns = snap.campaigns || [];
  if (!campaigns.length) {
    root.appendChild(el("div", "empty", snap.mode === "live"
      ? "No campaigns submitted yet."
      : "Campaign state is not part of this export (series and incidents below are)."));
    return;
  }
  campaigns.forEach(function (c) {
    var s = c.shards || {};
    var total = s.total || 0;
    var done = (s.completed || 0) + (s.quarantined || 0);
    var row = el("div", "campaign-row");
    var line1 = el("div", "line1");
    var left = el("div");
    left.appendChild(el("span", "cname", c.campaign_id + "  "));
    left.appendChild(stateChip(c.state));
    var counts = el("div", "counts",
      (s.completed || 0) + " done · " + (s.leased || 0) + " leased · " +
      (s.pending || 0) + " pending" +
      ((s.quarantined || 0) ? " · " + s.quarantined + " quarantined" : "") +
      "  (" + done + "/" + total + ")");
    line1.appendChild(left);
    line1.appendChild(counts);
    row.appendChild(line1);
    var meter = el("div", "meter");
    var fill = el("div", "fill" + (c.state === "degraded" ? " degraded" : ""));
    fill.style.width = (total ? (100 * done / total) : 0) + "%";
    meter.appendChild(fill);
    row.appendChild(meter);
    root.appendChild(row);
  });
}

function lineChart(rootId, seriesDefs) {
  var root = document.getElementById(rootId);
  root.textContent = "";
  var defs = seriesDefs.filter(function (d) {
    return d.points && d.points.length > 0;
  });
  if (!defs.length) {
    root.appendChild(el("div", "empty", "No samples yet."));
    return;
  }
  if (defs.length > 1) {
    var legend = el("div", "legend");
    defs.forEach(function (d, i) {
      var item = el("span");
      var key = el("span", "key");
      key.style.background = SERIES_COLORS[i % SERIES_COLORS.length];
      item.appendChild(key);
      item.appendChild(document.createTextNode(d.label));
      legend.appendChild(item);
    });
    root.appendChild(legend);
  }
  var W = 520, H = 180, padL = 44, padR = 14, padT = 10, padB = 22;
  var svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("class", "chart");
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  var xs = [], ys = [];
  defs.forEach(function (d) {
    d.points.forEach(function (p) { xs.push(p[0]); ys.push(p[1]); });
  });
  var x0 = Math.min.apply(null, xs), x1 = Math.max.apply(null, xs);
  var y0 = 0, y1 = Math.max.apply(null, ys);
  if (x1 === x0) x1 = x0 + 1;
  if (y1 <= y0) y1 = y0 + 1;
  y1 = y1 * 1.08;
  function X(t) { return padL + (t - x0) / (x1 - x0) * (W - padL - padR); }
  function Y(v) { return H - padB - (v - y0) / (y1 - y0) * (H - padT - padB); }
  function svgEl(tag, attrs) {
    var node = document.createElementNS("http://www.w3.org/2000/svg", tag);
    Object.keys(attrs).forEach(function (k) { node.setAttribute(k, attrs[k]); });
    return node;
  }
  var ticks = 4;
  for (var i = 0; i <= ticks; i++) {
    var v = y0 + (y1 - y0) * i / ticks;
    var y = Y(v);
    svg.appendChild(svgEl("line", {
      x1: padL, x2: W - padR, y1: y, y2: y,
      stroke: i === 0 ? "var(--baseline)" : "var(--gridline)",
      "stroke-width": 1
    }));
    var label = svgEl("text", { x: padL - 6, y: y + 3.5, "text-anchor": "end" });
    label.textContent = fmt(v);
    svg.appendChild(label);
  }
  var xlab = svgEl("text", { x: W - padR, y: H - 6, "text-anchor": "end" });
  xlab.textContent = "t = " + fmt(x1);
  svg.appendChild(xlab);
  defs.forEach(function (d, i) {
    var color = SERIES_COLORS[i % SERIES_COLORS.length];
    var path = d.points.map(function (p, j) {
      return (j ? "L" : "M") + X(p[0]).toFixed(1) + " " + Y(p[1]).toFixed(1);
    }).join(" ");
    svg.appendChild(svgEl("path", {
      d: path, fill: "none", stroke: color, "stroke-width": 2,
      "stroke-linejoin": "round", "stroke-linecap": "round"
    }));
    var last = d.points[d.points.length - 1];
    svg.appendChild(svgEl("circle", {
      cx: X(last[0]), cy: Y(last[1]), r: 4, fill: color,
      stroke: "var(--surface-1)", "stroke-width": 2
    }));
  });
  var tooltip = document.getElementById("tooltip");
  svg.addEventListener("mousemove", function (evt) {
    var rect = svg.getBoundingClientRect();
    var tx = x0 + ((evt.clientX - rect.left) / rect.width * W - padL) /
             (W - padL - padR) * (x1 - x0);
    var lines = defs.map(function (d, i) {
      var best = d.points[0];
      d.points.forEach(function (p) {
        if (Math.abs(p[0] - tx) < Math.abs(best[0] - tx)) best = p;
      });
      return d.label + ": " + fmt(best[1]) + " @ t=" + fmt(best[0]);
    });
    tooltip.textContent = "";
    lines.forEach(function (line) { tooltip.appendChild(el("div", null, line)); });
    tooltip.style.display = "block";
    tooltip.style.left = (evt.clientX + 14) + "px";
    tooltip.style.top = (evt.clientY + 10) + "px";
  });
  svg.addEventListener("mouseleave", function () {
    tooltip.style.display = "none";
  });
  root.appendChild(svg);
}

function pickSeries(snap, name) {
  var entry = (snap.series || {})[name];
  return entry ? entry.points : null;
}

function renderCharts(snap) {
  lineChart("queue-chart", [
    { label: "pending", points: pickSeries(snap, "service.queue.pending") },
    { label: "leased", points: pickSeries(snap, "service.queue.leased") }
  ]);
  var names = Object.keys(snap.series || {});
  var progress = names.filter(function (n) {
    return n.indexOf("service.campaign.") === 0;
  }).sort();
  var defs, title;
  if (progress.length) {
    title = "Campaign progress (shards completed)";
    defs = progress.slice(0, 3).map(function (n) {
      return { label: n.split(".")[2], points: pickSeries(snap, n) };
    });
  } else {
    title = "Warm-up curves";
    var curves = names.filter(function (n) {
      return /abtb_hits_pki$/.test(n);
    }).sort();
    if (!curves.length) {
      curves = names.filter(function (n) { return /_pki$/.test(n); }).sort();
    }
    defs = curves.slice(0, 3).map(function (n) {
      return { label: n.replace(/\\.abtb_hits_pki$/, ""), points: pickSeries(snap, n) };
    });
  }
  document.getElementById("curves-title").textContent = title;
  lineChart("curves-chart", defs);
}

function renderTable(rootId, headers, rows, emptyText) {
  var root = document.getElementById(rootId);
  root.textContent = "";
  if (!rows.length) {
    root.appendChild(el("div", "empty", emptyText));
    return;
  }
  var table = el("table");
  var thead = el("thead");
  var tr = el("tr");
  headers.forEach(function (h) {
    tr.appendChild(el("th", h.num ? "num" : null, h.label));
  });
  thead.appendChild(tr);
  table.appendChild(thead);
  var tbody = el("tbody");
  rows.forEach(function (row) {
    var line = el("tr");
    row.forEach(function (cell, i) {
      line.appendChild(el("td", headers[i].num ? "num" : null, String(cell)));
    });
    tbody.appendChild(line);
  });
  table.appendChild(tbody);
  root.appendChild(table);
}

function renderLeases(snap) {
  var rows = (snap.leases || []).map(function (l) {
    var p = l.progress || {};
    return [
      l.lease_id, l.key, l.worker_id, l.attempt,
      (l.expires_in_s === undefined ? "–" : l.expires_in_s.toFixed(1) + "s"),
      p.events_done === undefined ? "–" : fmt(p.events_done),
      p.workload || "–", p.backend || "–"
    ];
  });
  renderTable("leases",
    [{label: "lease"}, {label: "shard"}, {label: "worker"},
     {label: "attempt", num: true}, {label: "expires in", num: true},
     {label: "events retired", num: true}, {label: "workload"}, {label: "backend"}],
    rows,
    snap.mode === "live" ? "No live leases." : "Lease state is live-only.");
}

function renderWorkers(snap) {
  var rows = (snap.workers || []).map(function (w) {
    var p = w.last_progress || {};
    return [
      w.worker_id, w.name || "–", fmt(w.shards_completed),
      p.key ? p.key + " (" + fmt(p.events_done) + " ev)" : "–"
    ];
  });
  renderTable("workers",
    [{label: "worker"}, {label: "name"}, {label: "shards done", num: true},
     {label: "last progress"}],
    rows,
    snap.mode === "live" ? "No workers registered." : "Worker state is live-only.");
}

function renderProfile(snap) {
  var sites = (snap.profile && snap.profile.sites) || [];
  var rows = sites.slice(0, 10).map(function (s) {
    return [
      s.symbol || s.site_pc, fmt(s.calls), fmt(s.skipped),
      ((s.skip_rate || 0) * 100).toFixed(1) + "%",
      fmt(s.instructions), fmt(s.got_loads),
      ((s.abtb_hit_rate || 0) * 100).toFixed(1) + "%"
    ];
  });
  renderTable("profile",
    [{label: "call site"}, {label: "calls", num: true}, {label: "skips", num: true},
     {label: "skip%", num: true}, {label: "tramp instr", num: true},
     {label: "GOT loads", num: true}, {label: "ABTB hit%", num: true}],
    rows,
    "No trampoline profile in this snapshot (export one with `repro profile`).");
}

function feedLine(entry) {
  var sev = entry.severity || "info";
  var line = el("div", "ev");
  line.appendChild(el("span", "ico " + sev, SEV_ICON[sev] || SEV_ICON.info));
  line.appendChild(el("span", "kind",
    entry.kind + (entry.seq ? " #" + entry.seq : "")));
  line.appendChild(el("span", "msg", entry.message || ""));
  var corr = [entry.campaign_id, entry.shard_key, entry.worker_id]
    .filter(Boolean).join(" · ");
  if (corr) line.appendChild(el("span", "corr", corr));
  return line;
}

function renderFeed(snap) {
  var root = document.getElementById("feed");
  root.textContent = "";
  var entries = (snap.events || []).slice();
  if (!entries.length && (snap.incidents || []).length) {
    entries = snap.incidents.slice();
  }
  if (!entries.length) {
    root.appendChild(el("div", "empty", "No events yet."));
    return;
  }
  entries.slice().reverse().forEach(function (entry) {
    root.appendChild(feedLine(entry));
  });
}

function appendFeed(entry) {
  var root = document.getElementById("feed");
  var empty = root.querySelector(".empty");
  if (empty) empty.remove();
  root.insertBefore(feedLine(entry), root.firstChild);
  while (root.children.length > 150) root.removeChild(root.lastChild);
}

function renderAll(snap) {
  var badge = document.getElementById("mode-badge");
  badge.textContent = snap.mode === "live" ? "live" : "offline";
  badge.className = "badge" + (snap.mode === "live" ? " live" : "");
  document.getElementById("meta").textContent =
    (snap.mode === "live" ? "manager data dir: " : "artifacts: ") +
    (snap.source || "?") +
    " · generated " + new Date(snap.generated_at * 1000).toLocaleTimeString();
  renderTiles(snap);
  renderCampaigns(snap);
  renderCharts(snap);
  renderLeases(snap);
  renderWorkers(snap);
  renderProfile(snap);
  renderFeed(snap);
}

renderAll(SNAPSHOT);

if (SNAPSHOT.mode === "live" && typeof EventSource !== "undefined") {
  var source = new EventSource("/events?since=" + (SNAPSHOT.last_seq || 0));
  source.onmessage = function (evt) {
    try { appendFeed(JSON.parse(evt.data)); } catch (err) { /* skip */ }
  };
  setInterval(function () {
    fetch("/dash/data").then(function (resp) { return resp.json(); })
      .then(function (snap) {
        SNAPSHOT = snap;
        renderTiles(snap);
        renderCampaigns(snap);
        renderCharts(snap);
        renderLeases(snap);
        renderWorkers(snap);
        renderProfile(snap);
      }).catch(function () { /* manager briefly away; keep the last view */ });
  }, 4000);
}
</script>
</body>
</html>
"""
