"""Structured tracing: spans and instant events, exported as Chrome trace JSON.

A :class:`Tracer` collects three kinds of records:

* **instant events** (``ph: "i"``) — point-in-time markers: a resolver
  run, a GOT write, a chaos fault landing;
* **spans** — durations, either measured live on the host clock
  (:meth:`Tracer.span`) or reconstructed on the *simulated* clock from
  begin/end data (:meth:`Tracer.complete`), e.g. per-request windows
  rebuilt from the CPU's mark stream;
* **counter tracks** (``ph: "C"``) — sampled values over time, which
  Perfetto renders as little line charts (ABTB warm-up curves, PKI
  series).

The export format is the Chrome trace-event JSON object format
(``{"traceEvents": [...]}``), loadable in Perfetto / ``chrome://tracing``.
Host-clock records use microseconds since the tracer was created;
simulation-clock records pass an explicit ``ts`` (cycles).  The two live
on different ``pid`` tracks so their timebases never mix on one row.

Instrumented code guards every emission with ``if tracer is not None``,
so the disabled configuration pays nothing — there is no null-object
dispatch on any hot path.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: ``pid`` of host-clock (wall time) records.
HOST_PID = 1
#: ``pid`` of simulation-clock (cycle time) records.
SIM_PID = 2


class Tracer:
    """Collects trace events; cheap to append to, exported once at the end.

    Args:
        clock: returns the current host timestamp in microseconds.
            Injectable for tests; defaults to ``time.perf_counter_ns``-based
            wall time, zeroed at construction.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.events: list[dict[str, Any]] = []
        if clock is None:
            t0 = time.perf_counter_ns()
            clock = lambda: (time.perf_counter_ns() - t0) / 1000.0  # noqa: E731
        self._clock = clock

    def now(self) -> float:
        """Current host-clock timestamp (microseconds)."""
        return float(self._clock())

    # ---------------------------------------------------------- emission

    def instant(
        self,
        name: str,
        category: str = "event",
        ts: float | None = None,
        tid: int = 1,
        pid: int | None = None,
        **args: Any,
    ) -> None:
        """A point-in-time event.  ``ts=None`` stamps it on the host clock;
        an explicit ``ts`` places it on the simulation-clock track."""
        self.events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": self.now() if ts is None else float(ts),
                "pid": pid if pid is not None else (HOST_PID if ts is None else SIM_PID),
                "tid": tid,
                "args": args,
            }
        )

    @contextmanager
    def span(
        self, name: str, category: str = "span", tid: int = 1, **args: Any
    ) -> Iterator[None]:
        """A host-clock duration around a ``with`` block."""
        start = self.now()
        try:
            yield
        finally:
            self.events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "X",
                    "ts": start,
                    "dur": max(self.now() - start, 0.0),
                    "pid": HOST_PID,
                    "tid": tid,
                    "args": args,
                }
            )

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        category: str = "span",
        tid: int = 1,
        **args: Any,
    ) -> None:
        """A simulation-clock duration reconstructed after the fact
        (e.g. one request window, in cycles)."""
        self.events.append(
            {
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": float(ts),
                "dur": float(dur),
                "pid": SIM_PID,
                "tid": tid,
                "args": args,
            }
        )

    def counter(
        self, name: str, value: float, ts: float | None = None, tid: int = 1
    ) -> None:
        """One sample of a counter track (Perfetto draws these as charts)."""
        self.events.append(
            {
                "name": name,
                "cat": "metric",
                "ph": "C",
                "ts": self.now() if ts is None else float(ts),
                "pid": HOST_PID if ts is None else SIM_PID,
                "tid": tid,
                "args": {"value": float(value)},
            }
        )

    def thread_name(self, tid: int, name: str, pid: int = SIM_PID) -> None:
        """Label a track (shown as the row name in Perfetto)."""
        self.events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # ------------------------------------------------------------ export

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event JSON object."""
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "repro (host clock, us)"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": SIM_PID,
                "tid": 0,
                "args": {"name": "repro (simulated clock, cycles)"},
            },
        ]
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro observability tracer"},
        }

    def write(self, path: str) -> None:
        """Serialise the trace to ``path`` as Chrome trace JSON.

        Atomic (mkstemp + rename): a crash mid-export leaves the previous
        trace or none, never a truncated JSON that Perfetto rejects.
        """
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.to_chrome(), fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


#: Phases that require a ``dur`` field.
_DURATION_PHASES = frozenset({"X"})
#: Phases this tracer emits.
_KNOWN_PHASES = frozenset({"i", "X", "C", "M", "B", "E"})


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema-check a Chrome trace JSON object; returns problem strings.

    An empty list means the payload is loadable by Perfetto: a dict with
    a ``traceEvents`` list whose entries carry ``name``/``ph``/``ts``/
    ``pid``/``tid`` (plus ``dur`` for complete events).
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph is not None and ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph in _DURATION_PHASES and "dur" not in ev:
            problems.append(f"event {i}: complete event without 'dur'")
        ts = ev.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
    return problems
