"""Instruction-event kinds for the synthetic trace ISA.

The simulator is *event driven* rather than instruction driven: straight-line
runs of instructions are carried by a single ``BLOCK`` event, while every
control-transfer and memory operation that the paper's mechanism cares about
is an explicit event.  This keeps traces compact (roughly one event per 5-50
instructions) without losing any of the phenomena the paper measures — cache
line touches, TLB page touches, BTB/predictor updates and GOT loads/stores
are all per-event effects.
"""

from __future__ import annotations

import enum


class EventKind(enum.IntEnum):
    """Discriminator for :class:`repro.isa.events.TraceEvent`."""

    #: Straight-line code: ``n_instr`` instructions spanning ``nbytes`` bytes
    #: starting at ``pc``.  Charges instruction fetch only.
    BLOCK = 0

    #: Direct (PC-relative) ``call`` with a statically encoded target.
    CALL_DIRECT = 1

    #: Indirect call through a register or memory (e.g. C++ virtual call).
    #: ``mem_addr`` is the slot holding the pointer (0 for register calls).
    CALL_INDIRECT = 2

    #: Indirect jump through memory — the PLT trampoline instruction
    #: (``jmp *GOT[slot]``).  ``mem_addr`` is the GOT slot address and
    #: ``target`` the resolved destination.
    JMP_INDIRECT = 3

    #: Direct unconditional jump.
    JMP_DIRECT = 4

    #: Function return (predicted by the return-address stack).
    RET = 5

    #: Conditional branch.  ``taken`` records the architectural outcome.
    COND_BRANCH = 6

    #: Data load from ``mem_addr``.
    LOAD = 7

    #: Data store to ``mem_addr``.  Stores are snooped by the Bloom filter of
    #: the trampoline-skip mechanism.
    STORE = 8

    #: OS context switch.  Flushes the TLBs, RAS and (without ASID support)
    #: the ABTB.  Carries no instructions.
    CONTEXT_SWITCH = 9

    #: Bookkeeping marker delimiting logical units of work (request start and
    #: end).  Carries no instructions and touches no hardware structure.
    MARK = 10

    #: A coherence invalidation arriving from another core (e.g. a different
    #: process or thread rewriting a shared GOT page).  Snooped by the
    #: mechanism's Bloom filter exactly like a local store (Section 3.2),
    #: but executes no instruction on this core.
    COHERENCE_INVAL = 11


#: Kinds indexed by their integer value — the event-kind values are
#: contiguous from 0, so the batched trace representation
#: (:mod:`repro.trace.batch`) can store a kind as a small integer and
#: decode it with one list lookup instead of an ``EventKind(...)`` call.
KIND_BY_VALUE = tuple(sorted(EventKind, key=int))

#: Largest valid event-kind value (batch validation bound).
MAX_EVENT_KIND = int(KIND_BY_VALUE[-1])

#: Event kinds that transfer control and therefore interact with the branch
#: prediction hardware.
BRANCH_KINDS = frozenset(
    {
        EventKind.CALL_DIRECT,
        EventKind.CALL_INDIRECT,
        EventKind.JMP_INDIRECT,
        EventKind.JMP_DIRECT,
        EventKind.RET,
        EventKind.COND_BRANCH,
    }
)

#: Event kinds that perform a data access.
MEMORY_KINDS = frozenset(
    {
        EventKind.CALL_INDIRECT,
        EventKind.JMP_INDIRECT,
        EventKind.LOAD,
        EventKind.STORE,
    }
)

#: Instruction byte sizes used when an event does not carry an explicit size.
#: These follow typical x86-64 encodings: a ``call rel32`` is 5 bytes, the
#: PLT's ``jmp *GOT`` is 6 bytes (the full PLT stub is 16), ``ret`` is 1.
DEFAULT_NBYTES = {
    EventKind.CALL_DIRECT: 5,
    EventKind.CALL_INDIRECT: 6,
    EventKind.JMP_INDIRECT: 6,
    EventKind.JMP_DIRECT: 5,
    EventKind.RET: 1,
    EventKind.COND_BRANCH: 6,
    EventKind.LOAD: 4,
    EventKind.STORE: 4,
}
