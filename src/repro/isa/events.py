"""Trace event representation.

A :class:`TraceEvent` is the unit consumed by the CPU model.  Events are
created in very large numbers (hundreds of thousands per run), so the class
uses ``__slots__`` and module-level constructor helpers that avoid keyword
overhead on the hot path.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import TraceCorruptionError, TraceError
from repro.isa.kinds import DEFAULT_NBYTES, KIND_BY_VALUE, EventKind


class TraceEvent:
    """One architectural event in an instruction trace.

    Attributes:
        kind: the :class:`EventKind` discriminator.
        pc: virtual address of the (first) instruction of the event.
        n_instr: number of instructions the event represents.
        nbytes: code bytes spanned by the event (for instruction fetch).
        target: control-transfer destination (0 when not a branch).
        mem_addr: data address touched (0 when no data access).
        taken: architectural outcome for conditional branches.
        tag: free-form marker payload for ``MARK`` events.
    """

    __slots__ = ("kind", "pc", "n_instr", "nbytes", "target", "mem_addr", "taken", "tag")

    def __init__(
        self,
        kind: EventKind,
        pc: int = 0,
        n_instr: int = 1,
        nbytes: int = 0,
        target: int = 0,
        mem_addr: int = 0,
        taken: bool = True,
        tag: object = None,
    ) -> None:
        self.kind = kind
        self.pc = pc
        self.n_instr = n_instr
        self.nbytes = nbytes
        self.target = target
        self.mem_addr = mem_addr
        self.taken = taken
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.kind.name}, pc={self.pc:#x}, n_instr={self.n_instr}, "
            f"target={self.target:#x}, mem={self.mem_addr:#x}, tag={self.tag!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.pc == other.pc
            and self.n_instr == other.n_instr
            and self.nbytes == other.nbytes
            and self.target == other.target
            and self.mem_addr == other.mem_addr
            and self.taken == other.taken
            and self.tag == other.tag
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.pc, self.n_instr, self.target, self.mem_addr))


def block(pc: int, n_instr: int, nbytes: int | None = None) -> TraceEvent:
    """A straight-line run of ``n_instr`` instructions starting at ``pc``.

    When ``nbytes`` is omitted, instructions are assumed to average 4 bytes,
    the typical x86-64 density.
    """
    if n_instr < 1:
        raise TraceError(f"block must contain at least one instruction, got {n_instr}")
    return TraceEvent(EventKind.BLOCK, pc, n_instr, nbytes if nbytes is not None else 4 * n_instr)


def call_direct(pc: int, target: int) -> TraceEvent:
    """A direct ``call`` at ``pc`` to ``target``."""
    return TraceEvent(
        EventKind.CALL_DIRECT, pc, 1, DEFAULT_NBYTES[EventKind.CALL_DIRECT], target
    )


def call_indirect(pc: int, target: int, mem_addr: int = 0) -> TraceEvent:
    """An indirect call at ``pc`` whose resolved destination is ``target``.

    ``mem_addr`` is nonzero when the pointer is loaded from memory (virtual
    dispatch); register-indirect calls pass 0 and perform no data access.
    """
    return TraceEvent(
        EventKind.CALL_INDIRECT,
        pc,
        1,
        DEFAULT_NBYTES[EventKind.CALL_INDIRECT],
        target,
        mem_addr,
    )


def jmp_indirect(pc: int, target: int, mem_addr: int) -> TraceEvent:
    """The PLT trampoline: ``jmp *mem_addr`` resolving to ``target``."""
    return TraceEvent(
        EventKind.JMP_INDIRECT, pc, 1, DEFAULT_NBYTES[EventKind.JMP_INDIRECT], target, mem_addr
    )


def jmp_direct(pc: int, target: int) -> TraceEvent:
    """A direct unconditional jump."""
    return TraceEvent(EventKind.JMP_DIRECT, pc, 1, DEFAULT_NBYTES[EventKind.JMP_DIRECT], target)


def ret(pc: int, target: int) -> TraceEvent:
    """A return at ``pc`` to the architectural return address ``target``."""
    return TraceEvent(EventKind.RET, pc, 1, DEFAULT_NBYTES[EventKind.RET], target)


def cond_branch(pc: int, target: int, taken: bool) -> TraceEvent:
    """A conditional branch with its architectural outcome."""
    return TraceEvent(
        EventKind.COND_BRANCH,
        pc,
        1,
        DEFAULT_NBYTES[EventKind.COND_BRANCH],
        target,
        0,
        taken,
    )


def load(pc: int, mem_addr: int) -> TraceEvent:
    """A data load."""
    return TraceEvent(EventKind.LOAD, pc, 1, DEFAULT_NBYTES[EventKind.LOAD], 0, mem_addr)


def store(pc: int, mem_addr: int) -> TraceEvent:
    """A data store (snooped by the mechanism's Bloom filter)."""
    return TraceEvent(EventKind.STORE, pc, 1, DEFAULT_NBYTES[EventKind.STORE], 0, mem_addr)


def context_switch() -> TraceEvent:
    """An OS context switch marker."""
    return TraceEvent(EventKind.CONTEXT_SWITCH, 0, 0, 0)


def coherence_inval(mem_addr: int) -> TraceEvent:
    """A remote-core invalidation of the line holding ``mem_addr``."""
    return TraceEvent(EventKind.COHERENCE_INVAL, 0, 0, 0, 0, mem_addr)


def mark(tag: object) -> TraceEvent:
    """A bookkeeping marker (request boundaries, phase labels)."""
    return TraceEvent(EventKind.MARK, 0, 0, 0, tag=tag)


def event_from_row(
    kind: int,
    pc: int,
    n_instr: int,
    nbytes: int,
    target: int,
    mem_addr: int,
    taken: int,
    tag: object = None,
) -> TraceEvent:
    """Rebuild an event from numeric row fields.

    This is the inverse of the columnar packing in
    :mod:`repro.trace.batch`: ``kind`` is the raw integer value (decoded
    via one table lookup) and ``taken`` any truthy/falsy integer.

    An out-of-range ``kind`` — the signature of a corrupted or
    version-skewed trace artifact — raises
    :class:`~repro.errors.TraceCorruptionError` instead of an opaque
    ``IndexError``.
    """
    if not 0 <= kind < len(KIND_BY_VALUE):
        raise TraceCorruptionError(
            f"unknown event kind {kind!r} (valid: 0..{len(KIND_BY_VALUE) - 1}); "
            f"trace row is corrupt or from an incompatible format version"
        )
    return TraceEvent(
        KIND_BY_VALUE[kind], pc, n_instr, nbytes, target, mem_addr, taken != 0, tag
    )


def count_instructions(events: Iterator[TraceEvent]) -> int:
    """Total architectural instruction count of an event stream."""
    return sum(e.n_instr for e in events)
