"""Target-architecture parameters for trampoline geometry.

The paper's Figure 2 shows both encodings:

* **x86-64** — the PLT stub's working part is a single ``jmp *GOT[n]``;
  the trampoline costs one executed instruction per call.
* **ARM** — the stub computes the GOT slot address with two ``add``
  instructions and branches with ``ldr pc, [...]``; three instructions
  per call, so skipping saves 3× the instructions.

The mechanism is identical on both: a call followed (within the stub) by
an indirect branch, which is exactly the retire-time pattern the ABTB
learns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Arch(enum.Enum):
    """Supported trampoline encodings."""

    X86_64 = "x86_64"
    ARM = "arm"


@dataclass(frozen=True)
class ArchParams:
    """Trampoline geometry of one architecture.

    Attributes:
        stub_prefix_instrs: instructions executed in the stub before the
            indirect branch (0 on x86-64, 2 adds on ARM).
        stub_prefix_bytes: code bytes of that prefix.
        branch_bytes: encoding size of the indirect branch itself.
        call_bytes: encoding size of a call/bl instruction.
    """

    stub_prefix_instrs: int
    stub_prefix_bytes: int
    branch_bytes: int
    call_bytes: int

    @property
    def trampoline_instructions(self) -> int:
        """Instructions executed per trampoline traversal."""
        return self.stub_prefix_instrs + 1


ARCH_PARAMS = {
    Arch.X86_64: ArchParams(
        stub_prefix_instrs=0, stub_prefix_bytes=0, branch_bytes=6, call_bytes=5
    ),
    Arch.ARM: ArchParams(
        stub_prefix_instrs=2, stub_prefix_bytes=8, branch_bytes=4, call_bytes=4
    ),
}
