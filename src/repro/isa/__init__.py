"""Synthetic trace ISA: event kinds, architectures and event constructors."""

from repro.isa.arch import ARCH_PARAMS, Arch, ArchParams
from repro.isa.events import (
    TraceEvent,
    block,
    call_direct,
    call_indirect,
    coherence_inval,
    cond_branch,
    context_switch,
    count_instructions,
    jmp_direct,
    jmp_indirect,
    load,
    mark,
    ret,
    store,
)
from repro.isa.kinds import BRANCH_KINDS, DEFAULT_NBYTES, MEMORY_KINDS, EventKind

__all__ = [
    "ARCH_PARAMS",
    "Arch",
    "ArchParams",
    "BRANCH_KINDS",
    "DEFAULT_NBYTES",
    "MEMORY_KINDS",
    "EventKind",
    "TraceEvent",
    "block",
    "call_direct",
    "call_indirect",
    "coherence_inval",
    "cond_branch",
    "context_switch",
    "count_instructions",
    "jmp_direct",
    "jmp_indirect",
    "load",
    "mark",
    "ret",
    "store",
]
