"""Chaos harness: fault injection + a stale-target correctness oracle.

See :mod:`repro.chaos.campaign` for the one-call entry points
(:func:`run_chaos`, :func:`run_campaign`) and ``python -m repro chaos``
for the CLI.
"""

from repro.chaos.campaign import (
    CampaignConfig,
    CampaignReport,
    ChaosRunConfig,
    ChaosRunResult,
    run_campaign,
    run_chaos,
    run_corruption_trials,
)
from repro.chaos.faults import (
    CORRUPTION_KINDS,
    AbtbThrashFault,
    BloomSaturationFault,
    ChaosContext,
    ContextSwitchFault,
    Fault,
    GotRewriteFault,
    IfuncReselectFault,
    LossyCoherence,
    SpuriousInvalFault,
    SyntheticSlots,
    corrupted_stream,
    default_faults,
)
from repro.chaos.injector import SAFE_HEADS, InjectionRecord, Injector
from repro.chaos.net import (
    PARTITION_DIRECTIONS,
    FaultyTransport,
    InjectedNetworkError,
    NetFaultInjector,
    NetFaultPolicy,
)
from repro.chaos.oracle import RESET, CorrectnessOracle, SkipRecord

__all__ = [
    "AbtbThrashFault",
    "BloomSaturationFault",
    "CampaignConfig",
    "CampaignReport",
    "ChaosContext",
    "ChaosRunConfig",
    "ChaosRunResult",
    "ContextSwitchFault",
    "CorrectnessOracle",
    "CORRUPTION_KINDS",
    "corrupted_stream",
    "default_faults",
    "Fault",
    "FaultyTransport",
    "GotRewriteFault",
    "IfuncReselectFault",
    "InjectedNetworkError",
    "InjectionRecord",
    "Injector",
    "LossyCoherence",
    "NetFaultInjector",
    "NetFaultPolicy",
    "PARTITION_DIRECTIONS",
    "RESET",
    "run_campaign",
    "run_chaos",
    "run_corruption_trials",
    "SAFE_HEADS",
    "SkipRecord",
    "SpuriousInvalFault",
    "SyntheticSlots",
]
