"""The fault injector: splices faults into live event streams.

An :class:`Injector` wraps a trace generator.  At *safe* stream positions
(never between a trampoline pair's call and its stub, which would desync
the CPU's pairing logic) it consults its schedule — a seeded RNG rate, a
list of fixed event indices, or both — and splices the chosen fault's
events into the stream.  Every instrumented stream also flows through
:func:`repro.trace.validate.validated`, so injected trace corruption is
guaranteed to raise :class:`~repro.errors.TraceError` instead of silently
mis-executing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.chaos.faults import ChaosContext, Fault
from repro.errors import ChaosError
from repro.isa.events import TraceEvent
from repro.isa.kinds import EventKind
from repro.trace.validate import validated

#: Kinds an injection may precede.  A fault fired before any of these can
#: never split a call→stub trampoline pair (pairs start with CALL_DIRECT
#: and continue with the stub's BLOCK/JMP_INDIRECT).
SAFE_HEADS = frozenset(
    {
        EventKind.BLOCK,
        EventKind.LOAD,
        EventKind.STORE,
        EventKind.COND_BRANCH,
        EventKind.MARK,
        EventKind.CONTEXT_SWITCH,
        EventKind.RET,
        EventKind.COHERENCE_INVAL,
    }
)


@dataclass(frozen=True)
class InjectionRecord:
    """One fault firing: where, what, and how many events it spliced in."""

    index: int
    fault: str
    n_events: int


class Injector:
    """Composes faults over one core's event stream.

    Args:
        faults: the fault mix; the RNG schedule picks uniformly among them.
        ctx: shared chaos state (program, oracle, mechanism, allocator).
        seed: seed for the injection schedule *and* the faults' own draws.
        rate: per-safe-event probability of firing a random fault
            (0 disables the random schedule).
        at: fixed (event_index, fault) pairs; each fires at the first safe
            position at or after its index.  Works alongside ``rate``.
            Indices are *absolute* stream positions — see ``base_index``.
        validate: route the instrumented stream through the trace
            validator (on by default — chaos runs must detect corruption).
        base_index: absolute position of the wrapped stream's first event.
            A run resumed from a machine checkpoint wraps only the tail of
            the trace; passing the checkpoint's ``trace_position`` here
            keeps ``at`` schedules (and the reported injection records)
            in the full-trace coordinate system, so a fault planned at
            index N lands at the same event whether or not the run
            resumed.  Scheduled entries before ``base_index`` fall in the
            already-simulated prefix and are dropped.
    """

    def __init__(
        self,
        faults: Sequence[Fault],
        ctx: ChaosContext,
        seed: int = 0,
        rate: float = 0.0,
        at: Sequence[tuple[int, Fault]] = (),
        validate: bool = True,
        tracer=None,
        metrics=None,
        base_index: int = 0,
    ) -> None:
        if rate < 0 or rate >= 1:
            raise ChaosError(f"injection rate must be in [0, 1), got {rate}")
        if rate and not faults:
            raise ChaosError("a nonzero rate needs at least one fault")
        self.faults = list(faults)
        self.ctx = ctx
        self.rate = rate
        self.validate = validate
        #: Optional :class:`repro.obs.tracer.Tracer`: each fault landing
        #: becomes an instant event (what landed, where in the stream).
        self.tracer = tracer
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`: per-fault
        #: landing counters (``chaos.faults.<name>``).
        self.metrics = metrics
        if base_index < 0:
            raise ChaosError(f"base_index must be >= 0, got {base_index}")
        self._rng = np.random.default_rng(seed)
        self._scheduled = sorted(at, key=lambda pair: pair[0])
        #: Scheduled firings that fall inside the skipped prefix of a
        #: resumed run; they already happened (or never will) — dropped.
        self.dropped_schedule = 0
        while self._scheduled and self._scheduled[0][0] < base_index:
            self._scheduled.pop(0)
            self.dropped_schedule += 1
        self.base_index = base_index
        self.index = base_index
        self.injected = 0
        self.events_spliced = 0
        self.fault_counts: dict[str, int] = {}
        self.records: list[InjectionRecord] = []

    # ----------------------------------------------------------- wrapping

    def wrap(self, events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
        """The instrumented stream: base events plus spliced faults."""
        stream = self._instrument(events)
        return validated(stream) if self.validate else stream

    def _instrument(self, events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
        for ev in events:
            if ev.kind in SAFE_HEADS:
                for fault in self._due():
                    yield from self._fire(fault)
            yield ev
            self.index += 1

    def _due(self) -> list[Fault]:
        """Faults scheduled to fire at (or before) the current position."""
        due: list[Fault] = []
        while self._scheduled and self._scheduled[0][0] <= self.index:
            due.append(self._scheduled.pop(0)[1])
        if self.rate and self._rng.random() < self.rate:
            due.append(self.faults[int(self._rng.integers(0, len(self.faults)))])
        return due

    def _fire(self, fault: Fault) -> list[TraceEvent]:
        spliced = fault.fire(self.ctx, self._rng)
        if spliced:
            self.injected += 1
            self.events_spliced += len(spliced)
            self.fault_counts[fault.name] = self.fault_counts.get(fault.name, 0) + 1
            self.records.append(InjectionRecord(self.index, fault.name, len(spliced)))
            if self.tracer is not None:
                self.tracer.instant(
                    f"fault:{fault.name}",
                    category="chaos",
                    fault=fault.name,
                    stream_index=self.index,
                    events_spliced=len(spliced),
                )
            if self.metrics is not None:
                self.metrics.counter(f"chaos.faults.{fault.name}").inc()
                self.metrics.counter("chaos.faults.total").inc()
        return spliced
