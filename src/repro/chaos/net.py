"""Deterministic network fault injection for the campaign service.

The service's resilience story (lease expiry, idempotent completion,
fencing epochs, worker failover) is only credible if it survives a
hostile network — so this module makes the network hostile *on purpose*,
and deterministically: every fault decision is a pure function of
``(seed, exchange counter, fault kind)`` via SHA-256, so a drill that
found a bug replays bit-for-bit from its seed.

The injector sits between a client and the real HTTP transport as a
:class:`FaultyTransport` (pluggable into
:class:`repro.service.worker.ManagerClient` and the standby's
replication puller).  Fault catalogue, per exchange:

* **drop** — the request never arrives (connection error before send);
* **delay** — the request is held for ``delay_s`` before sending;
* **duplicate** — a POST is delivered *twice* (at-least-once delivery:
  the second response is returned, as after a lost ack + retry);
* **truncate** — the response body is cut in half (the client must treat
  an undecodable body as a transport failure, never as an answer);
* **mangle** — the response is replaced by a synthetic HTTP 502 (a
  mid-path proxy failure; deliberately *not* 503, which the service uses
  for genuine graceful shutdown and must stay un-retried).

**Partitions** are modelled per endpoint with a direction, so drills can
cut worker↔leader or leader↔standby links asymmetrically:
``request`` (nothing reaches the far side), ``response`` (the far side
*does* apply the write but the answer is lost — the nastier half), or
``both``.  Partitions are dynamic: :meth:`NetFaultInjector.partition` /
:meth:`NetFaultInjector.heal` flip them mid-drill.

Every injected fault is recorded as a ``net_fault`` incident when a
recorder is attached, so a drill's incident log accounts for every
disruption it suffered.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.resilience.incidents import IncidentKind

#: Partition directions (which half of the exchange is cut).
PARTITION_DIRECTIONS = ("request", "response", "both")


class InjectedNetworkError(ConnectionError):
    """A connection-level failure manufactured by the injector.

    Subclasses ``ConnectionError`` so clients retry it exactly like a
    real dead socket — the whole point is that they cannot tell.
    """


def _frac(seed: int, counter: int, kind: str) -> float:
    """Deterministic uniform [0, 1) decision for one (exchange, fault)."""
    digest = hashlib.sha256(f"{seed}:{counter}:{kind}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class NetFaultPolicy:
    """Per-exchange fault probabilities (all default off).

    ``seed`` makes every decision deterministic; two injectors with the
    same seed fire the same faults at the same exchanges.
    """

    seed: int = 0
    drop: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.02
    duplicate: float = 0.0
    truncate: float = 0.0
    mangle: float = 0.0


@dataclass
class _Partition:
    url: str
    direction: str = "both"


@dataclass
class NetFaultInjector:
    """Stateful fault engine shared by any number of transports.

    Thread-safe: worker heartbeat threads, the main worker loop and a
    standby's replication puller may all route through one injector, and
    the exchange counter (the determinism anchor) must tick atomically.
    """

    policy: NetFaultPolicy = field(default_factory=NetFaultPolicy)
    recorder: object | None = None
    sleep_fn: object = time.sleep

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._counter = 0
        self._partitions: dict[str, _Partition] = {}
        #: Injected-fault tally per kind (drills assert against this).
        self.counts: dict[str, int] = {}

    # ---------------------------------------------------------- partitions

    def partition(self, url: str, direction: str = "both") -> None:
        """Cut the link to ``url`` (a client-side base URL) in
        ``direction`` until :meth:`heal`."""
        if direction not in PARTITION_DIRECTIONS:
            raise ValueError(
                f"direction {direction!r} not in {PARTITION_DIRECTIONS}"
            )
        with self._lock:
            self._partitions[url.rstrip("/")] = _Partition(
                url=url.rstrip("/"), direction=direction
            )

    def heal(self, url: str | None = None) -> None:
        """Restore the link to ``url`` (None: heal every partition)."""
        with self._lock:
            if url is None:
                self._partitions.clear()
            else:
                self._partitions.pop(url.rstrip("/"), None)

    def _partition_for(self, url: str) -> _Partition | None:
        with self._lock:
            for base, part in self._partitions.items():
                if url.startswith(base):
                    return part
        return None

    # ------------------------------------------------------------ exchange

    def exchange(self, inner, url: str, method: str, data, timeout_s: float):
        """Run one HTTP exchange through the fault engine.

        ``inner`` is the real transport: ``inner(url, method, data,
        timeout_s) -> (status, raw_bytes)``.  Raises
        :class:`InjectedNetworkError` for dropped/partitioned exchanges.
        """
        with self._lock:
            self._counter += 1
            n = self._counter
        policy = self.policy

        part = self._partition_for(url)
        if part is not None and part.direction in ("request", "both"):
            self._record("partition", url, direction=part.direction)
            raise InjectedNetworkError(f"injected partition (request) to {url}")

        if policy.drop and _frac(policy.seed, n, "drop") < policy.drop:
            self._record("drop", url)
            raise InjectedNetworkError(f"injected drop to {url}")

        if policy.delay and _frac(policy.seed, n, "delay") < policy.delay:
            self._record("delay", url, delay_s=policy.delay_s)
            self.sleep_fn(policy.delay_s)

        duplicated = (
            method == "POST"
            and policy.duplicate
            and _frac(policy.seed, n, "duplicate") < policy.duplicate
        )
        status, raw = inner(url, method, data, timeout_s)
        if duplicated:
            # At-least-once delivery: the first response is "lost", the
            # request is re-sent, the second response is what the client
            # sees — every POST endpoint must make this a no-op.
            self._record("duplicate", url)
            status, raw = inner(url, method, data, timeout_s)

        if part is not None and part.direction == "response":
            # The far side applied the write; only the answer is cut.
            self._record("partition", url, direction=part.direction)
            raise InjectedNetworkError(f"injected partition (response) from {url}")

        if policy.mangle and _frac(policy.seed, n, "mangle") < policy.mangle:
            self._record("mangle", url)
            return 502, b'{"error": "injected 502 (mid-path proxy failure)"}'

        if policy.truncate and _frac(policy.seed, n, "truncate") < policy.truncate:
            self._record("truncate", url)
            return status, raw[: max(1, len(raw) // 2)]

        return status, raw

    def _record(self, fault: str, url: str, **context) -> None:
        with self._lock:
            self.counts[fault] = self.counts.get(fault, 0) + 1
        if self.recorder is not None:
            self.recorder.record(
                IncidentKind.NET_FAULT,
                f"injected network fault: {fault} on {url}",
                severity="info",
                fault=fault,
                url=url,
                **context,
            )

    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())


class FaultyTransport:
    """A drop-in transport for :class:`~repro.service.worker.ManagerClient`
    that routes every exchange through a :class:`NetFaultInjector`.

    Several clients (workers, standby puller) can share one injector —
    they then share the deterministic exchange counter and the partition
    table, which is exactly what a fleet drill wants.
    """

    def __init__(self, injector: NetFaultInjector, inner=None) -> None:
        if inner is None:
            from repro.service.worker import http_exchange as inner  # noqa: PLC0415
        self.injector = injector
        self.inner = inner

    def __call__(self, url: str, method: str, data, timeout_s: float):
        return self.injector.exchange(self.inner, url, method, data, timeout_s)
