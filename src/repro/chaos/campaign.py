"""Seeded chaos campaigns: perturb live runs, audit every skip.

A campaign is a deterministic sequence of instrumented runs — single-core
and dual-core, across workloads — plus a set of trace-corruption trials.
Its verdict encodes the paper's safety claim:

* ``use_bloom=True``: the run must end with ``unsafe_skips == 0`` and an
  empty oracle violation list, no matter what was injected;
* ``use_bloom=False`` with the software invalidation contract broken
  (``software_invalidate=False``): the §3.4 hazard is *expected* — the
  campaign fails if the oracle does **not** detect it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.faults import (
    CORRUPTION_KINDS,
    ChaosContext,
    LossyCoherence,
    SyntheticSlots,
    corrupted_stream,
    default_faults,
)
from repro.chaos.injector import Injector
from repro.chaos.oracle import CorrectnessOracle
from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import ChaosError, TraceError
from repro.trace.validate import validated
from repro.uarch.cpu import CPU
from repro.uarch.multicore import DualCoreSystem
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ChaosRunConfig:
    """One instrumented run."""

    workload: str = "memcached"
    seed: int = 0
    requests: int = 24
    rate: float = 0.01
    use_bloom: bool = True
    software_invalidate: bool = True
    dual_core: bool = False
    drop_prob: float = 0.4
    abtb_entries: int = 64
    bloom_bits: int = 4096
    slice_events: int = 64


@dataclass
class ChaosRunResult:
    """What one instrumented run observed."""

    label: str
    injected: int = 0
    events_spliced: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    skips_checked: int = 0
    violations: int = 0
    hazards_detected: int = 0
    trace_divergences: int = 0
    unsafe_skips: int = 0
    trampolines_skipped: int = 0
    trampolines_executed: int = 0
    store_flushes: int = 0
    coherence_flushes: int = 0
    context_flushes: int = 0
    invalidations_dropped: int = 0
    first_violation: str | None = None


def _mechanism(cfg: ChaosRunConfig) -> TrampolineSkipMechanism:
    return TrampolineSkipMechanism(
        MechanismConfig(
            abtb_entries=cfg.abtb_entries,
            bloom_bits=cfg.bloom_bits,
            use_bloom=cfg.use_bloom,
        )
    )


def _collect(
    label: str,
    injectors: list[Injector],
    oracle: CorrectnessOracle,
    mechanisms: list[TrampolineSkipMechanism],
    counters,
    dropped: int = 0,
) -> ChaosRunResult:
    result = ChaosRunResult(label)
    for inj in injectors:
        result.injected += inj.injected
        result.events_spliced += inj.events_spliced
        for name, count in inj.fault_counts.items():
            result.fault_counts[name] = result.fault_counts.get(name, 0) + count
    result.skips_checked = oracle.skips_checked
    result.violations = len(oracle.violations)
    result.hazards_detected = oracle.hazards_detected
    result.trace_divergences = oracle.trace_divergences
    if oracle.violations:
        result.first_violation = oracle.violations[0].describe()
    for mech in mechanisms:
        result.unsafe_skips += mech.stats.unsafe_skips
        result.store_flushes += mech.stats.store_flushes
        result.coherence_flushes += mech.stats.coherence_flushes
        result.context_flushes += mech.stats.context_flushes
    for c in counters:
        result.trampolines_skipped += c.trampolines_skipped
        result.trampolines_executed += c.trampolines_executed
    result.invalidations_dropped = dropped
    return result


def run_chaos(cfg: ChaosRunConfig, obs=None) -> ChaosRunResult:
    """One seeded, instrumented run (single- or dual-core).

    ``obs`` is an optional :class:`repro.obs.Observability` session:
    fault landings become trace instants and per-fault counters, and the
    counter sampler (when configured) rides each core's event stream.
    """
    try:
        module = ALL_WORKLOADS[cfg.workload]
    except KeyError:
        raise ChaosError(f"unknown workload {cfg.workload!r}") from None
    workload = Workload(module.config(seed=1234 + cfg.seed))
    expect_hazards = not cfg.use_bloom and not cfg.software_invalidate
    oracle = CorrectnessOracle(workload.program, expect_hazards=expect_hazards)
    faults = default_faults(software_invalidate=cfg.software_invalidate)
    synth = SyntheticSlots()
    tracer = obs.tracer if obs is not None else None
    metrics = obs.metrics if obs is not None else None
    if obs is not None:
        obs.attach_workload(workload)

    if not cfg.dual_core:
        label = f"{cfg.workload}/single/seed={cfg.seed}"
        mech = _mechanism(cfg)
        hooks = obs.hooks(oracle) if obs is not None else oracle
        cpu = CPU(mechanism=mech, hooks=hooks)
        cpu.run(workload.startup_trace())
        ctx = ChaosContext(workload.program, oracle, mech, synth)
        injector = Injector(
            faults, ctx, seed=cfg.seed, rate=cfg.rate, tracer=tracer, metrics=metrics
        )
        stream = injector.wrap(workload.trace(cfg.requests))
        if obs is not None:
            stream = obs.instrument(stream, cpu, label)
        cpu.run(stream)
        counters = [cpu.finalize()]
        if obs is not None:
            obs.finish_run(cpu, label)
        return _collect(label, [injector], oracle, [mech], counters)

    label = f"{cfg.workload}/dual/seed={cfg.seed}"
    mech0, mech1 = _mechanism(cfg), _mechanism(cfg)
    hooks = obs.hooks(oracle) if obs is not None else oracle
    cpu0 = CPU(mechanism=mech0, hooks=hooks)
    cpu1 = CPU(mechanism=mech1, hooks=hooks)
    lossy = LossyCoherence(oracle, drop_prob=cfg.drop_prob, seed=cfg.seed + 1)
    system = DualCoreSystem(
        (cpu0, cpu1), slice_events=cfg.slice_events, coherence_filter=lossy
    )
    cpu0.run(workload.startup_trace())
    ctx0 = ChaosContext(workload.program, oracle, mech0, synth)
    ctx1 = ChaosContext(workload.program, oracle, mech1, synth)
    inj0 = Injector(
        faults, ctx0, seed=cfg.seed, rate=cfg.rate, tracer=tracer, metrics=metrics
    )
    inj1 = Injector(
        default_faults(software_invalidate=cfg.software_invalidate),
        ctx1,
        seed=cfg.seed + 7919,
        rate=cfg.rate,
        tracer=tracer,
        metrics=metrics,
    )
    # The two streams are two threads of one process: they share the
    # program image and its live GOT, which is exactly what makes the
    # cross-core invalidation path load-bearing.
    stream0 = inj0.wrap(workload.trace(cfg.requests, start_id=0))
    stream1 = inj1.wrap(workload.trace(cfg.requests, start_id=100_000))
    if obs is not None:
        stream0 = obs.instrument(stream0, cpu0, f"{label}/core0")
        stream1 = obs.instrument(stream1, cpu1, f"{label}/core1")
    system.run(stream0, stream1)
    counters = list(system.finalize())
    if obs is not None:
        obs.finish_run(cpu0, f"{label}/core0")
        obs.finish_run(cpu1, f"{label}/core1")
    return _collect(
        label,
        [inj0, inj1],
        oracle,
        [mech0, mech1],
        counters,
        dropped=sum(system.invalidations_dropped),
    )


def run_corruption_trials(kinds=CORRUPTION_KINDS) -> dict[str, bool]:
    """Drive each corruption through a validated CPU run.

    True means the corruption was *detected* (``TraceError`` raised before
    any mis-execution) — the required outcome for every kind.
    """
    results: dict[str, bool] = {}
    for kind in kinds:
        cpu = CPU()
        try:
            cpu.run(validated(iter(corrupted_stream(kind))))
        except TraceError:
            results[kind] = True
        else:
            results[kind] = False
    return results


@dataclass(frozen=True)
class CampaignConfig:
    """A full chaos campaign: runs until ``min_faults`` injections land."""

    seed: int = 2025
    min_faults: int = 1000
    rate: float = 0.01
    use_bloom: bool = True
    software_invalidate: bool = True
    workloads: tuple[str, ...] = ("memcached", "apache")
    requests: int = 24
    max_rounds: int = 40
    abtb_entries: int = 64
    bloom_bits: int = 4096


@dataclass
class CampaignReport:
    """Aggregate verdict of a chaos campaign."""

    runs: list[ChaosRunResult]
    corruption: dict[str, bool]
    use_bloom: bool
    expect_hazards: bool

    @property
    def injected(self) -> int:
        return sum(r.injected for r in self.runs)

    @property
    def fault_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.runs:
            for name, count in r.fault_counts.items():
                out[name] = out.get(name, 0) + count
        return out

    @property
    def skips_checked(self) -> int:
        return sum(r.skips_checked for r in self.runs)

    @property
    def violations(self) -> int:
        return sum(r.violations for r in self.runs)

    @property
    def hazards_detected(self) -> int:
        return sum(r.hazards_detected for r in self.runs)

    @property
    def unsafe_skips(self) -> int:
        return sum(r.unsafe_skips for r in self.runs)

    @property
    def trace_divergences(self) -> int:
        return sum(r.trace_divergences for r in self.runs)

    @property
    def corruption_detected(self) -> bool:
        return all(self.corruption.values())

    @property
    def ok(self) -> bool:
        """Did the campaign confirm the paper's safety story?"""
        if not self.corruption_detected:
            return False
        if self.expect_hazards:
            # §3.4 with the contract broken: the hazard must fire and be
            # detected — a silent pass would mean the oracle is blind.
            return self.hazards_detected > 0 and self.unsafe_skips > 0
        return self.violations == 0 and self.unsafe_skips == 0

    def render(self) -> str:
        lines = [
            f"chaos campaign: {len(self.runs)} runs, {self.injected} faults injected, "
            f"{self.skips_checked} skips audited",
            f"  mode            : use_bloom={self.use_bloom} "
            f"expect_hazards={self.expect_hazards}",
        ]
        for name, count in sorted(self.fault_counts.items()):
            lines.append(f"  fault {name:<16}: {count}")
        for kind, detected in sorted(self.corruption.items()):
            lines.append(
                f"  corruption {kind:<17}: {'detected' if detected else 'MISSED'}"
            )
        lines.append(f"  unsafe skips    : {self.unsafe_skips}")
        lines.append(f"  oracle violations: {self.violations}")
        lines.append(f"  hazards detected: {self.hazards_detected}")
        for r in self.runs:
            lines.append(
                f"    {r.label:<28} faults={r.injected:<4} skips={r.skips_checked:<6} "
                f"violations={r.violations} hazards={r.hazards_detected} "
                f"unsafe={r.unsafe_skips} dropped_invals={r.invalidations_dropped}"
            )
            if r.first_violation:
                lines.append(f"      first violation: {r.first_violation}")
        lines.append(f"  verdict         : {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def run_campaign(
    cfg: CampaignConfig = CampaignConfig(), obs=None, recorder=None
) -> CampaignReport:
    """Run seeded rounds (cycling workloads, one dual-core round per
    cycle) until at least ``min_faults`` injections landed.

    ``recorder`` (an :class:`~repro.resilience.incidents.IncidentRecorder`)
    turns every oracle violation and missed corruption detection into a
    structured incident, so chaos findings land in the same log as
    supervisor and integrity anomalies.
    """
    plan: list[tuple[str, bool]] = [(w, False) for w in cfg.workloads]
    plan.append((cfg.workloads[0], True))
    runs: list[ChaosRunResult] = []
    total = 0
    rounds = 0
    while rounds < len(plan) or total < cfg.min_faults:
        if rounds >= cfg.max_rounds:
            raise ChaosError(
                f"campaign hit max_rounds={cfg.max_rounds} with only "
                f"{total} faults injected; raise rate or requests"
            )
        workload, dual = plan[rounds % len(plan)]
        run = run_chaos(
            cfg=ChaosRunConfig(
                workload=workload,
                seed=cfg.seed + rounds,
                requests=cfg.requests,
                rate=cfg.rate,
                use_bloom=cfg.use_bloom,
                software_invalidate=cfg.software_invalidate,
                dual_core=dual,
                abtb_entries=cfg.abtb_entries,
                bloom_bits=cfg.bloom_bits,
            ),
            obs=obs,
        )
        runs.append(run)
        total += run.injected
        rounds += 1
    report = CampaignReport(
        runs=runs,
        corruption=run_corruption_trials(),
        use_bloom=cfg.use_bloom,
        expect_hazards=not cfg.use_bloom and not cfg.software_invalidate,
    )
    if recorder is not None:
        from repro.resilience.incidents import IncidentKind

        for run in report.runs:
            if run.violations and not report.expect_hazards:
                recorder.record(
                    IncidentKind.ORACLE_VIOLATION,
                    f"chaos run {run.label}: {run.violations} committed "
                    f"skip(s) to a stale target"
                    + (f" — first: {run.first_violation}" if run.first_violation else ""),
                    label=run.label,
                    violations=run.violations,
                )
        for kind, detected in report.corruption.items():
            if not detected:
                recorder.record(
                    IncidentKind.ORACLE_VIOLATION,
                    f"corruption trial {kind!r} was NOT detected by the "
                    f"integrity machinery",
                    trial=kind,
                )
    return report
