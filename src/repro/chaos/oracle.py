"""The stale-target correctness oracle.

The paper's entire safety argument (§3.2–§3.4) is that any GOT write —
lazy resolution, ``dlclose``, ifunc re-selection, a cross-core
invalidation — flushes the ABTB before a stale target can be committed.
The oracle checks that claim independently of the mechanism: it shadows
the ground-truth GOT state (the dynamic linker's live slots) and audits
*every committed skip* against it.

Two regimes:

* ``expect_hazards=False`` (the transparent §3.2 design, ``use_bloom=True``):
  a skip to a target that differs from the slot's current contents is an
  :class:`~repro.errors.OracleViolation` — the hardware model is broken.
* ``expect_hazards=True`` (the §3.4 alternative with the software
  invalidation contract deliberately violated): the same observation is
  the *predicted* hazard, detected and counted in ``hazards_detected``.

Truth bookkeeping is stream-ordered: a fault that rewrites a GOT slot
queues the new value, and the oracle applies it only when the matching
store *retires* on a core (via :class:`~repro.uarch.cpu.CPUHooks`).  That
keeps the oracle exact even when the dual-core system buffers whole event
slices between generation and execution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import OracleViolation
from repro.isa.events import TraceEvent
from repro.linker.dynamic import LinkedProgram
from repro.uarch.cpu import CPUHooks

#: Sentinel truth value for a slot that has been reset (dlclose) — any
#: committed skip against it is stale by definition.
RESET = 0


@dataclass(frozen=True)
class SkipRecord:
    """One stale skip the oracle observed."""

    ordinal: int
    call_pc: int
    trampoline_pc: int
    got_addr: int
    committed: int
    truth: int

    def describe(self) -> str:
        return (
            f"skip #{self.ordinal}: call {self.call_pc:#x} via stub "
            f"{self.trampoline_pc:#x} committed {self.committed:#x} but "
            f"GOT[{self.got_addr:#x}] holds {self.truth:#x}"
        )


@dataclass
class CorrectnessOracle(CPUHooks):
    """Shadows every skip decision against ground-truth GOT state.

    One oracle instance can audit several cores at once — hook it into
    each :class:`~repro.uarch.cpu.CPU` of a
    :class:`~repro.uarch.multicore.DualCoreSystem` and it sees the
    machine-wide store order the coherence protocol provides.
    """

    program: LinkedProgram
    expect_hazards: bool = False
    raise_on_violation: bool = False

    skips_checked: int = 0
    hazards_detected: int = 0
    unknown_slots: int = 0
    trace_divergences: int = 0
    violations: list[SkipRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: dict[int, tuple[str, str]] = {}
        self._known: set[int] = set()
        self._truth: dict[int, int] = {}
        self._pending: dict[int, deque[int]] = {}
        self.rebuild_index()

    # ----------------------------------------------------------- indexing

    def rebuild_index(self) -> None:
        """Re-derive the got_addr → (caller, symbol) map from the program.

        Call after structural changes (dlclose/dlopen) that add or remove
        modules; plain GOT rewrites never move slots.
        """
        for name, image in self.program.modules.items():
            for sym in image.imports():
                self._index[image.got_slot(sym)] = (name, sym)
        self._known = set(self._index)

    def slot_index(self) -> dict[int, tuple[str, str]]:
        """The live got_addr → (caller, symbol) map (do not mutate)."""
        return self._index

    def known_slots(self) -> set[int]:
        """Addresses of every real GOT slot the oracle tracks."""
        return self._known

    def register_slot(self, got_addr: int, target: int) -> None:
        """Declare a synthetic GOT slot (ABTB-thrash faults) and its truth."""
        self._truth[got_addr] = target

    def queue_truth(self, got_addr: int, target: int) -> None:
        """Schedule a truth update, applied when the store to the slot retires."""
        self._pending.setdefault(got_addr, deque()).append(target)

    def _lookup(self, got_addr: int) -> int | None:
        """Current ground-truth contents of a slot (None when untracked)."""
        cached = self._truth.get(got_addr)
        if cached is not None:
            return cached
        pair = self._index.get(got_addr)
        if pair is None:
            return None
        try:
            value = self.program.got_value(*pair)
        except KeyError:
            return None
        truth = value if value is not None else RESET
        self._truth[got_addr] = truth
        return truth

    # -------------------------------------------------------------- hooks

    def on_store(self, addr: int) -> None:
        queue = self._pending.get(addr)
        if queue:
            self._truth[addr] = queue.popleft()
            if not queue:
                del self._pending[addr]
        elif addr in self._truth and addr in self._index:
            # A store we did not schedule (the lazy resolver writing the
            # slot): drop the cached value so the next lookup re-reads the
            # linker's live state.
            del self._truth[addr]

    def on_skip(self, call: TraceEvent, jmp: TraceEvent, target: int) -> None:
        """Audit one committed skip.

        The safety invariant is *equivalence with the trampoline path*:
        the skip must commit exactly the target the trampoline's GOT load
        would have delivered at this point in the stream (``jmp.target``).
        Committing anything else is the stale-target hazard.

        Separately, ``jmp.target`` is cross-checked against the linker's
        live slot contents.  A mismatch there means the *trace* is stale,
        not the hardware: with dual-core slice buffering, a chunk
        generated before a sibling's rewrite legitimately still targets
        the old function.  Those are counted as ``trace_divergences`` —
        diagnostics, bounded by one slice window, never a violation.
        """
        self.skips_checked += 1
        truth = self._lookup(jmp.mem_addr)
        if truth is None:
            self.unknown_slots += 1
        if target != jmp.target:
            record = SkipRecord(
                self.skips_checked, call.pc, jmp.pc, jmp.mem_addr, target, jmp.target
            )
            if self.expect_hazards:
                self.hazards_detected += 1
            else:
                self.violations.append(record)
                if self.raise_on_violation:
                    raise OracleViolation(record.describe())
        elif truth is not None and jmp.target != truth:
            self.trace_divergences += 1

    # ----------------------------------------------------------- verdicts

    @property
    def clean(self) -> bool:
        """True when no stale skip was committed."""
        return not self.violations

    def assert_clean(self) -> None:
        """Raise :class:`OracleViolation` summarising any stale skips."""
        if self.violations:
            head = self.violations[0].describe()
            raise OracleViolation(
                f"{len(self.violations)} stale skip(s) committed; first: {head}"
            )
