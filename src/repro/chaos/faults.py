"""The injectable fault catalogue.

Every fault perturbs a live run the way a hostile-but-real workload would
(arXiv:1902.06570's demand-driven code arrival/removal, arXiv:2501.06716's
observable linking failures):

* :class:`GotRewriteFault` — a GOT slot is rewritten mid-window, as a
  simulated ``dlclose``/re-``dlopen`` relocating the target function;
* :class:`IfuncReselectFault` — the hwcap level changes and every resolved
  ifunc selector re-runs through the linker, rewriting changed slots;
* :class:`ContextSwitchFault` — forced context switches;
* :class:`SpuriousInvalFault` — coherence invalidations for addresses
  nobody wrote (plus some aimed at live GOT slots);
* :class:`BloomSaturationFault` — adversarial bursts that first widen the
  Bloom filter's population with synthetic trampoline pairs, then hammer
  it with distinct store addresses to maximise false-positive flushes;
* :class:`AbtbThrashFault` — more synthetic pairs than the ABTB has
  entries, forcing capacity evictions of the workload's hot mappings;
* :class:`LossyCoherence` — a :class:`~repro.uarch.multicore.DualCoreSystem`
  coherence filter that drops invalidations (by default only provably
  harmless ones; ``unsafe=True`` models broken hardware the oracle must
  catch);
* :func:`corrupted_stream` — trace-corruption trials (truncated,
  duplicated, malformed events) that must raise ``TraceError``.

Faults mutate linker ground truth through public
:class:`~repro.linker.dynamic.LinkedProgram` APIs and queue the matching
truth updates with the oracle, so the oracle stays exact in stream order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.chaos.oracle import CorrectnessOracle
from repro.core.mechanism import TrampolineSkipMechanism
from repro.isa.events import (
    TraceEvent,
    block,
    call_direct,
    coherence_inval,
    context_switch,
    jmp_indirect,
    mark,
    store,
)
from repro.isa.kinds import EventKind
from repro.linker.dynamic import LinkedProgram

#: Where the chaos harness pretends ld.so's rewrite paths live.
LINKER_PC = 0x7FFF_F7DC_0000
#: Base of the synthetic address region used by thrash/saturation faults —
#: far from every real module, GOT and heap so ground truth never collides.
SYNTH_BASE = 0x5A5A_0000_0000
#: Relocation distance for a simulated dlclose/re-dlopen ("the library
#: came back at a new base").
RELOCATION_STRIDE = 0x22_0000


class SyntheticSlots:
    """Allocates unique synthetic call/stub/function/GOT addresses.

    Shared between the injectors of a dual-core run so the two streams
    never fabricate colliding trampolines.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()

    def pair(self, oracle: CorrectnessOracle) -> list[TraceEvent]:
        """One self-consistent synthetic trampoline pair (call + stub)."""
        i = next(self._counter)
        site = SYNTH_BASE + i * 64
        tramp = SYNTH_BASE + 0x10_0000_0000 + i * 16
        func = SYNTH_BASE + 0x20_0000_0000 + i * 64
        got = SYNTH_BASE + 0x30_0000_0000 + i * 8
        oracle.register_slot(got, func)
        return [call_direct(site, tramp), jmp_indirect(tramp, func, got)]


@dataclass
class ChaosContext:
    """Everything a fault may touch when it fires on one core."""

    program: LinkedProgram
    oracle: CorrectnessOracle
    mechanism: TrampolineSkipMechanism | None = None
    synth: SyntheticSlots = field(default_factory=SyntheticSlots)

    def resolved_slots(self) -> list[tuple[str, str, int, int]]:
        """(caller, symbol, got_addr, value) for every resolved real slot."""
        out = []
        for got_addr, (caller, symbol) in self.oracle.slot_index().items():
            try:
                value = self.program.got_value(caller, symbol)
            except KeyError:
                continue
            if value is not None:
                out.append((caller, symbol, got_addr, value))
        return out


class Fault:
    """One injectable fault; subclasses return the events to splice in."""

    name = "fault"

    def fire(self, ctx: ChaosContext, rng: np.random.Generator) -> list[TraceEvent]:
        raise NotImplementedError


@dataclass
class GotRewriteFault(Fault):
    """Rewrite a live GOT slot (simulated ``dlclose`` + re-``dlopen``).

    With ``software_invalidate=True`` the emitted store carries the
    ``"got-store"`` tag, honouring the §3.4 software contract (a modified
    linker issues the explicit ABTB invalidation).  Set it to False to
    model the hostile case the §3.4 hazard analysis predicts: the GOT
    changes and software tells the hardware nothing — with the Bloom
    filter the raw store is still snooped and the mechanism stays safe;
    without it, the oracle must catch the stale skip.
    """

    software_invalidate: bool = True
    stride: int = RELOCATION_STRIDE
    name: str = "got-rewrite"

    def fire(self, ctx: ChaosContext, rng: np.random.Generator) -> list[TraceEvent]:
        slots = ctx.resolved_slots()
        if not slots:
            return []
        # Prefer slots backing live ABTB entries: rewriting a mapping the
        # mechanism is actively using is the interesting case.
        if ctx.mechanism is not None:
            live = ctx.mechanism.abtb.got_addresses()
            hot = [s for s in slots if s[2] in live]
            if hot:
                slots = hot
        caller, symbol, got_addr, value = slots[int(rng.integers(0, len(slots)))]
        new_value = value + self.stride
        ctx.program.rewrite_got(caller, symbol, new_value)
        ctx.oracle.queue_truth(got_addr, new_value)
        rewrite_store = store(LINKER_PC + 0x80, got_addr)
        if self.software_invalidate:
            rewrite_store.tag = "got-store"
        return [block(LINKER_PC, 40, 160), rewrite_store]


@dataclass
class IfuncReselectFault(Fault):
    """Cycle the hwcap level and re-run every resolved ifunc selector."""

    levels: int = 3
    name: str = "ifunc-reselect"

    def fire(self, ctx: ChaosContext, rng: np.random.Generator) -> list[TraceEvent]:
        level = (ctx.program.hwcap_level + 1) % max(self.levels, 1)
        rewrites = ctx.program.reselect_ifuncs(level)
        if not rewrites:
            return []
        events = [block(LINKER_PC + 0x1000, 30 + 8 * len(rewrites), 0x200)]
        for _caller, _symbol, got_addr, new_entry in rewrites:
            ctx.oracle.queue_truth(got_addr, new_entry)
            reselect_store = store(LINKER_PC + 0x1080, got_addr)
            reselect_store.tag = "got-store"
            events.append(reselect_store)
        return events


@dataclass
class ContextSwitchFault(Fault):
    """Force an OS context switch (TLB/BTB/ABTB-without-ASID flush)."""

    name: str = "context-switch"

    def fire(self, ctx: ChaosContext, rng: np.random.Generator) -> list[TraceEvent]:
        return [context_switch()]


@dataclass
class SpuriousInvalFault(Fault):
    """Coherence invalidations that correspond to no local write.

    Half target live GOT slots (forcing a conservative flush), half are
    random addresses that can only flush through Bloom false positives.
    Either way the mechanism must merely lose performance, never safety.
    """

    count: int = 4
    name: str = "spurious-inval"

    def fire(self, ctx: ChaosContext, rng: np.random.Generator) -> list[TraceEvent]:
        known = sorted(ctx.oracle.known_slots())
        events = []
        for _ in range(self.count):
            if known and rng.random() < 0.5:
                addr = known[int(rng.integers(0, len(known)))]
            else:
                addr = int(rng.integers(1 << 20, 1 << 46)) & ~0x7
            events.append(coherence_inval(addr))
        return events


@dataclass
class BloomSaturationFault(Fault):
    """Adversarial store stream maximising false-positive flushes.

    Synthetic trampoline pairs first widen the filter's population (every
    learn adds a GOT address), then a burst of distinct store addresses
    probes it — with a small filter, false positives flush the ABTB even
    though no GOT was touched.
    """

    pairs: int = 16
    probes: int = 64
    name: str = "bloom-saturation"

    def fire(self, ctx: ChaosContext, rng: np.random.Generator) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for _ in range(self.pairs):
            events.extend(ctx.synth.pair(ctx.oracle))
        probe_pc = SYNTH_BASE + 0x40_0000_0000
        for _ in range(self.probes):
            addr = int(rng.integers(1 << 24, 1 << 45)) & ~0x7
            events.append(store(probe_pc, addr))
        return events


@dataclass
class AbtbThrashFault(Fault):
    """More synthetic trampoline pairs than the ABTB holds.

    Forces capacity evictions of the workload's hot mappings; the
    evicted entries' GOT addresses stay in the Bloom filter, so later
    GOT writes still flush conservatively — safety must survive thrash.
    """

    burst: int = 0  # 0 → ABTB capacity + 8
    name: str = "abtb-thrash"

    def fire(self, ctx: ChaosContext, rng: np.random.Generator) -> list[TraceEvent]:
        burst = self.burst
        if burst <= 0:
            burst = (ctx.mechanism.abtb.entries + 8) if ctx.mechanism is not None else 64
        events: list[TraceEvent] = []
        for _ in range(burst):
            events.extend(ctx.synth.pair(ctx.oracle))
        return events


class LossyCoherence:
    """A :class:`DualCoreSystem` coherence filter that drops invalidations.

    By default only *provably harmless* invalidations are dropped: stores
    that are not GOT writes (their addresses are not GOT slots, so losing
    the invalidation can at most suppress a false-positive flush on the
    sibling).  ``unsafe=True`` drops GOT-write invalidations too — the
    broken-hardware scenario the oracle exists to detect.
    """

    def __init__(
        self,
        oracle: CorrectnessOracle,
        drop_prob: float = 0.5,
        unsafe: bool = False,
        seed: int = 0,
    ) -> None:
        self.oracle = oracle
        self.drop_prob = drop_prob
        self.unsafe = unsafe
        self.dropped = 0
        self._rng = np.random.default_rng(seed)

    def __call__(self, src_core: int, ev: TraceEvent) -> bool:
        is_got_write = ev.tag == "got-store" or ev.mem_addr in self.oracle.known_slots()
        if is_got_write and not self.unsafe:
            return True
        if self._rng.random() < self.drop_prob:
            self.dropped += 1
            return False
        return True


#: Corruption trial kinds understood by :func:`corrupted_stream`.
CORRUPTION_KINDS = (
    "bad-kind",
    "negative-size",
    "bad-mark",
    "dup-begin",
    "end-without-begin",
    "truncated-call",
)


def corrupted_stream(kind: str) -> list[TraceEvent]:
    """A small stream carrying one corruption of the given kind.

    Driving it through :func:`repro.trace.validate.validated` must raise
    :class:`~repro.errors.TraceError` — never silently mis-execute.
    """
    benign = [
        mark(("begin", "probe", 1)),
        block(0x40_0000, 8),
        store(0x40_0020, 0x60_0000),
        mark(("end", "probe", 1)),
    ]
    if kind == "bad-kind":
        bad = TraceEvent(99, 0x40_0040, 1, 4)  # type: ignore[arg-type]
        return benign + [bad]
    if kind == "negative-size":
        bad = TraceEvent(EventKind.BLOCK, 0x40_0040, -3, 4)
        return benign + [bad]
    if kind == "bad-mark":
        return benign + [mark(("bork", "probe", 2))]
    if kind == "dup-begin":
        return benign + [mark(("begin", "probe", 2)), mark(("begin", "probe", 2))]
    if kind == "end-without-begin":
        return benign + [mark(("end", "probe", 7))]
    if kind == "truncated-call":
        return benign + [call_direct(0x40_0040, 0x41_0000)]
    raise ValueError(f"unknown corruption kind {kind!r}")


def default_faults(
    software_invalidate: bool = True,
    include_rewrites: bool = True,
) -> list[Fault]:
    """The standard five-plus fault mix used by campaigns."""
    faults: list[Fault] = [
        ContextSwitchFault(),
        SpuriousInvalFault(),
        BloomSaturationFault(),
        AbtbThrashFault(),
    ]
    if include_rewrites:
        faults.insert(0, GotRewriteFault(software_invalidate=software_invalidate))
        faults.insert(1, IfuncReselectFault())
    return faults
