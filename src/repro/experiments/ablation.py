"""Ablations on the mechanism's design choices.

Four studies the paper's design implies but does not quantify:

* **Bloom-filter sizing** — the paper calls the filter "small" without a
  size.  Because *every* retired store probes it, an undersized filter
  false-positives on ordinary application stores and repeatedly flushes
  the ABTB; the sweep exposes the resulting skip-rate cliff.
* **ABTB replacement** — LRU vs FIFO at a capacity-constrained size.
* **Section 3.4 alternative** — no Bloom filter; software explicitly
  invalidates the ABTB on GOT writes.  Same steady-state skip rate, zero
  unsafe skips, no snoop hardware.
* **Context switches / ASID** — frequent switches flush the ABTB like a
  TLB; ASID-style retention recovers the lost skips.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.report import Report, Table
from repro.core.config import MechanismConfig
from repro.isa.arch import Arch
from repro.core.mechanism import TrampolineSkipMechanism
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_workload
from repro.experiments.scale import SMOKE, Scale
from repro.workloads import apache

BLOOM_SIZES = (2048, 8192, 32768, 1 << 17)
ABLATION_ABTB = 96  # capacity-constrained, so replacement policy matters


def _run(scale: Scale, mech_cfg: MechanismConfig, workload_cfg=None):
    cfg = workload_cfg if workload_cfg is not None else apache.config()
    return run_workload(
        cfg,
        TrampolineSkipMechanism(mech_cfg),
        warmup_requests=scale.warmup("apache"),
        measured_requests=scale.measured("apache"),
    )


def bloom_sweep(scale: Scale) -> list[tuple[int, float, int]]:
    """(bloom bits, skip rate, store flushes in window) per size."""
    out = []
    for bits in BLOOM_SIZES:
        result = _run(scale, MechanismConfig(bloom_bits=bits))
        out.append(
            (bits, result.skip_rate, result.mechanism.stats.store_flushes)
        )
    return out


def replacement_study(scale: Scale) -> dict[str, float]:
    """Skip rate for LRU vs FIFO at a constrained ABTB size."""
    return {
        policy: _run(
            scale, MechanismConfig(abtb_entries=ABLATION_ABTB, abtb_policy=policy)
        ).skip_rate
        for policy in ("lru", "fifo")
    }


def explicit_invalidate_study(scale: Scale):
    """Section 3.4: no bloom, software invalidates on GOT writes."""
    with_bloom = _run(scale, MechanismConfig(use_bloom=True))
    without = _run(scale, MechanismConfig(use_bloom=False))
    return with_bloom, without


def asid_study(scale: Scale):
    """Frequent context switches, with and without ASID retention."""
    cfg = replace(apache.config(), context_switch_interval=120_000)
    flushed = _run(scale, MechanismConfig(asid_support=False), cfg)
    retained = _run(scale, MechanismConfig(asid_support=True), cfg)
    return flushed, retained


def arch_study(scale: Scale):
    """x86-64 vs ARM trampolines (paper Figure 2): same mechanism, 3x the
    instruction savings on ARM's three-instruction stubs."""
    out = {}
    for arch in (Arch.X86_64, Arch.ARM):
        cfg = replace(apache.config(), arch=arch)
        base = run_workload(
            replace(apache.config(), arch=arch),
            None,
            warmup_requests=scale.warmup("apache"),
            measured_requests=scale.measured("apache"),
        )
        enhanced = _run(scale, MechanismConfig(), cfg)
        out[arch] = (base, enhanced)
    return out


def prefork_study(scale: Scale, processes: int = 6):
    """Prefork workers timeslicing one core: flush vs ASID retention.

    Prefork siblings share the parent's layout, so ASID-retained ABTB
    entries stay valid across sibling switches and the skip rate holds;
    flushing on every switch forces constant relearning.
    """
    out = {}
    per_worker = max(2, scale.measured("apache") // processes)
    for label, asid in (("flush on switch", False), ("ASID retention", True)):
        from repro.core.mechanism import TrampolineSkipMechanism
        from repro.uarch.cpu import CPU

        wl_module_cfg = apache.config()
        wl = _build_workload(wl_module_cfg)
        mech = TrampolineSkipMechanism(MechanismConfig(asid_support=asid))
        cpu = CPU(mechanism=mech)
        cpu.run(wl.startup_trace())
        cpu.finalize()
        snap = cpu.counters.copy()
        cpu.run(wl.prefork_trace(processes, per_worker))
        cpu.finalize()
        window = cpu.counters.delta(snap)
        skipped = window.trampolines_skipped
        total = skipped + window.trampolines_executed
        out[label] = (skipped / total if total else 0.0, window.context_switches)
    return out


def _build_workload(cfg):
    from repro.workloads.base import Workload

    return Workload(cfg)


def run(scale: Scale = SMOKE) -> Report:
    """Run all four ablations on the Apache workload."""
    report = Report("ablation", "Design-choice ablations (Apache)")

    sweep = bloom_sweep(scale)
    bloom_table = Table(
        "Bloom filter sizing", ["Bits", "Bytes", "Skip rate", "Store flushes (total)"]
    )
    for bits, skip, flushes in sweep:
        bloom_table.add_row(bits, bits // 8, round(skip, 3), flushes)
    report.tables.append(bloom_table)

    policies = replacement_study(scale)
    policy_table = Table(
        f"ABTB replacement at {ABLATION_ABTB} entries", ["Policy", "Skip rate"]
    )
    for policy, skip in policies.items():
        policy_table.add_row(policy, round(skip, 3))
    report.tables.append(policy_table)

    with_bloom, without = explicit_invalidate_study(scale)
    alt_table = Table(
        "Section 3.4 alternative (explicit invalidate)",
        ["Variant", "Skip rate", "Unsafe skips", "Snoop storage bytes"],
    )
    alt_table.add_row(
        "bloom (transparent)",
        round(with_bloom.skip_rate, 3),
        with_bloom.mechanism.stats.unsafe_skips,
        with_bloom.mechanism.bloom.storage_bytes,
    )
    alt_table.add_row(
        "explicit invalidate",
        round(without.skip_rate, 3),
        without.mechanism.stats.unsafe_skips,
        0,
    )
    report.tables.append(alt_table)

    arch_results = arch_study(scale)
    arch_table = Table(
        "Architecture comparison (paper Figure 2)",
        ["Arch", "Trampoline instr PKI", "Skip rate", "Instr saved/skip", "Speedup"],
    )
    arch_speedups = {}
    for arch, (base, enhanced) in arch_results.items():
        saved = base.counters.instructions - enhanced.counters.instructions
        skips = max(enhanced.counters.trampolines_skipped, 1)
        arch_speedups[arch] = base.counters.cycles / enhanced.counters.cycles
        arch_table.add_row(
            arch.value,
            round(base.counters.pki("trampoline_instructions"), 2),
            round(enhanced.skip_rate, 3),
            round(saved / skips, 2),
            round(arch_speedups[arch], 4),
        )
    report.tables.append(arch_table)

    flushed, retained = asid_study(scale)
    prefork = prefork_study(scale)
    prefork_table = Table(
        "Prefork workers timeslicing one core",
        ["Variant", "Skip rate", "Context switches"],
    )
    for label, (skip, switches) in prefork.items():
        prefork_table.add_row(label, round(skip, 3), switches)
    report.tables.append(prefork_table)

    asid_table = Table(
        "Context switches every 120k instructions",
        ["Variant", "Skip rate", "Context flushes"],
    )
    asid_table.add_row(
        "flush on switch", round(flushed.skip_rate, 3), flushed.mechanism.stats.context_flushes
    )
    asid_table.add_row(
        "ASID retention", round(retained.skip_rate, 3), retained.mechanism.stats.context_flushes
    )
    report.tables.append(asid_table)

    best_bloom_skip = sweep[-1][1]
    report.shape_checks = {
        "undersized bloom filters flush spuriously": sweep[0][2] > sweep[-1][2],
        "skip rate improves with bloom size": sweep[0][1] <= best_bloom_skip,
        "LRU at least matches FIFO": policies["lru"] >= policies["fifo"] - 0.01,
        "explicit invalidate matches bloom steady state": (
            abs(without.skip_rate - with_bloom.skip_rate) < 0.05
        ),
        "explicit invalidate never skips unsafely": (
            without.mechanism.stats.unsafe_skips == 0
        ),
        "ASID retention recovers context-switch losses": (
            retained.skip_rate >= flushed.skip_rate
        ),
        "ARM saves 3 instructions per skipped trampoline": (
            arch_results[Arch.ARM][0].counters.instructions
            - arch_results[Arch.ARM][1].counters.instructions
        )
        == 3 * arch_results[Arch.ARM][1].counters.trampolines_skipped,
        "mechanism benefits ARM at least as much as x86": (
            arch_speedups[Arch.ARM] >= arch_speedups[Arch.X86_64] - 0.003
        ),
        "ASID retention preserves prefork skip rate": (
            prefork["ASID retention"][0] >= prefork["flush on switch"][0]
        ),
    }
    report.notes.append(
        "store flushes include one legitimate flush per lazy resolution "
        "(501 for Apache); anything above that is Bloom false positives"
    )
    report.notes.append(
        "prefork: with promote-at-learn, ABTB retention buys little once "
        "the BTB itself is flushed by the switch — relearning costs a "
        "single trampoline execution either way"
    )
    return report


register(Experiment("ablation", "Design ablations", "Bloom/replacement/3.4/ASID studies", run))
