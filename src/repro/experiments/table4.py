"""Table 4 — performance counters (per kilo-instruction), base vs enhanced.

Paper shape: skipping trampolines reduces I-cache misses and branch
mispredictions on every workload, I-TLB misses on most (Memcached's
I-TLB conflict misses disappear entirely), while D-side PKI metrics can
move either way (the instruction count shrinks, so a flat absolute count
rises in PKI terms — the paper's Apache D-TLB row shows exactly this).
"""

from __future__ import annotations

from repro.analysis.report import Report, Table
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_pair
from repro.experiments.scale import SMOKE, Scale
from repro.workloads import ALL_WORKLOADS

#: Paper Table 4 (PKI): workload -> metric -> (base, enhanced).
PAPER_TABLE4 = {
    "apache": {
        "I-$ Misses": (109.31, 104.22),
        "I-TLB Misses": (1.78, 1.18),
        "D-$ Misses": (7.96, 7.56),
        "D-TLB Misses": (4.03, 4.62),
        "Branch Mispredictions": (13.46, 12.32),
    },
    "firefox": {
        "I-$ Misses": (10.70, 10.38),
        "I-TLB Misses": (0.87, 0.79),
        "D-$ Misses": (2.66, 2.67),
        "D-TLB Misses": (1.54, 1.75),
        "Branch Mispredictions": (4.84, 4.77),
    },
    "memcached": {
        "I-$ Misses": (51.99, 51.42),
        "I-TLB Misses": (0.03, 0.0),
        "D-$ Misses": (12.25, 12.16),
        "D-TLB Misses": (4.74, 4.73),
        "Branch Mispredictions": (5.48, 5.30),
    },
    "mysql": {
        "I-$ Misses": (25.21, 24.93),
        "I-TLB Misses": (2.41, 2.36),
        "D-$ Misses": (8.48, 8.46),
        "D-TLB Misses": (2.86, 2.77),
        "Branch Mispredictions": (14.44, 14.40),
    },
}


#: Absolute counters shown alongside the PKI rows: because the enhanced
#: system executes fewer instructions, a flat absolute count *rises* in
#: PKI terms — the effect behind the paper's mixed D-side rows.
ABSOLUTE_COUNTERS = ("instructions", "l1i_misses", "l1d_misses", "branch_mispredictions")


def measure(scale: Scale, workloads=None):
    """(PKI rows, absolute rows) per workload, base vs enhanced."""
    pki: dict[str, dict[str, tuple[float, float]]] = {}
    absolute: dict[str, dict[str, tuple[int, int]]] = {}
    for name in workloads or ALL_WORKLOADS:
        base, enhanced = run_pair(name, scale)
        base_row = base.counters.table4_row()
        enh_row = enhanced.counters.table4_row()
        pki[name] = {metric: (base_row[metric], enh_row[metric]) for metric in base_row}
        absolute[name] = {
            field: (getattr(base.counters, field), getattr(enhanced.counters, field))
            for field in ABSOLUTE_COUNTERS
        }
    return pki, absolute


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Table 4."""
    measured, absolute = measure(scale)
    report = Report("table4", "Performance counters PKI, base vs enhanced")
    table = Table(
        "Table 4: Performance counters (per kilo instruction)",
        ["Workload", "Counter", "Paper base", "Paper enh", "Meas base", "Meas enh"],
    )
    for name in sorted(measured):
        for metric, (b, e) in measured[name].items():
            pb, pe = PAPER_TABLE4[name][metric]
            table.add_row(name, metric, pb, pe, round(b, 3), round(e, 3))
    report.tables.append(table)

    abs_table = Table(
        "Absolute counts (denominator context for the PKI rows)",
        ["Workload", "Counter", "Base", "Enhanced"],
    )
    for name in sorted(absolute):
        for field, (b, e) in absolute[name].items():
            abs_table.add_row(name, field, b, e)
    report.tables.append(abs_table)

    checks: dict[str, bool] = {}
    for name, rows in measured.items():
        checks[f"{name}: I-$ misses drop"] = rows["I-$ Misses"][1] <= rows["I-$ Misses"][0]
        checks[f"{name}: branch mispredictions do not increase materially"] = (
            rows["Branch Mispredictions"][1]
            <= rows["Branch Mispredictions"][0] * 1.02 + 0.02
        )
    checks["memcached: I-TLB misses eliminated"] = (
        measured["memcached"]["I-TLB Misses"][1] <= measured["memcached"]["I-TLB Misses"][0]
    )
    checks["apache shows the largest I-$ benefit"] = max(
        measured, key=lambda w: measured[w]["I-$ Misses"][0] - measured[w]["I-$ Misses"][1]
    ) == "apache"
    report.shape_checks = checks
    report.notes.append(
        "absolute PKI levels differ from the Xeon E5450 (different cache "
        "contents, synthetic footprints); deltas and orderings are the "
        "reproduced quantity"
    )
    return report


register(Experiment("table4", "Table 4", "Microarchitectural counters base vs enhanced", run))
