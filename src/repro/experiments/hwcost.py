"""Section 5.3 — hardware cost of the ABTB.

Every ABTB entry holds two 48-bit virtual addresses: 12 bytes.  The paper
quotes 16 entries = 192 bytes and "a 256-entry ABTB totaling less than
1.5 KB"; at 12 B/entry 256 entries are exactly 3 KB, so the 1.5 KB figure
evidently assumes the offset encoding its own footnote mentions
("we do not consider additional savings made possible by offset
encoding") — i.e. ~6 B/entry.  We report both.
"""

from __future__ import annotations

from repro.analysis.report import Report, Table
from repro.core.abtb import ABTB, ABTB_ENTRY_BYTES
from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.experiments.registry import Experiment, register
from repro.experiments.scale import SMOKE, Scale

SIZES = (16, 32, 64, 128, 256)
#: Bytes per entry when trampoline→function deltas use offset encoding.
OFFSET_ENCODED_ENTRY_BYTES = 6


def storage_table() -> list[tuple[int, int, int]]:
    """(entries, full bytes, offset-encoded bytes) per swept size."""
    return [
        (n, n * ABTB_ENTRY_BYTES, n * OFFSET_ENCODED_ENTRY_BYTES) for n in SIZES
    ]


def mechanism_storage_bytes(
    abtb_entries: int,
    bloom_bits: int = MechanismConfig.bloom_bits,
    use_bloom: bool = True,
) -> int:
    """Modeled hardware cost of one mechanism configuration, in bytes.

    The Section 5.3 accounting extended to the whole mechanism: the ABTB
    at 12 B/entry plus the Bloom filter's bit array (its hash count is
    logic, not storage).  This is the cost axis the sweep engine's
    Pareto frontier uses — associativity changes conflict behaviour, not
    storage, so ``abtb_ways`` does not appear.
    """
    cost = abtb_entries * ABTB_ENTRY_BYTES
    if use_bloom:
        cost += bloom_bits // 8
    return cost


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce the Section 5.3 storage accounting."""
    report = Report("hwcost", "ABTB hardware storage cost")
    table = Table(
        "Section 5.3: ABTB storage",
        ["Entries", "Bytes (12 B/entry)", "Bytes (offset-encoded)", "ABTB object reports"],
    )
    for entries, full, encoded in storage_table():
        table.add_row(entries, full, encoded, ABTB(entries).storage_bytes)
    report.tables.append(table)

    mech = TrampolineSkipMechanism(MechanismConfig(abtb_entries=256))
    total = mech.storage_bytes
    report.shape_checks = {
        "16 entries cost 192 bytes": 16 * ABTB_ENTRY_BYTES == 192,
        "256 entries ~1.5KB under offset encoding": 256 * OFFSET_ENCODED_ENTRY_BYTES == 1536,
        "mechanism reports ABTB + bloom storage": total
        == 256 * ABTB_ENTRY_BYTES + mech.bloom.storage_bytes,
    }
    report.notes.append(
        "the paper's '1.5KB at 256 entries' conflicts with its own 12 B/entry "
        "figure (3 KB); its offset-encoding footnote reconciles them"
    )
    return report


register(Experiment("hwcost", "Section 5.3", "ABTB storage cost", run))
