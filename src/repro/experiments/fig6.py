"""Figure 6 — Apache/SPECweb response-time CDFs per request class.

Paper shape: for each of the six request classes the enhanced (trampoline-
skipping) CDF sits at or left of the base CDF; average response times
improve by up to 4 % while tail latencies are unaffected.

Absolute times: the model's requests are ~100× smaller than SPECweb's
(tens of microseconds instead of milliseconds) so traces stay tractable;
relative improvements are the reproduced quantity.
"""

from __future__ import annotations

from repro.analysis.cdf import CDF
from repro.analysis.report import Report, Series, Table
from repro.analysis.stats import improvement_percent, mean
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_pair
from repro.experiments.scale import SMOKE, Scale

#: Lognormal sigma for service-time dispersion (queueing, interrupts).
NOISE_SIGMA = 0.08


def measure(scale: Scale):
    """Per-class latency samples for base and enhanced Apache."""
    base, enhanced = run_pair("apache", scale)
    classes = base.class_names()
    out = {}
    for name in classes:
        out[name] = (
            base.latencies_us(name, noise_sigma=NOISE_SIGMA),
            enhanced.latencies_us(name, noise_sigma=NOISE_SIGMA),
        )
    return out


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Figure 6."""
    samples = measure(scale)
    report = Report("fig6", "Apache response-time CDFs, base vs enhanced")
    table = Table(
        "Figure 6 summary (response time, microseconds)",
        ["Request class", "Base mean", "Enh mean", "Improvement %", "Base p95", "Enh p95"],
    )
    checks: dict[str, bool] = {}
    improvements = []
    for name, (base_us, enh_us) in samples.items():
        base_cdf, enh_cdf = CDF.of(base_us), CDF.of(enh_us)
        imp = improvement_percent(mean(base_us), mean(enh_us))
        improvements.append(imp)
        table.add_row(
            name,
            round(mean(base_us), 2),
            round(mean(enh_us), 2),
            round(imp, 2),
            round(base_cdf.percentile(95), 2),
            round(enh_cdf.percentile(95), 2),
        )
        pts_b = base_cdf.sampled(24)
        pts_e = enh_cdf.sampled(24)
        report.series.append(Series(f"{name}/base", [p[0] for p in pts_b], [p[1] for p in pts_b]))
        report.series.append(Series(f"{name}/enhanced", [p[0] for p in pts_e], [p[1] for p in pts_e]))
        checks[f"{name}: enhanced mean <= base mean"] = mean(enh_us) <= mean(base_us)
        # Tails unaffected: p99 within the noise envelope either way.
        checks[f"{name}: tail within 5% of base"] = (
            enh_cdf.percentile(99) <= base_cdf.percentile(99) * 1.05
        )
    report.tables.append(table)
    checks["best-class improvement in (0, 6%] band (paper: up to 4%)"] = (
        0.0 < max(improvements) <= 6.0
    )
    report.shape_checks = checks
    report.notes.append(
        "request magnitudes are ~100x smaller than SPECweb's so traces stay "
        "tractable; improvements are relative"
    )
    return report


register(Experiment("fig6", "Figure 6", "Apache response-time CDFs", run))
