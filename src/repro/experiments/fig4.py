"""Figure 4 — frequency of trampolines (log-log rank/frequency curves).

Paper shape: Apache and Memcached show steep cutoffs — a specific set of
library calls is made for every request — while Firefox's curve is much
shallower, spreading calls over thousands of trampolines.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Report, Series, Table
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_workload
from repro.experiments.scale import SMOKE, Scale
from repro.workloads import ALL_WORKLOADS

#: The paper plots Apache, Firefox and Memcached.
PLOTTED = ("apache", "firefox", "memcached")


def frequency_curves(scale: Scale) -> dict[str, list[int]]:
    """Descending per-trampoline execution counts per workload."""
    out: dict[str, list[int]] = {}
    for name in PLOTTED:
        module = ALL_WORKLOADS[name]
        result = run_workload(
            module.config(),
            mechanism=None,
            warmup_requests=scale.warmup(name),
            measured_requests=scale.measured(name),
        )
        out[name] = result.workload.frequency_curve()
    return out


def tail_steepness(curve: list[int]) -> float:
    """Log-log slope magnitude between the head and the 90th-percentile rank.

    Steeper (more negative slope, larger magnitude) means execution
    concentrates on a core set — the paper's Apache/Memcached cutoff.
    """
    if len(curve) < 4:
        return 0.0
    head = float(np.mean(curve[: max(1, len(curve) // 20)]))
    tail_rank = max(2, int(len(curve) * 0.9))
    tail = max(float(curve[tail_rank - 1]), 1.0)
    return float(np.log10(head / tail) / np.log10(tail_rank))


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Figure 4."""
    curves = frequency_curves(scale)
    report = Report("fig4", "Trampoline rank/frequency curves")
    steep: dict[str, float] = {}
    summary = Table(
        "Figure 4 summary", ["Workload", "Distinct", "Top-10 call share", "Steepness"]
    )
    for name, curve in curves.items():
        total = sum(curve) or 1
        top10 = sum(curve[:10]) / total
        steep[name] = tail_steepness(curve)
        summary.add_row(name, len(curve), round(top10, 3), round(steep[name], 3))
        report.series.append(
            Series(name, [float(i + 1) for i in range(len(curve))], [float(c) for c in curve])
        )
    report.tables.append(summary)
    mem_curve = curves["memcached"]
    mem_top10 = sum(mem_curve[:10]) / (sum(mem_curve) or 1)

    def head_share(curve: list[int]) -> float:
        """Call share of the top decile of touched trampolines."""
        k = max(1, len(curve) // 10)
        return sum(curve[:k]) / (sum(curve) or 1)

    report.shape_checks = {
        "memcached majority of calls in <10 functions": mem_top10 > 0.5,
        # The log-log slope estimator needs more in-window distinct pairs
        # than short runs give firefox, so the scale-robust concentration
        # signals carry the shape assertions; the slopes are reported above.
        "memcached curve steepest": steep["memcached"]
        > max(steep["apache"], steep["firefox"]),
        # Memcached's distinct set is too small (≈26) for a stable decile,
        # so the concentration comparison is apache vs firefox only.
        "firefox head-decile share below apache's": head_share(curves["firefox"])
        < head_share(curves["apache"]),
    }
    return report


register(Experiment("fig4", "Figure 4", "Frequency of trampolines", run))
