"""Shared measurement harness.

Mirrors the paper's methodology: start the program (resolving all GOT
entries), warm the server, then measure a steady-state window with
performance counters and per-request timestamps.  Base and enhanced runs
are built from identical configurations, so they consume *identical*
instruction traces — the measured delta is purely the microarchitectural
effect of the mechanism, exactly as in the paper's patched-vs-unpatched
comparison.
"""

from __future__ import annotations

import json
import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import ConfigError, ExperimentError
from repro.trace.engine import LinkMode
from repro.uarch.counters import PerfCounters
from repro.uarch.cpu import CPU, CPUConfig
from repro.uarch.timing import TimingModel
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload, WorkloadConfig


@dataclass(frozen=True)
class RequestSample:
    """One request observed in the measurement window."""

    class_name: str
    request_id: int
    instructions: int
    cycles: float


@dataclass
class RunResult:
    """Everything measured in one steady-state window."""

    label: str
    counters: PerfCounters
    requests: list[RequestSample]
    workload: Workload
    cpu: CPU
    mechanism: TrampolineSkipMechanism | None = None
    #: Begin/end marks that had no partner in the window (0 for a healthy
    #: trace; counted, not silently dropped).
    unmatched_marks: int = 0
    #: Request samples discarded for non-finite or negative cycle deltas.
    dropped_samples: int = 0

    def requests_of(self, class_name: str) -> list[RequestSample]:
        """Samples of one request class."""
        return [r for r in self.requests if r.class_name == class_name]

    def class_names(self) -> list[str]:
        """Distinct request classes observed, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.requests:
            seen.setdefault(r.class_name, None)
        return list(seen)

    def latencies_us(
        self,
        class_name: str | None = None,
        timing: TimingModel | None = None,
        noise_sigma: float = 0.0,
        noise_seed: int = 7,
    ) -> list[float]:
        """Per-request response times in microseconds.

        ``noise_sigma`` adds lognormal service-time dispersion (queueing,
        interrupts) keyed by *request id*, so base and enhanced runs get
        identical noise draws (common random numbers) and their latency
        difference stays purely microarchitectural.
        """
        timing = timing if timing is not None else TimingModel()
        samples = self.requests if class_name is None else self.requests_of(class_name)
        out = []
        for r in samples:
            # A sample with a non-finite or negative cycle delta (clock
            # skew, a corrupted mark) would poison every percentile
            # downstream; exclude it rather than propagate it.
            if not math.isfinite(r.cycles) or r.cycles < 0:
                continue
            us = timing.cycles_to_microseconds(r.cycles)
            if noise_sigma > 0:
                rng = np.random.default_rng(np.random.SeedSequence([noise_seed, r.request_id]))
                us *= float(np.exp(rng.normal(0.0, noise_sigma)))
            out.append(us)
        return out

    @property
    def skip_rate(self) -> float:
        """Fraction of trampoline executions avoided in the window."""
        total = self.counters.trampolines_skipped + self.counters.trampolines_executed
        return self.counters.trampolines_skipped / total if total else 0.0


def run_workload(
    config: WorkloadConfig,
    mechanism: TrampolineSkipMechanism | None = None,
    warmup_requests: int = 10,
    measured_requests: int = 50,
    cpu_config: CPUConfig | None = None,
    mode: LinkMode = LinkMode.DYNAMIC,
    label: str | None = None,
    strict_marks: bool = False,
    obs=None,
    obs_label: str | None = None,
) -> RunResult:
    """Run startup + warmup, then measure a steady-state window.

    ``strict_marks=True`` turns unmatched begin/end marks in the window
    into an :class:`ExperimentError`; otherwise they are counted on the
    result (``unmatched_marks``) and the affected requests excluded.

    ``obs`` is an optional :class:`repro.obs.Observability` session: the
    profiler hooks onto the CPU, the counter sampler rides every phase of
    the run (startup included — that is where the ABTB warm-up transient
    lives), and request windows become trace spans.
    """
    label = label or ("enhanced" if mechanism else "base")
    obs_label = obs_label or label
    workload = Workload(config, mode)
    hooks = obs.hooks() if obs is not None else None
    cpu = CPU(cpu_config, mechanism, hooks=hooks)
    if obs is not None:
        obs.attach_workload(workload)
        cpu.run(obs.instrument(workload.startup_trace(), cpu, obs_label))
    else:
        cpu.run(workload.startup_trace())
    workload.reset_usage_stats()  # Table 3 / Fig 4 cover organic execution
    if warmup_requests:
        stream = workload.trace(warmup_requests, include_marks=False)
        if obs is not None:
            stream = obs.instrument(stream, cpu, obs_label)
        cpu.run(stream)
    cpu.finalize()
    snapshot = cpu.counters.copy()
    marks_before = len(cpu.marks)

    stream = workload.trace(measured_requests, start_id=warmup_requests)
    if obs is not None:
        stream = obs.instrument(stream, cpu, obs_label)
    cpu.run(stream)
    cpu.finalize()
    if obs is not None:
        obs.finish_run(cpu, obs_label, marks_from=marks_before)
    window = cpu.counters.delta(snapshot)
    requests, unmatched, dropped = _pair_marks(cpu, marks_before, strict=strict_marks)
    return RunResult(
        label or ("enhanced" if mechanism else "base"),
        window,
        requests,
        workload,
        cpu,
        mechanism,
        unmatched_marks=unmatched,
        dropped_samples=dropped,
    )


def run_pair(
    workload_name: str,
    scale,
    abtb_entries: int = 256,
    cpu_config: CPUConfig | None = None,
    mechanism_config: MechanismConfig | None = None,
    seed: int | None = None,
    obs=None,
) -> tuple[RunResult, RunResult]:
    """Base vs enhanced over identical traces of a named workload."""
    try:
        module = ALL_WORKLOADS[workload_name]
    except KeyError:
        raise ConfigError(f"unknown workload {workload_name!r}") from None
    warmup = scale.warmup(workload_name)
    measured = scale.measured(workload_name)
    if warmup < 0:
        raise ConfigError(f"scale yields negative warmup ({warmup}) for {workload_name}")
    if measured < 1:
        raise ConfigError(
            f"scale yields an empty measurement window ({measured}) for {workload_name}"
        )
    results = []
    for label in ("base", "enhanced"):
        cfg = module.config() if seed is None else module.config(seed=seed)
        mech = None
        if label == "enhanced":
            mcfg = mechanism_config or MechanismConfig(abtb_entries=abtb_entries)
            mech = TrampolineSkipMechanism(mcfg)
        obs_label = f"{workload_name}/abtb={abtb_entries}/{label}" if obs is not None else None
        results.append(
            run_workload(
                cfg, mech, warmup, measured, cpu_config,
                label=label, obs=obs, obs_label=obs_label,
            )
        )
    base, enhanced = results
    if base.counters.instructions == 0:
        raise ExperimentError("empty measurement window")
    return base, enhanced


def _pair_marks(
    cpu: CPU, marks_from: int, strict: bool = False
) -> tuple[list[RequestSample], int, int]:
    """Convert begin/end marks into per-request samples.

    Returns ``(samples, unmatched, dropped)``: *unmatched* counts end
    marks with no open begin plus begins never closed — previously these
    vanished silently, biasing tail percentiles toward whatever happened
    to pair up.  ``strict=True`` raises :class:`ExperimentError` on the
    first unmatched mark instead.  *dropped* counts samples excluded for
    non-finite or negative deltas.
    """
    out: list[RequestSample] = []
    open_marks: dict[int, tuple[str, int, float]] = {}
    unmatched = 0
    dropped = 0
    for mark in cpu.marks[marks_from:]:
        tag = mark.tag
        if not (isinstance(tag, tuple) and len(tag) == 3):
            continue
        phase, class_name, request_id = tag
        if phase == "begin":
            if request_id in open_marks:
                if strict:
                    raise ExperimentError(
                        f"duplicated begin mark for request {request_id}"
                    )
                unmatched += 1
            open_marks[request_id] = (class_name, mark.instructions, mark.cycles)
        elif phase == "end":
            if request_id not in open_marks:
                if strict:
                    raise ExperimentError(
                        f"end mark without begin for request {request_id}"
                    )
                unmatched += 1
                continue
            class_name, instr0, cyc0 = open_marks.pop(request_id)
            d_instr = mark.instructions - instr0
            d_cycles = mark.cycles - cyc0
            if d_instr < 0 or not math.isfinite(d_cycles) or d_cycles < 0:
                if strict:
                    raise ExperimentError(
                        f"request {request_id}: non-monotonic counters "
                        f"(d_instr={d_instr}, d_cycles={d_cycles})"
                    )
                dropped += 1
                continue
            out.append(RequestSample(class_name, request_id, d_instr, d_cycles))
    if open_marks:
        if strict:
            raise ExperimentError(
                f"{len(open_marks)} request(s) never ended: "
                f"{sorted(open_marks)[:5]}"
            )
        unmatched += len(open_marks)
    return out, unmatched, dropped


# --------------------------------------------------------------- campaigns
#
# A campaign sweeps (workload × ABTB size) pairs.  Long sweeps die in
# practice for boring reasons — one hung run, one transient failure — so
# the campaign runner adds a per-run timeout, bounded retry with
# exponential backoff for transient ``ExperimentError``s, a JSON
# checkpoint (written atomically after every completed pair; resume skips
# completed work), and graceful degradation: a pair that keeps failing is
# recorded and the sweep moves on.

CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs for one campaign run."""

    timeout_s: float | None = None  # None → no per-run timeout
    max_retries: int = 2  # retries after the first attempt
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return self.backoff_base_s * (self.backoff_factor ** (attempt - 1))


@dataclass
class CampaignResult:
    """Outcome of a (possibly resumed, possibly degraded) campaign."""

    completed: dict[str, dict] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    resumed: int = 0  # pairs skipped because the checkpoint had them

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [
            f"campaign: {len(self.completed)} pair(s) done "
            f"({self.resumed} from checkpoint), {len(self.failed)} failed"
        ]
        for key, summary in sorted(self.completed.items()):
            speedup = summary.get("speedup")
            text = f"{speedup:.4f}x" if isinstance(speedup, float) else "?"
            lines.append(f"  {key:<42} speedup {text}")
        for key, reason in sorted(self.failed.items()):
            lines.append(f"  {key:<42} FAILED: {reason}")
        return "\n".join(lines)


def pair_key(workload: str, abtb_entries: int, scale_name: str) -> str:
    """Stable checkpoint key for one (workload, config) pair."""
    return f"{workload}::abtb={abtb_entries}::scale={scale_name}"


def summarize_pair(base: RunResult, enhanced: RunResult) -> dict:
    """JSON-serialisable summary of one base/enhanced pair."""
    return {
        "instructions": int(base.counters.instructions),
        "base_cycles": float(base.counters.cycles),
        "enhanced_cycles": float(enhanced.counters.cycles),
        "speedup": (
            float(base.counters.cycles / enhanced.counters.cycles)
            if enhanced.counters.cycles
            else 1.0
        ),
        "skip_rate": float(enhanced.skip_rate),
        "unmatched_marks": base.unmatched_marks + enhanced.unmatched_marks,
    }


def _load_checkpoint(path: Path) -> dict[str, dict]:
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != CHECKPOINT_VERSION:
        raise ExperimentError(
            f"checkpoint {path} has unsupported format "
            f"(expected version {CHECKPOINT_VERSION}); delete it to restart"
        )
    completed = payload.get("completed", {})
    if not isinstance(completed, dict):
        raise ExperimentError(f"checkpoint {path}: 'completed' is not an object")
    return completed


def _save_checkpoint(path: Path, completed: dict[str, dict]) -> None:
    """Atomic write: a crash mid-save never corrupts the checkpoint."""
    payload = {"version": CHECKPOINT_VERSION, "completed": completed}
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)


def _attempt_with_timeout(fn: Callable[[], object], timeout_s: float | None):
    """Run ``fn``, raising ExperimentError on timeout.

    Python cannot kill a running thread, so a timed-out attempt's thread
    is abandoned (daemonised via ``shutdown(wait=False)``) — acceptable
    for a simulator run, and the reason timeouts should be generous.
    """
    if timeout_s is None:
        return fn()
    executor = ThreadPoolExecutor(max_workers=1)
    try:
        future = executor.submit(fn)
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            future.cancel()
            raise ExperimentError(f"run exceeded timeout of {timeout_s:.1f}s") from None
    finally:
        executor.shutdown(wait=False)


def run_campaign(
    workloads: Sequence[str],
    scale,
    abtb_sizes: Sequence[int] = (256,),
    checkpoint_path: str | Path | None = None,
    policy: RetryPolicy = RetryPolicy(),
    run_fn: Callable[[str, object, int], tuple[RunResult, RunResult]] | None = None,
    sleep_fn: Callable[[float], None] = time.sleep,
    obs=None,
) -> CampaignResult:
    """Sweep (workload × ABTB size) with timeout, retry and checkpointing.

    Transient failures (:class:`ExperimentError`, including timeouts) are
    retried up to ``policy.max_retries`` times with exponential backoff;
    anything else — a :class:`ConfigError`, a crash in the model — fails
    the pair immediately.  Either way the campaign continues and reports
    a partial result.  ``run_fn`` and ``sleep_fn`` exist for tests: the
    default ``run_fn`` is :func:`run_pair`.

    With an ``obs`` session, each pair attempt runs under a host-clock
    trace span and the sweep's progress lands in counters
    (``campaign.pairs_completed`` / ``campaign.pairs_failed``) plus a
    per-pair speedup series — deep CPU-level sampling is wired through
    :func:`run_pair` when ``run_fn`` is the default.
    """
    if run_fn is None:
        run_fn = lambda w, s, n: run_pair(w, s, abtb_entries=n, obs=obs)  # noqa: E731
    path = Path(checkpoint_path) if checkpoint_path is not None else None
    completed = _load_checkpoint(path) if path is not None else {}
    result = CampaignResult(completed=dict(completed))

    for workload in workloads:
        for abtb in abtb_sizes:
            key = pair_key(workload, abtb, getattr(scale, "name", str(scale)))
            if key in completed:
                result.resumed += 1
                continue
            attempt = 0
            while True:
                attempt += 1
                result.attempts[key] = attempt
                try:
                    if obs is not None and obs.tracer is not None:
                        with obs.tracer.span(
                            f"pair {key}", category="campaign", attempt=attempt
                        ):
                            pair = _attempt_with_timeout(
                                lambda: run_fn(workload, scale, abtb), policy.timeout_s
                            )
                    else:
                        pair = _attempt_with_timeout(
                            lambda: run_fn(workload, scale, abtb), policy.timeout_s
                        )
                except ExperimentError as exc:
                    if attempt > policy.max_retries:
                        result.failed[key] = str(exc)
                        if obs is not None and obs.metrics is not None:
                            obs.metrics.counter("campaign.pairs_failed").inc()
                        break
                    if obs is not None and obs.metrics is not None:
                        obs.metrics.counter("campaign.retries").inc()
                    sleep_fn(policy.backoff(attempt))
                    continue
                except Exception as exc:  # non-transient: fail fast, move on
                    result.failed[key] = f"{type(exc).__name__}: {exc}"
                    if obs is not None and obs.metrics is not None:
                        obs.metrics.counter("campaign.pairs_failed").inc()
                    break
                base, enhanced = pair
                summary = summarize_pair(base, enhanced)
                result.completed[key] = summary
                if obs is not None and obs.metrics is not None:
                    obs.metrics.counter("campaign.pairs_completed").inc()
                    obs.metrics.series("campaign.speedup").append(
                        float(len(result.completed)), summary["speedup"]
                    )
                if path is not None:
                    _save_checkpoint(path, result.completed)
                break
    return result
