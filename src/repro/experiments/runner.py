"""Shared measurement harness.

Mirrors the paper's methodology: start the program (resolving all GOT
entries), warm the server, then measure a steady-state window with
performance counters and per-request timestamps.  Base and enhanced runs
are built from identical configurations, so they consume *identical*
instruction traces — the measured delta is purely the microarchitectural
effect of the mechanism, exactly as in the paper's patched-vs-unpatched
comparison.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import math
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import CheckpointCorruptionError, ConfigError, ExperimentError
from repro.resilience.incidents import IncidentKind, IncidentRecorder
from repro.resilience.integrity import read_artifact, write_artifact
from repro.resilience.supervisor import CampaignSupervisor, FaultPlan, SupervisorPolicy
from repro.resilience.watchdog import DivergenceWatchdog, WatchdogPolicy
from repro.trace.engine import LinkMode, TraceCursor
from repro.trace.store import TraceStore, apply_stats, generate_bundle, trace_key
from repro.uarch.backend import BatchedBackend, make_runner
from repro.uarch.counters import PerfCounters
from repro.uarch.cpu import CPU, CPUConfig
from repro.uarch.machine import (
    MACHINE_STATE_VERSION,
    CheckpointStore,
    MachineState,
    machine_key,
)
from repro.uarch.timing import TimingModel
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload, WorkloadConfig


@dataclass(frozen=True)
class RequestSample:
    """One request observed in the measurement window."""

    class_name: str
    request_id: int
    instructions: int
    cycles: float


@dataclass
class RunResult:
    """Everything measured in one steady-state window."""

    label: str
    counters: PerfCounters
    requests: list[RequestSample]
    workload: Workload
    cpu: CPU
    mechanism: TrampolineSkipMechanism | None = None
    #: Begin/end marks that had no partner in the window (0 for a healthy
    #: trace; counted, not silently dropped).
    unmatched_marks: int = 0
    #: Request samples discarded for non-finite or negative cycle deltas.
    dropped_samples: int = 0
    #: Engine that actually produced the window ("reference" | "batched").
    #: Differs from the requested backend when the divergence watchdog
    #: fell back mid-run.
    backend_used: str = "reference"
    #: True when the divergence watchdog caught the fast backend drifting
    #: from the reference interpreter; the window then comes from the
    #: reference shadow machine.
    diverged: bool = False

    def requests_of(self, class_name: str) -> list[RequestSample]:
        """Samples of one request class."""
        return [r for r in self.requests if r.class_name == class_name]

    def class_names(self) -> list[str]:
        """Distinct request classes observed, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.requests:
            seen.setdefault(r.class_name, None)
        return list(seen)

    def latencies_us(
        self,
        class_name: str | None = None,
        timing: TimingModel | None = None,
        noise_sigma: float = 0.0,
        noise_seed: int = 7,
    ) -> list[float]:
        """Per-request response times in microseconds.

        ``noise_sigma`` adds lognormal service-time dispersion (queueing,
        interrupts) keyed by *request id*, so base and enhanced runs get
        identical noise draws (common random numbers) and their latency
        difference stays purely microarchitectural.
        """
        timing = timing if timing is not None else TimingModel()
        samples = self.requests if class_name is None else self.requests_of(class_name)
        out = []
        for r in samples:
            # A sample with a non-finite or negative cycle delta (clock
            # skew, a corrupted mark) would poison every percentile
            # downstream; exclude it rather than propagate it.
            if not math.isfinite(r.cycles) or r.cycles < 0:
                continue
            us = timing.cycles_to_microseconds(r.cycles)
            if noise_sigma > 0:
                rng = np.random.default_rng(np.random.SeedSequence([noise_seed, r.request_id]))
                us *= float(np.exp(rng.normal(0.0, noise_sigma)))
            out.append(us)
        return out

    @property
    def skip_rate(self) -> float:
        """Fraction of trampoline executions avoided in the window."""
        total = self.counters.trampolines_skipped + self.counters.trampolines_executed
        return self.counters.trampolines_skipped / total if total else 0.0


def warmup_machine_key(
    config: WorkloadConfig,
    mode: LinkMode,
    cpu_config: CPUConfig,
    mechanism_config: MechanismConfig | None,
    warmup_requests: int,
) -> str:
    """Checkpoint-store key for one warmed-up machine configuration.

    Covers everything that determines post-warm-up state: the workload
    recipe (seed included), link mode, full CPU geometry, mechanism
    configuration (None for a base machine) and warm-up length.  Machines
    that differ in any of these can never share a checkpoint.
    """
    return machine_key(
        kind="warmup",
        version=MACHINE_STATE_VERSION,
        workload=asdict(config),
        mode=mode.value,
        cpu=cpu_config.as_dict(),
        mechanism=asdict(mechanism_config) if mechanism_config is not None else None,
        warmup_requests=warmup_requests,
    )


#: How many trace events a progress callback batches before firing —
#: large enough that the counting wrapper is noise, small enough that a
#: heartbeat always has fresh numbers.
PROGRESS_EVERY = 2048


def _counted_stream(events, progress, every: int = PROGRESS_EVERY):
    """Wrap an event stream so ``progress(delta)`` fires every ``every``
    retired events (plus once at stream end).  Only exists when a caller
    asked for progress — the disabled path runs the unwrapped stream."""
    pending = 0
    for ev in events:
        pending += 1
        if pending >= every:
            progress(pending)
            pending = 0
        yield ev
    if pending:
        progress(pending)


def run_workload(
    config: WorkloadConfig,
    mechanism: TrampolineSkipMechanism | None = None,
    warmup_requests: int = 10,
    measured_requests: int = 50,
    cpu_config: CPUConfig | None = None,
    mode: LinkMode = LinkMode.DYNAMIC,
    label: str | None = None,
    strict_marks: bool = False,
    obs=None,
    obs_label: str | None = None,
    machine_cache: CheckpointStore | None = None,
    trace_cache: TraceStore | None = None,
    backend: str = "reference",
    recorder: IncidentRecorder | None = None,
    watchdog: WatchdogPolicy | None = None,
    progress=None,
) -> RunResult:
    """Run startup + warmup, then measure a steady-state window.

    ``strict_marks=True`` turns unmatched begin/end marks in the window
    into an :class:`ExperimentError`; otherwise they are counted on the
    result (``unmatched_marks``) and the affected requests excluded.

    ``obs`` is an optional :class:`repro.obs.Observability` session: the
    profiler hooks onto the CPU, the counter sampler rides every phase of
    the run (startup included — that is where the ABTB warm-up transient
    lives), and request windows become trace spans.

    ``machine_cache`` enables warm-up reuse: startup + warm-up state is
    checkpointed per machine configuration, and a later run with the
    *identical* configuration restores it instead of re-simulating —
    the trace generator is drained to the same position (generation is
    stateful and cannot be skipped), so the measurement window is
    counter-for-counter identical to an uncached run.  The cache is
    bypassed when ``obs`` is active, because skipping warm-up simulation
    would silently drop its trace spans and counter samples.

    ``trace_cache`` (a :class:`~repro.trace.store.TraceStore`) engages
    the array-native interchange path: the workload's startup, warm-up
    and measured windows are generated once as structured-array
    :class:`~repro.trace.batch.TraceBatch` segments, serialised through
    the binary codec, and on every later run with the identical recipe
    *loaded* and retired zero-copy by the batched backend — no
    generation at all.  Combined with a ``machine_cache`` hit, the run
    reduces to restoring the warm machine and retiring the measured
    batch.  The path only engages for ``backend="batched"`` with no
    ``obs`` session and no armed watchdog (those paths need the live
    event iterator); otherwise ``trace_cache`` is ignored.  Equivalence
    with the iterator path is enforced by :mod:`repro.difftest`.

    ``backend`` selects the simulation engine (see
    :data:`repro.uarch.backend.BACKENDS`): ``"reference"`` is the
    interpreter, ``"batched"`` the vectorized backend, which is
    counter-for-counter equivalent (enforced by :mod:`repro.difftest`).
    An ``obs`` session forces the reference path regardless:
    ``obs.instrument()`` samples counters *between* stream events, and
    batching would decouple sampling from simulation.

    ``watchdog`` (a :class:`~repro.resilience.watchdog.WatchdogPolicy`)
    arms the runtime divergence watchdog when the backend is ``"batched"``:
    every stream — startup, warm-up and the measurement window — runs
    under cross-checking against a shadow reference machine, and on
    divergence the run falls back to the shadow (``diverged`` /
    ``backend_used`` on the result record what happened; ``recorder``
    gets the incidents).
    """
    label = label or ("enhanced" if mechanism else "base")
    obs_label = obs_label or label
    workload = Workload(config, mode)
    hooks = obs.hooks() if obs is not None else None
    cpu = CPU(cpu_config, mechanism, hooks=hooks)
    run = make_runner(cpu, backend)  # validates the name even when obs wins
    if obs is not None:
        run = cpu.run
        obs.attach_workload(workload)

    dog = None
    if (
        watchdog is not None
        and watchdog.enabled
        and backend == "batched"
        and obs is None
    ):
        shadow_mechanism = (
            TrampolineSkipMechanism(mechanism.config) if mechanism is not None else None
        )
        shadow = CPU(cpu_config, shadow_mechanism)
        dog = DivergenceWatchdog(
            cpu, shadow, policy=watchdog, recorder=recorder, label=obs_label
        )
        run = dog.run

    def active() -> CPU:
        return dog.active_cpu if dog is not None else cpu

    use_cache = machine_cache is not None and obs is None
    cache_key = None
    state = None
    if use_cache:
        cache_key = warmup_machine_key(
            config, mode, cpu.config,
            mechanism.config if mechanism is not None else None,
            warmup_requests,
        )
        state = machine_cache.load(cache_key)

    use_trace = (
        trace_cache is not None
        and obs is None
        and dog is None
        and backend == "batched"
    )
    if use_trace:
        # Array-native interchange path: the whole trace exists as three
        # structured-array segments — loaded from the store on a hit,
        # generated once through the batch-emitting twins on a miss —
        # and the batched backend retires them zero-copy.  Generation
        # usage statistics travel in the store's sidecar, so a hit never
        # touches the (stateful) iterator generators at all.
        bundle_key = trace_key(config, mode, warmup_requests, measured_requests)
        bundle = trace_cache.load(bundle_key)
        if bundle is None:
            bundle = generate_bundle(workload, warmup_requests, measured_requests)
            trace_cache.save(bundle_key, bundle)
        else:
            apply_stats(bundle.stats, workload)
        batched = BatchedBackend(cpu)

        def drive(batch) -> None:
            if progress is None:
                batched.run_batches((batch,))
                return
            for piece in batch.slices(PROGRESS_EVERY):
                batched.run_batches((piece,))
                progress(len(piece.data))

        if state is not None:
            state.restore_into(cpu)
        else:
            drive(bundle.startup)
            drive(bundle.warmup)
        cpu.finalize()
        if state is None and use_cache and cache_key is not None:
            machine_cache.save(
                cache_key,
                MachineState.capture(
                    cpu,
                    meta={
                        "workload": config.name,
                        "mode": mode.value,
                        "label": label,
                        "warmup_requests": warmup_requests,
                    },
                ),
            )
        snapshot = cpu.counters.copy()
        marks_before = len(cpu.marks)
        drive(bundle.measured)
        cpu.finalize()
        window = cpu.counters.delta(snapshot)
        requests, unmatched, dropped = _pair_marks(
            cpu, marks_before, strict=strict_marks
        )
        return RunResult(
            label,
            window,
            requests,
            workload,
            cpu,
            mechanism,
            unmatched_marks=unmatched,
            dropped_samples=dropped,
            backend_used="batched",
        )

    if state is not None:
        # Warm machine found: advance the (stateful) trace generator by
        # draining the startup and warm-up streams — no simulation — and
        # restore the simulated structures from the checkpoint.
        TraceCursor(workload.startup_trace()).drain()
        workload.reset_usage_stats()
        if warmup_requests:
            TraceCursor(workload.trace(warmup_requests, include_marks=False)).drain()
        state.restore_into(cpu)
        if dog is not None:
            state.restore_into(dog.shadow)
            dog.finalize()
        else:
            cpu.finalize()
    else:
        stream = workload.startup_trace()
        if obs is not None:
            stream = obs.instrument(stream, cpu, obs_label)
        if progress is not None:
            stream = _counted_stream(stream, progress)
        run(stream)
        workload.reset_usage_stats()  # Table 3 / Fig 4 cover organic execution
        if warmup_requests:
            stream = workload.trace(warmup_requests, include_marks=False)
            if obs is not None:
                stream = obs.instrument(stream, cpu, obs_label)
            if progress is not None:
                stream = _counted_stream(stream, progress)
            run(stream)
        if dog is not None:
            dog.finalize()
        else:
            cpu.finalize()
        if use_cache and cache_key is not None:
            machine_cache.save(
                cache_key,
                MachineState.capture(
                    active(),
                    meta={
                        "workload": config.name,
                        "mode": mode.value,
                        "label": label,
                        "warmup_requests": warmup_requests,
                    },
                ),
            )
    # Watchdog invariant: a completed stream leaves primary and shadow
    # *verified* equal (or the fallback already happened), so the window
    # snapshot below is valid for whichever machine finishes the run.
    snapshot = active().counters.copy()
    marks_before = len(active().marks)

    stream = workload.trace(measured_requests, start_id=warmup_requests)
    if obs is not None:
        stream = obs.instrument(stream, cpu, obs_label)
    if progress is not None:
        stream = _counted_stream(stream, progress)
    run(stream)
    if dog is not None:
        dog.finalize()
    else:
        cpu.finalize()
    if obs is not None:
        obs.finish_run(cpu, obs_label, marks_from=marks_before)
    measured_cpu = active()
    window = measured_cpu.counters.delta(snapshot)
    requests, unmatched, dropped = _pair_marks(
        measured_cpu, marks_before, strict=strict_marks
    )
    return RunResult(
        label or ("enhanced" if mechanism else "base"),
        window,
        requests,
        workload,
        measured_cpu,
        mechanism if measured_cpu is cpu else measured_cpu.mechanism,
        unmatched_marks=unmatched,
        dropped_samples=dropped,
        backend_used=(
            dog.backend_used if dog is not None
            else ("reference" if obs is not None else backend)
        ),
        diverged=dog.diverged if dog is not None else False,
    )


def run_pair(
    workload_name: str,
    scale,
    abtb_entries: int = 256,
    cpu_config: CPUConfig | None = None,
    mechanism_config: MechanismConfig | None = None,
    seed: int | None = None,
    obs=None,
    machine_cache: CheckpointStore | None = None,
    trace_cache: TraceStore | None = None,
    backend: str = "reference",
    recorder: IncidentRecorder | None = None,
    watchdog: WatchdogPolicy | None = None,
    progress=None,
) -> tuple[RunResult, RunResult]:
    """Base vs enhanced over identical traces of a named workload.

    With a ``machine_cache``, each side's startup + warm-up is simulated
    once per machine configuration and restored thereafter.  The base
    machine's warm-up is independent of the ABTB size, so an ABTB sweep
    re-simulates base warm-up exactly once, and repeated campaigns reuse
    everything.  ``backend`` is passed through to :func:`run_workload`;
    warm-machine checkpoints are shareable across backends because the
    backends are counter-for-counter equivalent.

    ``trace_cache`` shares *generated traces* the same way: the trace
    key covers only the workload recipe and window lengths — not the
    mechanism or ABTB size — so base and enhanced (and every ABTB sweep
    point) consume one stored byte-identical bundle.  Even a cold
    campaign generates each workload's trace exactly once.
    """
    try:
        module = ALL_WORKLOADS[workload_name]
    except KeyError:
        raise ConfigError(f"unknown workload {workload_name!r}") from None
    warmup = scale.warmup(workload_name)
    measured = scale.measured(workload_name)
    if warmup < 0:
        raise ConfigError(f"scale yields negative warmup ({warmup}) for {workload_name}")
    if measured < 1:
        raise ConfigError(
            f"scale yields an empty measurement window ({measured}) for {workload_name}"
        )
    results = []
    for label in ("base", "enhanced"):
        cfg = module.config() if seed is None else module.config(seed=seed)
        mech = None
        if label == "enhanced":
            mcfg = mechanism_config or MechanismConfig(abtb_entries=abtb_entries)
            mech = TrampolineSkipMechanism(mcfg)
        obs_label = f"{workload_name}/abtb={abtb_entries}/{label}" if obs is not None else None
        results.append(
            run_workload(
                cfg, mech, warmup, measured, cpu_config,
                label=label, obs=obs, obs_label=obs_label,
                machine_cache=machine_cache, trace_cache=trace_cache,
                backend=backend,
                recorder=recorder, watchdog=watchdog, progress=progress,
            )
        )
    base, enhanced = results
    if base.counters.instructions == 0:
        raise ExperimentError("empty measurement window")
    return base, enhanced


def _pair_marks(
    cpu: CPU, marks_from: int, strict: bool = False
) -> tuple[list[RequestSample], int, int]:
    """Convert begin/end marks into per-request samples.

    Returns ``(samples, unmatched, dropped)``: *unmatched* counts end
    marks with no open begin plus begins never closed — previously these
    vanished silently, biasing tail percentiles toward whatever happened
    to pair up.  ``strict=True`` raises :class:`ExperimentError` on the
    first unmatched mark instead.  *dropped* counts samples excluded for
    non-finite or negative deltas.
    """
    out: list[RequestSample] = []
    open_marks: dict[int, tuple[str, int, float]] = {}
    unmatched = 0
    dropped = 0
    for mark in cpu.marks[marks_from:]:
        tag = mark.tag
        if not (isinstance(tag, tuple) and len(tag) == 3):
            continue
        phase, class_name, request_id = tag
        if phase == "begin":
            if request_id in open_marks:
                if strict:
                    raise ExperimentError(
                        f"duplicated begin mark for request {request_id}"
                    )
                unmatched += 1
            open_marks[request_id] = (class_name, mark.instructions, mark.cycles)
        elif phase == "end":
            if request_id not in open_marks:
                if strict:
                    raise ExperimentError(
                        f"end mark without begin for request {request_id}"
                    )
                unmatched += 1
                continue
            class_name, instr0, cyc0 = open_marks.pop(request_id)
            d_instr = mark.instructions - instr0
            d_cycles = mark.cycles - cyc0
            if d_instr < 0 or not math.isfinite(d_cycles) or d_cycles < 0:
                if strict:
                    raise ExperimentError(
                        f"request {request_id}: non-monotonic counters "
                        f"(d_instr={d_instr}, d_cycles={d_cycles})"
                    )
                dropped += 1
                continue
            out.append(RequestSample(class_name, request_id, d_instr, d_cycles))
    if open_marks:
        if strict:
            raise ExperimentError(
                f"{len(open_marks)} request(s) never ended: "
                f"{sorted(open_marks)[:5]}"
            )
        unmatched += len(open_marks)
    return out, unmatched, dropped


# --------------------------------------------------------------- campaigns
#
# A campaign sweeps (workload × ABTB size) pairs.  Long sweeps die in
# practice for boring reasons — one hung run, one transient failure — so
# the campaign runner adds a per-run timeout, bounded retry with
# exponential backoff for transient ``ExperimentError``s, a JSON
# checkpoint (written atomically after every completed pair; resume skips
# completed work), and graceful degradation: a pair that keeps failing is
# recorded and the sweep moves on.

#: Version 2: campaign checkpoints moved inside the integrity envelope
#: (schema header + content checksum; see repro.resilience.integrity).
CHECKPOINT_VERSION = 2
CHECKPOINT_SCHEMA = "repro.campaign-checkpoint"
MANIFEST_SCHEMA = "repro.campaign-manifest"
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs for one campaign run.

    ``backoff_max_s`` caps the exponential curve: without it a handful of
    retries of a long ``backoff_base_s`` produces multi-minute sleeps that
    dwarf the runs they guard.  ``jitter`` (a fraction in [0, 1]) spreads
    concurrent shards apart: when N shards fail together — a shared cache
    directory briefly unwritable, a machine-wide stall — an unjittered
    policy has all N retry in lockstep and collide again.  The jitter is
    *deterministic*, seeded from the pair key, so a given shard always
    sleeps the same amount (reruns stay reproducible) while different
    shards desynchronise.  Defaults keep the historical schedule exactly:
    zero jitter, and a cap no smoke-scale sequence ever reaches.
    """

    timeout_s: float | None = None  # None → no per-run timeout
    max_retries: int = 2  # retries after the first attempt
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 60.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.backoff_max_s < 0:
            raise ConfigError(f"backoff_max_s must be >= 0, got {self.backoff_max_s}")

    def backoff(self, attempt: int, key: str = "") -> float:
        """Sleep before retry ``attempt`` (1-based), jittered by ``key``.

        The jitter scales the capped delay by a factor in
        ``[1 - jitter, 1]`` drawn from a hash of ``(key, attempt)`` —
        pure subtraction, so the cap stays a hard upper bound.
        """
        delay = min(
            self.backoff_base_s * (self.backoff_factor ** (attempt - 1)),
            self.backoff_max_s,
        )
        if self.jitter > 0.0:
            digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
            frac = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 - self.jitter * frac
        return delay


@dataclass
class CampaignResult:
    """Outcome of a (possibly resumed, possibly degraded) campaign."""

    completed: dict[str, dict] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    resumed: int = 0  # pairs skipped because the checkpoint had them
    #: Shards the supervisor gave up on (key → failure details); the
    #: campaign still completes, *degraded*, with a partial manifest.
    quarantined: dict[str, dict] = field(default_factory=dict)
    #: Aggregated trace-store load outcomes across the parent and every
    #: worker ({"hits": n, "misses": n}); empty when no trace cache ran.
    cache_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed and not self.quarantined

    @property
    def trace_hit_rate(self) -> float:
        """Fraction of trace-store loads that hit (0.0 with no loads)."""
        hits = self.cache_stats.get("hits", 0)
        total = hits + self.cache_stats.get("misses", 0)
        return hits / total if total else 0.0

    @property
    def degraded(self) -> bool:
        """Completed, but missing quarantined shards."""
        return bool(self.quarantined) and not self.failed

    def render(self) -> str:
        lines = [
            f"campaign: {len(self.completed)} pair(s) done "
            f"({self.resumed} from checkpoint), {len(self.failed)} failed"
            + (f", {len(self.quarantined)} quarantined" if self.quarantined else "")
        ]
        for key, summary in sorted(self.completed.items()):
            speedup = summary.get("speedup")
            text = f"{speedup:.4f}x" if isinstance(speedup, float) else "?"
            flag = "  [diverged->reference]" if summary.get("diverged_backend") else ""
            lines.append(f"  {key:<42} speedup {text}{flag}")
        for key, reason in sorted(self.failed.items()):
            lines.append(f"  {key:<42} FAILED: {reason}")
        for key, info in sorted(self.quarantined.items()):
            lines.append(
                f"  {key:<42} QUARANTINED after {info.get('failures', '?')} "
                f"failure(s): {info.get('last_error', '')}"
            )
        return "\n".join(lines)


def pair_key(workload: str, abtb_entries: int, scale_name: str) -> str:
    """Stable checkpoint key for one (workload, config) pair."""
    return f"{workload}::abtb={abtb_entries}::scale={scale_name}"


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-specified campaign task.

    The classic campaign grid is (workload × ABTB size); a point
    additionally pins a full mechanism configuration and/or CPU geometry,
    which is what the sweep engine (:mod:`repro.sweep`) fans out over.
    ``mechanism`` is a dict of :class:`~repro.core.config.MechanismConfig`
    kwargs and ``cpu`` a (possibly partial) dict understood by
    :meth:`~repro.uarch.cpu.CPUConfig.from_dict` — plain JSON-safe dicts,
    so points pickle cleanly across the process-pool boundary and keys
    stay stable in checkpoints.
    """

    key: str
    workload: str
    abtb_entries: int = 256
    mechanism: dict | None = None
    cpu: dict | None = None


def summarize_pair(base: RunResult, enhanced: RunResult) -> dict:
    """JSON-serialisable summary of one base/enhanced pair."""
    out = {
        "instructions": int(base.counters.instructions),
        "base_cycles": float(base.counters.cycles),
        "enhanced_cycles": float(enhanced.counters.cycles),
        "speedup": (
            float(base.counters.cycles / enhanced.counters.cycles)
            if enhanced.counters.cycles
            else 1.0
        ),
        "skip_rate": float(enhanced.skip_rate),
        "unmatched_marks": base.unmatched_marks + enhanced.unmatched_marks,
    }
    if getattr(base, "diverged", False) or getattr(enhanced, "diverged", False):
        # Only present when the watchdog fell back, so summaries from
        # healthy runs keep their historical shape byte-for-byte.
        out["diverged_backend"] = True
    return out


def _load_checkpoint(
    path: Path, recorder: IncidentRecorder | None = None
) -> dict[str, dict]:
    """Resume state from an integrity-checked campaign checkpoint.

    A corrupt, truncated or wrong-version checkpoint is never trusted.
    Without a ``recorder`` it raises :class:`ExperimentError` (the
    historical strict contract: the caller decides whether to delete).
    With one, the corruption is recorded as a
    ``campaign_checkpoint_corrupt`` incident and an empty resume state is
    returned — the affected pairs are simply requeued and re-simulated,
    which is always safe because pair execution is deterministic.
    """
    try:
        payload = read_artifact(path, CHECKPOINT_SCHEMA, CHECKPOINT_VERSION)
        completed = payload.get("completed", {})
        if not isinstance(completed, dict):
            raise CheckpointCorruptionError(
                f"checkpoint {path}: 'completed' is not an object",
                path=path,
                reason="bad-envelope",
            )
    except CheckpointCorruptionError as exc:
        if exc.reason == "missing":
            # First run: nothing to resume.  Read-and-catch instead of an
            # exists() probe — no TOCTOU window against a concurrent
            # writer or cleaner, and no spurious incident.
            return {}
        if recorder is None:
            raise ExperimentError(
                f"checkpoint {path} failed integrity validation "
                f"({exc.reason}): {exc}; delete it to restart"
            ) from exc
        recorder.record(
            IncidentKind.CAMPAIGN_CHECKPOINT_CORRUPT,
            f"campaign checkpoint {path.name} failed integrity validation "
            f"({exc.reason}); completed pairs will be re-run",
            path=str(path),
            reason=exc.reason,
        )
        return {}
    return completed


def _save_checkpoint(path: Path, completed: dict[str, dict]) -> None:
    """Atomic, checksummed write: a crash mid-save never corrupts the
    checkpoint, and any later corruption is detected on load."""
    write_artifact(path, {"completed": completed}, CHECKPOINT_SCHEMA, CHECKPOINT_VERSION)


def _attempt_with_timeout(fn: Callable[[], object], timeout_s: float | None):
    """Run ``fn``, raising ExperimentError on timeout.

    Python cannot kill a running thread, so a timed-out attempt's thread
    is abandoned (daemonised via ``shutdown(wait=False)``) — acceptable
    for a simulator run, and the reason timeouts should be generous.
    The abandoned thread keeps executing; callers that feed it callbacks
    (progress, incident recorders) must gate them through an
    :class:`AttemptGate` so a zombie attempt cannot write into the retry
    attempt's results.
    """
    if timeout_s is None:
        return fn()
    executor = ThreadPoolExecutor(max_workers=1)
    try:
        future = executor.submit(fn)
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            future.cancel()
            raise ExperimentError(f"run exceeded timeout of {timeout_s:.1f}s") from None
    finally:
        executor.shutdown(wait=False)


class AttemptGate:
    """Liveness flag for one run attempt's side-effect callbacks.

    A timed-out attempt's worker thread cannot be killed (see
    :func:`_attempt_with_timeout`), so it survives into the retry and
    keeps calling whatever ``progress``/recorder callbacks it was
    given — double-counting progress and incidents into the *new*
    attempt's results.  Each attempt therefore gets a fresh gate; the
    retry loop flips it with :meth:`expire` before retrying, turning the
    zombie's callbacks into no-ops.
    """

    __slots__ = ("_live",)

    def __init__(self) -> None:
        self._live = True

    @property
    def live(self) -> bool:
        return self._live

    def expire(self) -> None:
        """Silence every callback wrapped by this gate, permanently."""
        self._live = False

    def wrap(self, callback):
        """``callback`` guarded by this gate (None passes through)."""
        if callback is None:
            return None

        def gated(*args, **kwargs):
            if self._live:
                return callback(*args, **kwargs)

        return gated

    def recorder(self, recorder):
        """An incident-recorder proxy that drops records once expired."""
        if recorder is None:
            return None
        return _GatedRecorder(self, recorder)


class _GatedRecorder:
    """Recorder proxy: ``record`` is gated, everything else delegates."""

    __slots__ = ("_gate", "_inner")

    def __init__(self, gate: AttemptGate, inner) -> None:
        self._gate = gate
        self._inner = inner

    def record(self, *args, **kwargs):
        if self._gate.live:
            return self._inner.record(*args, **kwargs)
        return None

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _accepted_kwargs(fn) -> frozenset:
    """Keyword names ``fn`` accepts (everything, for ``**kwargs``).

    Campaign ``run_fn`` callables historically took exactly
    ``(workload, scale, abtb)``; newer capabilities — per-point
    mechanism/CPU configs, the attempt gate — are passed only when the
    callable declares them, so existing custom callables keep working.
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return frozenset()
    names = set()
    for param in sig.parameters.values():
        if param.kind == inspect.Parameter.VAR_KEYWORD:
            return frozenset({"gate", "mechanism", "cpu"})
        if param.kind in (
            inspect.Parameter.KEYWORD_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            names.add(param.name)
    return frozenset(names)


def _run_one_pair(
    key: str,
    workload: str,
    scale,
    abtb: int,
    policy: RetryPolicy,
    run_fn: Callable[[str, object, int], tuple[RunResult, RunResult]],
    sleep_fn: Callable[[float], None],
    obs=None,
    mechanism: dict | None = None,
    cpu: dict | None = None,
) -> dict:
    """One pair with the full retry/timeout discipline; never raises.

    Returns an outcome record: ``{"key", "attempts", "retries", "failed",
    "summary"}`` where exactly one of ``failed`` (an error string) and
    ``summary`` (a :func:`summarize_pair` dict) is set.  Both the serial
    loop and the sharded worker run pairs through this, so their
    summaries are produced by identical code.

    ``mechanism``/``cpu`` are optional per-point config dicts (see
    :class:`CampaignPoint`), forwarded to ``run_fn`` when it accepts the
    matching keywords.  Every attempt runs under a fresh
    :class:`AttemptGate` (passed as ``gate=`` to gate-aware ``run_fn``
    callables) that is expired before any retry, so a timed-out
    attempt's abandoned thread cannot leak callbacks into its successor.
    Backoff sleeps are keyed by the pair key for deterministic jitter.
    """
    accepted = _accepted_kwargs(run_fn)
    extra: dict = {}
    if mechanism is not None:
        if "mechanism" not in accepted:
            raise ConfigError(
                "per-point mechanism configs require a run_fn accepting "
                "a 'mechanism' keyword (the default run_fn does)"
            )
        extra["mechanism"] = mechanism
    if cpu is not None:
        if "cpu" not in accepted:
            raise ConfigError(
                "per-point CPU configs require a run_fn accepting a "
                "'cpu' keyword (the default run_fn does)"
            )
        extra["cpu"] = cpu
    gate_aware = "gate" in accepted
    attempt = 0
    retries = 0
    while True:
        attempt += 1
        gate = AttemptGate()
        kwargs = dict(extra)
        if gate_aware:
            kwargs["gate"] = gate
        call = lambda: run_fn(workload, scale, abtb, **kwargs)  # noqa: E731
        try:
            if obs is not None and obs.tracer is not None:
                with obs.tracer.span(
                    f"pair {key}", category="campaign", attempt=attempt
                ):
                    pair = _attempt_with_timeout(call, policy.timeout_s)
            else:
                pair = _attempt_with_timeout(call, policy.timeout_s)
        except ExperimentError as exc:
            gate.expire()  # the abandoned thread must stop reporting
            if attempt > policy.max_retries:
                return {
                    "key": key, "attempts": attempt, "retries": retries,
                    "failed": str(exc), "summary": None,
                }
            retries += 1
            sleep_fn(policy.backoff(attempt, key=key))
            continue
        except Exception as exc:  # non-transient: fail fast, move on
            gate.expire()
            return {
                "key": key, "attempts": attempt, "retries": retries,
                "failed": f"{type(exc).__name__}: {exc}", "summary": None,
            }
        base, enhanced = pair
        return {
            "key": key, "attempts": attempt, "retries": retries,
            "failed": None, "summary": summarize_pair(base, enhanced),
        }


def _obs_spec(obs) -> dict | None:
    """Picklable recipe for rebuilding an equivalent obs session in a
    worker process (live sessions hold tracers/registries and workload
    references that must not cross the fork/spawn boundary)."""
    if obs is None:
        return None
    return {
        "trace": obs.tracer is not None,
        "metrics": obs.metrics is not None,
        "sample_every": obs.sample_every,
        "profile": obs.profiler is not None,
        "sampled_fields": tuple(obs.sampled_fields),
    }


def _obs_from_spec(spec: dict | None):
    if spec is None:
        return None
    from repro.obs import Observability
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

    obs = Observability(
        sample_every=spec["sample_every"],
        profile=spec["profile"],
        sampled_fields=spec["sampled_fields"],
    )
    if spec["trace"]:
        obs.tracer = Tracer()
    if spec["metrics"] and obs.metrics is None:
        obs.metrics = MetricsRegistry()
    return obs


def _campaign_worker(task: dict) -> dict:
    """Process-pool entry point: run one pair in a fresh interpreter.

    Rebuilds the per-worker obs session and machine cache from picklable
    specs, runs the pair through :func:`_run_one_pair`, and ships the
    outcome back together with the worker's metric state, trace events
    and incident records for the parent to merge.
    """
    obs = _obs_from_spec(task["obs_spec"])
    recorder = IncidentRecorder(
        metrics=obs.metrics if obs is not None else None,
        tracer=obs.tracer if obs is not None else None,
    )
    cache = (
        CheckpointStore(task["machine_cache_dir"], recorder=recorder)
        if task["machine_cache_dir"] is not None
        else None
    )
    traces = (
        TraceStore(task["trace_cache_dir"], recorder=recorder)
        if task.get("trace_cache_dir") is not None
        else None
    )
    watchdog = task.get("watchdog")
    if task.get("force_diverge"):
        base = watchdog if watchdog is not None else WatchdogPolicy()
        watchdog = WatchdogPolicy(
            check_every=base.check_every or WatchdogPolicy().check_every,
            force_diverge_at_check=1,
        )

    def run_fn(w, s, n, mechanism=None, cpu=None, gate=None):
        rec = gate.recorder(recorder) if gate is not None else recorder
        return run_pair(
            w, s, abtb_entries=n,
            cpu_config=CPUConfig.from_dict(cpu) if cpu else None,
            mechanism_config=MechanismConfig(**mechanism) if mechanism else None,
            obs=obs, machine_cache=cache,
            trace_cache=traces,
            backend=task.get("backend", "reference"),
            recorder=rec, watchdog=watchdog,
        )

    outcome = _run_one_pair(
        task["key"], task["workload"], task["scale"], task["abtb"],
        task["policy"], run_fn, time.sleep, obs=obs,
        mechanism=task.get("mechanism"), cpu=task.get("cpu"),
    )
    if traces is not None:
        # Per-task store instance, so these counters sum cleanly in the
        # parent's CampaignResult.cache_stats aggregation.
        outcome["trace_cache"] = {"hits": traces.hits, "misses": traces.misses}
    outcome["incidents"] = recorder.as_dicts()
    outcome["metrics_state"] = (
        obs.metrics.state_dict() if obs is not None and obs.metrics is not None else None
    )
    outcome["tracer_events"] = (
        list(obs.tracer.events) if obs is not None and obs.tracer is not None else None
    )
    return outcome


def run_campaign(
    workloads: Sequence[str],
    scale,
    abtb_sizes: Sequence[int] = (256,),
    checkpoint_path: str | Path | None = None,
    policy: RetryPolicy = RetryPolicy(),
    run_fn: Callable[[str, object, int], tuple[RunResult, RunResult]] | None = None,
    sleep_fn: Callable[[float], None] = time.sleep,
    obs=None,
    jobs: int = 1,
    machine_cache_dir: str | Path | None = None,
    trace_cache_dir: str | Path | None = None,
    backend: str = "reference",
    recorder: IncidentRecorder | None = None,
    supervise: bool = False,
    supervisor_policy: SupervisorPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    manifest_path: str | Path | None = None,
    watchdog: WatchdogPolicy | None = None,
    bus=None,
    campaign_id: str = "",
    points: Sequence[CampaignPoint] | None = None,
) -> CampaignResult:
    """Sweep (workload × ABTB size) with timeout, retry and checkpointing.

    ``points`` replaces the (workload × ABTB size) grid with an explicit
    list of :class:`CampaignPoint` tasks, each carrying its own
    checkpoint key and optional mechanism/CPU config dicts — the
    substrate the sweep engine (:mod:`repro.sweep`) builds on.  All the
    machinery below (retry, checkpointing, sharding, supervision,
    cache prefill) applies to points exactly as it does to grid pairs;
    ``workloads``/``abtb_sizes`` must be empty when points are given.

    Transient failures (:class:`ExperimentError`, including timeouts) are
    retried up to ``policy.max_retries`` times with exponential backoff;
    anything else — a :class:`ConfigError`, a crash in the model — fails
    the pair immediately.  Either way the campaign continues and reports
    a partial result.  ``run_fn`` and ``sleep_fn`` exist for tests: the
    default ``run_fn`` is :func:`run_pair`.

    ``jobs > 1`` shards the remaining pairs over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Every pair is
    simulated by exactly one worker with the same retry/timeout
    discipline as the serial path, outcomes are merged in the serial
    loop's deterministic order, and the campaign checkpoint is still
    written incrementally as pairs finish — so a sharded campaign
    produces byte-identical summaries and checkpoints to a serial one.
    Sharding requires the default ``run_fn``/``sleep_fn`` (custom
    callables don't cross process boundaries); otherwise the campaign
    silently runs serially.

    ``machine_cache_dir`` holds warm-machine checkpoints shared by all
    workers (see :func:`run_workload`); atomic writes make the racy
    first-fill benign.  ``trace_cache_dir`` holds the content-addressed
    trace store: with ``backend="batched"`` every shard serialises each
    workload's trace once and thereafter loads the stored batches
    instead of regenerating them (see :func:`run_workload`).  ``backend``
    selects the simulation engine for every pair, serial or sharded
    (custom ``run_fn`` callables ignore it).

    With an ``obs`` session, each pair attempt runs under a host-clock
    trace span and the sweep's progress lands in counters
    (``campaign.pairs_completed`` / ``campaign.pairs_failed``) plus a
    per-pair speedup series — deep CPU-level sampling is wired through
    :func:`run_pair` when ``run_fn`` is the default.  Sharded workers
    sample into their own registries/tracers, which are merged into the
    parent session in deterministic pair order.

    ``supervise=True`` replaces the bare process pool with the
    :class:`~repro.resilience.supervisor.CampaignSupervisor`: per-shard
    heartbeats, hang detection (``supervisor_policy``), kill-and-requeue
    with backoff, quarantine of repeatedly failing shards (the campaign
    then completes *degraded*; see :attr:`CampaignResult.degraded`), and
    salvage of completed work from dead workers.  ``fault_plan`` injects
    deterministic worker kills/hangs/divergences for tests and the chaos
    CI job.  ``recorder`` collects every incident — corrupted campaign
    checkpoints are then healed (entries requeued) instead of raising.
    ``watchdog`` arms the backend divergence watchdog in every pair (only
    meaningful with ``backend="batched"``), and ``manifest_path`` writes
    an integrity-checked end-of-campaign manifest including quarantined
    shards and incident counts.

    ``bus`` (a :class:`repro.obs.events.EventBus`) narrates the sweep:
    one ``campaign_started`` event up front, one ``pair_completed`` /
    ``pair_failed`` per pair (correlated by ``campaign_id`` and the pair
    key), and a final ``campaign_complete``.  Default None — the
    disabled path emits nothing and pays nothing.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    machine_cache = (
        CheckpointStore(machine_cache_dir, recorder=recorder)
        if machine_cache_dir is not None
        else None
    )
    trace_cache = (
        TraceStore(trace_cache_dir, recorder=recorder)
        if trace_cache_dir is not None
        else None
    )
    default_callables = run_fn is None and sleep_fn is time.sleep
    if supervise and not default_callables:
        raise ConfigError(
            "supervise=True requires the default run_fn/sleep_fn "
            "(worker processes cannot inherit custom callables)"
        )
    parallel = jobs > 1 and default_callables and not supervise
    if run_fn is None:
        def run_fn(w, s, n, mechanism=None, cpu=None, gate=None):
            rec = gate.recorder(recorder) if gate is not None else recorder
            return run_pair(
                w, s, abtb_entries=n,
                cpu_config=CPUConfig.from_dict(cpu) if cpu else None,
                mechanism_config=(
                    MechanismConfig(**mechanism) if mechanism else None
                ),
                obs=obs, machine_cache=machine_cache,
                trace_cache=trace_cache,
                backend=backend, recorder=rec, watchdog=watchdog,
            )
    path = Path(checkpoint_path) if checkpoint_path is not None else None
    completed = _load_checkpoint(path, recorder) if path is not None else {}
    result = CampaignResult(completed=dict(completed))

    scale_name = getattr(scale, "name", str(scale))
    if points is not None:
        if workloads:
            raise ConfigError("pass either workloads or points, not both")
        keys = [p.key for p in points]
        if len(set(keys)) != len(keys):
            raise ConfigError("campaign points have duplicate keys")
        specs = [
            (p.key, p.workload, p.abtb_entries, p.mechanism, p.cpu)
            for p in points
        ]
    else:
        specs = [
            (pair_key(workload, abtb, scale_name), workload, abtb, None, None)
            for workload in workloads
            for abtb in abtb_sizes
        ]
    if bus is not None:
        bus.emit(
            "campaign_started",
            f"campaign over {len(specs)} point(s) at scale {scale_name} "
            f"(backend={backend}, jobs={jobs})",
            campaign_id=campaign_id,
            workloads=sorted({w for _k, w, _a, _m, _c in specs}),
            abtb_sizes=list(abtb_sizes) if points is None else [],
            points=len(specs),
            backend=backend,
            jobs=jobs,
        )
    tasks: list[tuple[str, str, int, dict | None, dict | None]] = []
    for key, workload, abtb, mech_cfg, cpu_cfg in specs:
        if key in completed:
            result.resumed += 1
        else:
            tasks.append((key, workload, abtb, mech_cfg, cpu_cfg))

    if (
        trace_cache is not None
        and backend == "batched"
        and obs is None
        and watchdog is None
        and tasks
        and (parallel or supervise)
    ):
        # Seed the cross-shard artifacts before fanning out — otherwise
        # every concurrently-started cold shard of the same workload
        # regenerates the identical trace bundle and re-simulates the
        # identical base-machine warm-up (the racy first-fill is benign
        # but wasteful, and on few-core machines the waste is pure
        # wall-clock).  Base machines are warmed per distinct CPU
        # geometry: points sweeping BTB/gshare shapes each get their own
        # shared base checkpoint.
        distinct_cpus: list[dict | None] = []
        seen_cpus: set = set()
        for _k, _w, _a, _m, cpu_cfg in tasks:
            mark = (
                json.dumps(cpu_cfg, sort_keys=True) if cpu_cfg is not None else None
            )
            if mark not in seen_cpus:
                seen_cpus.add(mark)
                distinct_cpus.append(cpu_cfg)
        _prefill_caches(
            dict.fromkeys(w for _k, w, _a, _m, _c in tasks),
            scale, machine_cache, trace_cache,
            cpu_dicts=distinct_cpus,
        )

    def absorb(outcome: dict) -> None:
        """Fold one pair outcome into the result + obs, serially."""
        key = outcome["key"]
        result.attempts[key] = outcome["attempts"]
        worker_cache = outcome.get("trace_cache")
        if worker_cache:
            for field_name in ("hits", "misses"):
                result.cache_stats[field_name] = (
                    result.cache_stats.get(field_name, 0)
                    + int(worker_cache.get(field_name, 0))
                )
        if obs is not None and obs.metrics is not None and outcome["retries"]:
            obs.metrics.counter("campaign.retries").inc(outcome["retries"])
        if outcome["failed"] is not None:
            result.failed[key] = outcome["failed"]
            if obs is not None and obs.metrics is not None:
                obs.metrics.counter("campaign.pairs_failed").inc()
            if bus is not None:
                bus.emit(
                    "pair_failed",
                    f"pair {key} failed after {outcome['attempts']} "
                    f"attempt(s): {outcome['failed']}",
                    severity="warning",
                    campaign_id=campaign_id,
                    shard_key=key,
                    attempts=outcome["attempts"],
                )
            return
        result.completed[key] = outcome["summary"]
        if obs is not None and obs.metrics is not None:
            obs.metrics.counter("campaign.pairs_completed").inc()
            obs.metrics.series("campaign.speedup").append(
                float(len(result.completed)), outcome["summary"]["speedup"]
            )
        if bus is not None:
            bus.emit(
                "pair_completed",
                f"pair {key} completed "
                f"(speedup {outcome['summary']['speedup']:.3f})",
                campaign_id=campaign_id,
                shard_key=key,
                attempts=outcome["attempts"],
                speedup=outcome["summary"]["speedup"],
            )
        if path is not None:
            _save_checkpoint(path, result.completed)

    def merge_worker_state(outcome: dict) -> None:
        """Fold a worker's obs/incident state into the parent session."""
        if obs is not None:
            if obs.metrics is not None and outcome.get("metrics_state"):
                obs.metrics.merge_state(outcome["metrics_state"])
            if obs.tracer is not None and outcome.get("tracer_events"):
                obs.tracer.events.extend(outcome["tracer_events"])
        if recorder is not None and outcome.get("incidents"):
            recorder.extend_dicts(outcome["incidents"])

    def finish() -> CampaignResult:
        if trace_cache is not None and (trace_cache.hits or trace_cache.misses):
            # Loads done in this process: the serial loop and the prefill.
            for field_name, count in (
                ("hits", trace_cache.hits), ("misses", trace_cache.misses),
            ):
                result.cache_stats[field_name] = (
                    result.cache_stats.get(field_name, 0) + count
                )
        if manifest_path is not None:
            _write_manifest(manifest_path, result, recorder)
        if bus is not None:
            bus.emit(
                "campaign_complete",
                f"campaign finished: {len(result.completed)} completed, "
                f"{len(result.failed)} failed, "
                f"{len(result.quarantined)} quarantined",
                severity="warning" if result.failed or result.quarantined else "info",
                campaign_id=campaign_id,
                completed=len(result.completed),
                failed=len(result.failed),
                quarantined=len(result.quarantined),
            )
        return result

    def make_task(
        key: str, workload: str, abtb: int,
        mechanism: dict | None = None, cpu: dict | None = None,
    ) -> dict:
        return {
            "key": key, "workload": workload, "abtb": abtb,
            "mechanism": mechanism, "cpu": cpu,
            "scale": scale, "policy": policy,
            "obs_spec": _obs_spec(obs),
            "machine_cache_dir": (
                str(machine_cache_dir) if machine_cache_dir is not None else None
            ),
            "trace_cache_dir": (
                str(trace_cache_dir) if trace_cache_dir is not None else None
            ),
            "backend": backend,
            "watchdog": watchdog,
            "force_diverge": bool(
                fault_plan is not None and fault_plan.should_diverge(key)
            ),
        }

    def execute() -> CampaignResult:
        # ----------------------------------------------------- supervised
        if supervise:
            live: dict[str, dict] = {}

            def on_complete(key: str, outcome: dict) -> None:
                # Incremental checkpoint the moment a shard lands (completion
                # order; sorted keys keep the bytes order-independent).
                if outcome.get("failed") is None and outcome.get("summary") is not None:
                    live[key] = outcome["summary"]
                    if path is not None:
                        staged = dict(result.completed)
                        staged.update(live)
                        _save_checkpoint(path, staged)

            supervisor = CampaignSupervisor(
                _campaign_worker,
                [
                    (key, make_task(key, workload, abtb, mech_cfg, cpu_cfg))
                    for key, workload, abtb, mech_cfg, cpu_cfg in tasks
                ],
                jobs=jobs,
                policy=supervisor_policy,
                recorder=recorder,
                fault_plan=fault_plan,
                spill_dir=path.parent / f"{path.name}.spill" if path is not None else None,
                on_complete=on_complete,
            )
            report = supervisor.run()
            # Fold in deterministic task order, like the serial loop.
            for key, *_rest in tasks:
                if key in report.outcomes:
                    outcome = report.outcomes[key]
                    absorb(outcome)
                    merge_worker_state(outcome)
                elif key in report.quarantined:
                    result.quarantined[key] = dict(report.quarantined[key])
            return finish()

        if not parallel:
            for key, workload, abtb, mech_cfg, cpu_cfg in tasks:
                absorb(
                    _run_one_pair(
                        key, workload, scale, abtb, policy, run_fn, sleep_fn,
                        obs=obs, mechanism=mech_cfg, cpu=cpu_cfg,
                    )
                )
            return finish()

        # -------------------------------------------------------- sharded
        outcomes: dict[str, dict] = {}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _campaign_worker,
                    make_task(key, workload, abtb, mech_cfg, cpu_cfg),
                ): key
                for key, workload, abtb, mech_cfg, cpu_cfg in tasks
            }
            for future in as_completed(futures):
                key = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:  # worker process died
                    outcome = {
                        "key": key, "attempts": 1, "retries": 0,
                        "failed": f"worker crashed: {type(exc).__name__}: {exc}",
                        "summary": None, "metrics_state": None, "tracer_events": None,
                    }
                outcomes[key] = outcome
                # Incremental checkpoint as pairs land (arrival order; the
                # file's sorted keys make the bytes order-independent).
                if path is not None and outcome["failed"] is None:
                    staged = dict(result.completed)
                    staged.update(
                        {
                            k: o["summary"]
                            for k, o in outcomes.items()
                            if o["failed"] is None
                        }
                    )
                    _save_checkpoint(path, staged)

        # Merge in the serial loop's order so attempts/completed/failed and
        # the obs streams are deterministic regardless of arrival order.
        for key, *_rest in tasks:
            outcome = outcomes[key]
            absorb(outcome)
            merge_worker_state(outcome)
        return finish()

    try:
        return execute()
    except KeyboardInterrupt:
        # SIGINT/SIGTERM (the CLI converts the latter) mid-campaign:
        # flush what we have through the atomic checkpoint path and say
        # so in the incident log, instead of dying mid-write and leaving
        # the next resume to guess.
        if path is not None:
            _save_checkpoint(path, result.completed)
        if recorder is not None:
            recorder.record(
                IncidentKind.SHUTDOWN,
                f"campaign interrupted with {len(result.completed)} pair(s) "
                f"completed; checkpoint flushed, resume will skip them",
                severity="warning",
                completed=len(result.completed),
                checkpoint=str(path) if path is not None else None,
            )
        raise


def _prefill_caches(
    workload_names,
    scale,
    machine_cache: CheckpointStore | None,
    trace_cache: TraceStore,
    cpu_dicts: Sequence[dict | None] = (None,),
) -> None:
    """Serially warm the cross-shard artifacts before fanning out.

    Two artifacts are shared by *every* shard of one workload: the trace
    bundle (the key excludes mechanism and ABTB size) and the warm base
    machine (its checkpoint key has no mechanism either).  Each is
    generated/simulated once here, in the parent, so every shard's
    shared work becomes a pure cache hit.  Enhanced machines are
    per-(workload, mechanism config) — exactly one shard each — and are
    left to the shards.  Mirrors the default :func:`run_pair` recipe
    (module default config, DYNAMIC mode, scale-derived windows) so the
    keys match what :func:`run_workload` computes; ``cpu_dicts`` lists
    the distinct CPU geometries in play (``None`` = default), each of
    which gets its own warm base machine.

    Anything that cannot be prefilled — an unknown workload, a
    degenerate scale, an invalid CPU dict — is skipped: the
    corresponding pair surfaces the real error (or fills the caches
    itself) through the normal retry machinery.
    """
    for name in workload_names:
        module = ALL_WORKLOADS.get(name)
        if module is None:
            continue
        warmup = scale.warmup(name)
        measured = scale.measured(name)
        if warmup < 0 or measured < 1:
            continue
        config = module.config()
        key = trace_key(config, LinkMode.DYNAMIC, warmup, measured)
        bundle = trace_cache.load(key) if trace_cache.has(key) else None
        if bundle is None:
            bundle = generate_bundle(
                Workload(config, LinkMode.DYNAMIC), warmup, measured
            )
            trace_cache.save(key, bundle)
        if machine_cache is None:
            continue
        for cpu_dict in cpu_dicts:
            try:
                cpu = CPU(CPUConfig.from_dict(cpu_dict)) if cpu_dict else CPU()
            except (ConfigError, ValueError):
                continue
            base_key = warmup_machine_key(
                config, LinkMode.DYNAMIC, cpu.config, None, warmup
            )
            if machine_cache.load(base_key) is not None:
                continue
            BatchedBackend(cpu).run_batches((bundle.startup, bundle.warmup))
            cpu.finalize()
            machine_cache.save(
                base_key,
                MachineState.capture(
                    cpu,
                    meta={
                        "workload": config.name,
                        "mode": LinkMode.DYNAMIC.value,
                        "label": "base",
                        "warmup_requests": warmup,
                    },
                ),
            )


def _write_manifest(
    manifest_path: str | Path,
    result: CampaignResult,
    recorder: IncidentRecorder | None,
) -> Path:
    """Integrity-checked end-of-campaign manifest (partial results included)."""
    payload = {
        "completed": result.completed,
        "failed": result.failed,
        "quarantined": result.quarantined,
        "attempts": result.attempts,
        "resumed": result.resumed,
        "degraded": result.degraded,
        "cache_stats": result.cache_stats,
        "incident_counts": recorder.counts() if recorder is not None else {},
    }
    return write_artifact(manifest_path, payload, MANIFEST_SCHEMA, MANIFEST_VERSION)
