"""Shared measurement harness.

Mirrors the paper's methodology: start the program (resolving all GOT
entries), warm the server, then measure a steady-state window with
performance counters and per-request timestamps.  Base and enhanced runs
are built from identical configurations, so they consume *identical*
instruction traces — the measured delta is purely the microarchitectural
effect of the mechanism, exactly as in the paper's patched-vs-unpatched
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import ExperimentError
from repro.trace.engine import LinkMode
from repro.uarch.counters import PerfCounters
from repro.uarch.cpu import CPU, CPUConfig
from repro.uarch.timing import TimingModel
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload, WorkloadConfig


@dataclass(frozen=True)
class RequestSample:
    """One request observed in the measurement window."""

    class_name: str
    request_id: int
    instructions: int
    cycles: float


@dataclass
class RunResult:
    """Everything measured in one steady-state window."""

    label: str
    counters: PerfCounters
    requests: list[RequestSample]
    workload: Workload
    cpu: CPU
    mechanism: TrampolineSkipMechanism | None = None

    def requests_of(self, class_name: str) -> list[RequestSample]:
        """Samples of one request class."""
        return [r for r in self.requests if r.class_name == class_name]

    def class_names(self) -> list[str]:
        """Distinct request classes observed, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.requests:
            seen.setdefault(r.class_name, None)
        return list(seen)

    def latencies_us(
        self,
        class_name: str | None = None,
        timing: TimingModel | None = None,
        noise_sigma: float = 0.0,
        noise_seed: int = 7,
    ) -> list[float]:
        """Per-request response times in microseconds.

        ``noise_sigma`` adds lognormal service-time dispersion (queueing,
        interrupts) keyed by *request id*, so base and enhanced runs get
        identical noise draws (common random numbers) and their latency
        difference stays purely microarchitectural.
        """
        timing = timing if timing is not None else TimingModel()
        samples = self.requests if class_name is None else self.requests_of(class_name)
        out = []
        for r in samples:
            us = timing.cycles_to_microseconds(r.cycles)
            if noise_sigma > 0:
                rng = np.random.default_rng(np.random.SeedSequence([noise_seed, r.request_id]))
                us *= float(np.exp(rng.normal(0.0, noise_sigma)))
            out.append(us)
        return out

    @property
    def skip_rate(self) -> float:
        """Fraction of trampoline executions avoided in the window."""
        total = self.counters.trampolines_skipped + self.counters.trampolines_executed
        return self.counters.trampolines_skipped / total if total else 0.0


def run_workload(
    config: WorkloadConfig,
    mechanism: TrampolineSkipMechanism | None = None,
    warmup_requests: int = 10,
    measured_requests: int = 50,
    cpu_config: CPUConfig | None = None,
    mode: LinkMode = LinkMode.DYNAMIC,
    label: str | None = None,
) -> RunResult:
    """Run startup + warmup, then measure a steady-state window."""
    workload = Workload(config, mode)
    cpu = CPU(cpu_config, mechanism)
    cpu.run(workload.startup_trace())
    workload.reset_usage_stats()  # Table 3 / Fig 4 cover organic execution
    if warmup_requests:
        cpu.run(workload.trace(warmup_requests, include_marks=False))
    cpu.finalize()
    snapshot = cpu.counters.copy()
    marks_before = len(cpu.marks)

    cpu.run(workload.trace(measured_requests, start_id=warmup_requests))
    cpu.finalize()
    window = cpu.counters.delta(snapshot)
    requests = _pair_marks(cpu, marks_before)
    return RunResult(
        label or ("enhanced" if mechanism else "base"),
        window,
        requests,
        workload,
        cpu,
        mechanism,
    )


def run_pair(
    workload_name: str,
    scale,
    abtb_entries: int = 256,
    cpu_config: CPUConfig | None = None,
    mechanism_config: MechanismConfig | None = None,
    seed: int | None = None,
) -> tuple[RunResult, RunResult]:
    """Base vs enhanced over identical traces of a named workload."""
    module = ALL_WORKLOADS[workload_name]
    warmup = scale.warmup(workload_name)
    measured = scale.measured(workload_name)
    results = []
    for label in ("base", "enhanced"):
        cfg = module.config() if seed is None else module.config(seed=seed)
        mech = None
        if label == "enhanced":
            mcfg = mechanism_config or MechanismConfig(abtb_entries=abtb_entries)
            mech = TrampolineSkipMechanism(mcfg)
        results.append(
            run_workload(cfg, mech, warmup, measured, cpu_config, label=label)
        )
    base, enhanced = results
    if base.counters.instructions == 0:
        raise ExperimentError("empty measurement window")
    return base, enhanced


def _pair_marks(cpu: CPU, marks_from: int) -> list[RequestSample]:
    """Convert begin/end marks into per-request samples."""
    out: list[RequestSample] = []
    open_marks: dict[int, tuple[str, int, float]] = {}
    for mark in cpu.marks[marks_from:]:
        tag = mark.tag
        if not (isinstance(tag, tuple) and len(tag) == 3):
            continue
        phase, class_name, request_id = tag
        if phase == "begin":
            open_marks[request_id] = (class_name, mark.instructions, mark.cycles)
        elif phase == "end" and request_id in open_marks:
            class_name, instr0, cyc0 = open_marks.pop(request_id)
            out.append(
                RequestSample(class_name, request_id, mark.instructions - instr0, mark.cycles - cyc0)
            )
    return out
