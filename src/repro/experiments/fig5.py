"""Figure 5 — percentage of trampolines skipped vs ABTB size.

Paper shape: with just 16 entries (192 bytes) more than 75 % of
trampoline executions are skipped in any of the three plotted workloads;
a 256-entry ABTB skips nearly all actively used trampolines.  Steep
sections of each curve reveal ABTB "working sets".
"""

from __future__ import annotations

from repro.analysis.report import Report, Series, Table
from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_workload
from repro.experiments.scale import SMOKE, Scale
from repro.workloads import ALL_WORKLOADS

PLOTTED = ("apache", "firefox", "memcached")
SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def skip_fraction(workload: str, abtb_entries: int, scale: Scale) -> float:
    """Fraction of trampoline executions skipped with a given ABTB size."""
    module = ALL_WORKLOADS[workload]
    result = run_workload(
        module.config(),
        mechanism=TrampolineSkipMechanism(MechanismConfig(abtb_entries=abtb_entries)),
        warmup_requests=scale.warmup(workload),
        measured_requests=scale.measured(workload),
    )
    return result.skip_rate


def sweep(scale: Scale, workloads=PLOTTED, sizes=SIZES) -> dict[str, list[tuple[int, float]]]:
    """The full (size, skip %) sweep of Figure 5."""
    return {
        name: [(n, skip_fraction(name, n, scale)) for n in sizes] for name in workloads
    }


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Figure 5."""
    curves = sweep(scale)
    report = Report("fig5", "Trampolines skipped vs ABTB size")
    table = Table(
        "Figure 5: % trampolines skipped by ABTB size",
        ["ABTB entries"] + [f"{w} (%)" for w in curves],
    )
    for i, size in enumerate(SIZES):
        table.add_row(size, *[round(100 * curves[w][i][1], 1) for w in curves])
    report.tables.append(table)
    for name, points in curves.items():
        report.series.append(
            Series(name, [float(n) for n, _ in points], [100 * s for _, s in points])
        )

    at16 = {w: dict(curves[w])[16] for w in curves}
    at256 = {w: dict(curves[w])[256] for w in curves}
    report.shape_checks = {
        "16 entries skip >75% in every plotted workload": all(v > 0.75 for v in at16.values()),
        "256 entries skip >=90% for apache and memcached": (
            at256["apache"] >= 0.90 and at256["memcached"] >= 0.90
        ),
        "256 entries skip >=80% everywhere": all(v >= 0.80 for v in at256.values()),
        "curves are monotonically non-decreasing": all(
            all(b[1] >= a[1] - 0.02 for a, b in zip(pts, pts[1:])) for pts in curves.values()
        ),
    }
    report.notes.append("16 entries = 192 bytes; 256 entries = 3 KB at 12 B/entry")
    report.notes.append(
        "firefox saturates below the others: its flat popularity means many "
        "one-burst trampolines whose 1-execution learn cost is unavoidable"
    )
    return report


register(Experiment("fig5", "Figure 5", "Skip rate vs ABTB size", run))
