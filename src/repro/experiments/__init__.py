"""Experiments: one runnable reproduction per paper table/figure.

Use the registry to enumerate and run them::

    from repro.experiments import all_experiments, SMOKE
    for exp in all_experiments().values():
        print(exp.run(SMOKE).render())
"""

from repro.experiments.registry import Experiment, all_experiments, get, register
from repro.experiments.runner import RequestSample, RunResult, run_pair, run_workload
from repro.experiments.scale import PAPER, SMOKE, Scale

__all__ = [
    "Experiment",
    "PAPER",
    "RequestSample",
    "RunResult",
    "SMOKE",
    "Scale",
    "all_experiments",
    "get",
    "register",
    "run_pair",
    "run_workload",
]
