"""Experiments: one runnable reproduction per paper table/figure.

Use the registry to enumerate and run them::

    from repro.experiments import all_experiments, SMOKE
    for exp in all_experiments().values():
        print(exp.run(SMOKE).render())
"""

from repro.experiments.registry import Experiment, all_experiments, get, register
from repro.experiments.runner import (
    CampaignResult,
    RequestSample,
    RetryPolicy,
    RunResult,
    pair_key,
    run_campaign,
    run_pair,
    run_workload,
    summarize_pair,
)
from repro.experiments.scale import PAPER, SMOKE, Scale

__all__ = [
    "CampaignResult",
    "Experiment",
    "PAPER",
    "RequestSample",
    "RetryPolicy",
    "RunResult",
    "SMOKE",
    "Scale",
    "all_experiments",
    "get",
    "pair_key",
    "register",
    "run_campaign",
    "run_pair",
    "run_workload",
    "summarize_pair",
]
