"""Section 5.5 — memory savings of the hardware over software patching.

Paper numbers for prefork Apache: patching after fork privatises ~280
code pages per process (~1.1 MB each); a busy server with hundreds of
worker processes wastes on the order of 0.5 GB of RAM.  The proposed
hardware leaves code pages untouched and fully shared (zero overhead),
and patch-before-fork preserves sharing only by abandoning lazy
resolution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.report import Report, Table
from repro.experiments.registry import Experiment, register
from repro.experiments.scale import SMOKE, Scale
from repro.memory.cow import measure as measure_cow
from repro.memory.pages import PAGE_SIZE
from repro.trace.engine import LinkMode
from repro.workloads import apache
from repro.workloads.base import Workload

#: Worker processes simulated directly (page-table granularity).
MODEL_PROCESSES = 12
#: The paper's "busy server" extrapolation point.
BUSY_SERVER_PROCESSES = 500


def measure(scale: Scale, processes: int = MODEL_PROCESSES):
    """Run patched-mode Apache across forked workers; account CoW pages.

    Returns (patch_after_fork, patch_before_fork, hardware) summaries,
    each a dict with per-process and total wasted bytes.
    """
    # --- patch after fork: every worker privatises every patched page ---
    cfg = replace(apache.config(), sites_per_pair=3)
    wl = Workload(cfg, mode=LinkMode.PATCHED)
    parent = wl.address_space
    assert parent is not None and wl.patcher is not None
    children = [parent.fork(f"worker{i}") for i in range(processes)]
    wl.patcher.spaces = children  # workers patch their own text lazily
    baseline = measure_cow(wl.phys, children)
    # Drive requests; the engine patches call sites as they first execute.
    for _ in wl.trace(scale.measured("apache"), include_marks=False):
        pass
    after = measure_cow(wl.phys, children)
    pages = wl.patcher.stats.pages_touched
    per_process = wl.patcher.stats.wasted_bytes_per_process
    patch_after = {
        "pages_patched": pages,
        "per_process_bytes": per_process,
        "total_bytes": after.total_bytes - baseline.total_bytes,
        "cow_faults": after.cow_faults - baseline.cow_faults,
        "busy_server_bytes": per_process * BUSY_SERVER_PROCESSES,
    }

    # --- patch before fork: pages privatised once, then shared ---
    cfg2 = replace(apache.config(), sites_per_pair=3)
    wl2 = Workload(cfg2, mode=LinkMode.PATCHED)
    parent2 = wl2.address_space
    assert parent2 is not None and wl2.patcher is not None
    wl2.patcher.spaces = [parent2]
    records = wl2.patcher.patch_all_sites(wl2.all_call_sites())
    children2 = [parent2.fork(f"worker{i}") for i in range(processes)]
    after2 = measure_cow(wl2.phys, children2 + [parent2])
    patch_before = {
        "pages_patched": wl2.patcher.stats.pages_touched,
        "per_process_bytes": 0,
        "total_bytes": wl2.patcher.stats.pages_touched * PAGE_SIZE,
        "sites_resolved_eagerly": len(records),
        "busy_server_bytes": wl2.patcher.stats.pages_touched * PAGE_SIZE,
    }

    hardware = {
        "pages_patched": 0,
        "per_process_bytes": 0,
        "total_bytes": 0,
        "busy_server_bytes": 0,
    }
    return patch_after, patch_before, hardware


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce the Section 5.5 memory accounting."""
    after, before, hardware = measure(scale)
    report = Report("memsave", "Memory overhead: software patching vs hardware")
    table = Table(
        "Section 5.5: memory overhead of call-site patching (prefork Apache)",
        ["Strategy", "Pages patched", "Bytes/process", "Busy-server bytes (500 procs)"],
    )
    table.add_row("patch after fork (lazy)", after["pages_patched"], after["per_process_bytes"], after["busy_server_bytes"])
    table.add_row("patch before fork (eager)", before["pages_patched"], before["per_process_bytes"], before["busy_server_bytes"])
    table.add_row("proposed hardware", 0, 0, 0)
    report.tables.append(table)
    report.shape_checks = {
        "per-process waste near the paper's ~1.1 MB (0.3-3 MB band)": (
            300_000 <= after["per_process_bytes"] <= 3_000_000
        ),
        "busy-server waste on the order of 0.5 GB (0.1-1.5 GB)": (
            100e6 <= after["busy_server_bytes"] <= 1.5e9
        ),
        "CoW faults occurred in every worker": after["cow_faults"] >= after["pages_patched"],
        "eager patching keeps pages shared but loses laziness": (
            before["per_process_bytes"] == 0 and before["sites_resolved_eagerly"] > 0
        ),
        "hardware has zero memory overhead": hardware["total_bytes"] == 0,
    }
    report.notes.append(
        f"measured with {MODEL_PROCESSES} live page-table processes, "
        f"extrapolated to {BUSY_SERVER_PROCESSES}"
    )
    return report


register(Experiment("memsave", "Section 5.5", "Memory savings accounting", run))
