"""Table 5 — Firefox Peacekeeper scores (higher is better).

Paper shape: every category's score improves under the proposed hardware:
Rendering +2.7 %, DOM operations +1.8 %, Text parsing +0.8 %, with small
gains for HTML5 Canvas and Data.

Scores here are benchmark iterations per simulated second per category,
the same ops/time construction Peacekeeper uses.
"""

from __future__ import annotations

from repro.analysis.report import Report, Table
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_pair
from repro.experiments.scale import SMOKE, Scale
from repro.uarch.timing import TimingModel
from repro.workloads.firefox import PAPER_TABLE5


def measure(scale: Scale) -> dict[str, tuple[float, float]]:
    """(base, enhanced) score per Peacekeeper category."""
    base, enhanced = run_pair("firefox", scale)
    timing = TimingModel()
    out: dict[str, tuple[float, float]] = {}
    for name in base.class_names():
        scores = []
        for result in (base, enhanced):
            samples = result.requests_of(name)
            total_s = sum(timing.cycles_to_seconds(r.cycles) for r in samples)
            scores.append(len(samples) / total_s if total_s else 0.0)
        out[name] = (scores[0], scores[1])
    return out


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Table 5."""
    measured = measure(scale)
    report = Report("table5", "Firefox Peacekeeper scores, base vs enhanced")
    table = Table(
        "Table 5: Peacekeeper scores (higher is better)",
        ["Category", "Paper base", "Paper enh", "Meas base", "Meas enh", "Meas gain %"],
    )
    checks: dict[str, bool] = {}
    for name, (b, e) in measured.items():
        pb, pe = PAPER_TABLE5.get(name, (0.0, 0.0))
        gain = 100.0 * (e - b) / b if b else 0.0
        table.add_row(name, pb, pe, round(b, 1), round(e, 1), round(gain, 2))
        checks[f"{name}: enhanced score not materially lower"] = e >= b * 0.995
    report.tables.append(table)
    gains = {n: (e - b) / b for n, (b, e) in measured.items() if b}
    checks["aggregate score improves"] = sum(gains.values()) > 0
    checks["gains bounded by the paper's 3% ceiling"] = all(g <= 0.03 for g in gains.values())
    report.shape_checks = checks
    report.notes.append(
        "scores are iterations per simulated second; Firefox's library-call "
        "rate (0.72 PKI) bounds achievable gains — our second-order cache "
        "effects are smaller than the real system's, so gains are ~10x "
        "smaller than the paper's 0.8-2.7%"
    )
    return report


register(Experiment("table5", "Table 5", "Firefox Peacekeeper scores", run))
