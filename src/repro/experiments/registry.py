"""Experiment registry: one entry per paper table/figure.

Each experiment module registers a callable ``run(scale) -> Report``;
benchmarks and the CLI-style examples look experiments up by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.report import Report
from repro.errors import ExperimentError
from repro.experiments.scale import Scale


@dataclass(frozen=True)
class Experiment:
    """A runnable reproduction of one paper artefact."""

    experiment_id: str
    paper_ref: str
    description: str
    run: Callable[[Scale], Report]


_REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (idempotent per id)."""
    _REGISTRY[experiment.experiment_id] = experiment
    return experiment


def get(experiment_id: str) -> Experiment:
    """Look an experiment up by id."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> dict[str, Experiment]:
    """All registered experiments keyed by id."""
    _ensure_loaded()
    return dict(_REGISTRY)


def _ensure_loaded() -> None:
    """Import every experiment module so registration side effects run."""
    from repro.experiments import (  # noqa: F401
        ablation,
        fig4,
        fig5,
        fig6,
        fig7,
        fig8,
        hwcost,
        memsave,
        table2,
        table3,
        table4,
        table5,
    )
