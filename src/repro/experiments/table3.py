"""Table 3 — number of distinct trampolines used by program execution.

Paper values: Apache 501, Firefox 2457, Memcached 33, MySQL 1611.
Shape: Firefox exercises by far the most distinct library calls despite
calling them least often; Memcached uses a tiny, fixed set.

Distinct counts are measured over the warmup + measurement window (the
synthetic startup sweep is excluded), so the number is what the workload
*organically* exercises at the given scale; full coverage of the design
universe needs the larger presets.
"""

from __future__ import annotations

from repro.analysis.report import Report, Table
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_workload
from repro.experiments.scale import SMOKE, Scale
from repro.workloads import ALL_WORKLOADS

PAPER_DISTINCT = {"apache": 501, "firefox": 2457, "memcached": 33, "mysql": 1611}


def measure_distinct(scale: Scale) -> dict[str, tuple[int, int]]:
    """(distinct, total) trampoline executions per workload."""
    out: dict[str, tuple[int, int]] = {}
    for name, module in ALL_WORKLOADS.items():
        result = run_workload(
            module.config(),
            mechanism=None,
            warmup_requests=scale.warmup(name),
            measured_requests=scale.measured(name),
        )
        out[name] = (
            result.workload.distinct_trampolines_touched,
            sum(result.workload.pair_counts.values()),
        )
    return out


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Table 3."""
    measured = measure_distinct(scale)
    universe = {n: m.config().distinct_pair_target for n, m in ALL_WORKLOADS.items()}
    diversity = {n: d / t if t else 0.0 for n, (d, t) in measured.items()}
    table = Table(
        "Table 3: Number of trampolines used by program execution",
        ["Workload", "Paper", "Measured (window)", "Diversity (distinct/call)", "Design universe"],
    )
    for name in sorted(measured):
        table.add_row(
            name, PAPER_DISTINCT[name], measured[name][0], round(diversity[name], 4), universe[name]
        )

    report = Report("table3", "Distinct trampolines exercised")
    report.tables.append(table)
    report.shape_checks = {
        "firefox has the most diverse call stream": max(diversity, key=diversity.get) == "firefox",
        "memcached has the least diverse call stream": min(diversity, key=diversity.get)
        == "memcached",
        "memcached uses a tiny fixed set (<50)": measured["memcached"][0] < 50,
        "design universes equal the paper's counts": all(
            universe[w] == PAPER_DISTINCT[w] for w in universe
        ),
    }
    report.notes.append(
        "in-window distinct counts grow toward the design universe with "
        "scale (the paper measured ~10^12 instructions); the universes are "
        "calibrated to the paper's Table 3 and diversity ratios preserve "
        "the paper's ordering at any scale"
    )
    return report


register(Experiment("table3", "Table 3", "Distinct trampolines used", run))
