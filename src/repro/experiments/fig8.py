"""Figure 8 + Table 6 — MySQL response-time CDFs and percentiles.

Paper shape: for both New Order and Payment, the enhanced CDF reaches any
given served fraction at a lower response time; Table 6's 50/75/90/95th
percentiles all improve, and Payment is roughly 2.5× lighter than
New Order.  (The paper reports milliseconds; the model's requests are
smaller, so units here are microseconds with relative shape preserved.)
"""

from __future__ import annotations

from repro.analysis.cdf import CDF, dominates
from repro.analysis.report import Report, Series, Table
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_pair
from repro.experiments.scale import SMOKE, Scale
from repro.workloads.mysql import PAPER_TABLE6_MS

NOISE_SIGMA = 0.10
QUANTILES = (50, 75, 90, 95)


def measure(scale: Scale):
    """(base_cdf, enhanced_cdf) per transaction type."""
    base, enhanced = run_pair("mysql", scale)
    out = {}
    for name in ("New Order", "Payment"):
        out[name] = (
            CDF.of(base.latencies_us(name, noise_sigma=NOISE_SIGMA)),
            CDF.of(enhanced.latencies_us(name, noise_sigma=NOISE_SIGMA)),
        )
    return out


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Figure 8 and Table 6."""
    cdfs = measure(scale)
    report = Report("fig8_table6", "MySQL response-time CDFs and percentiles")
    table = Table(
        "Table 6: MySQL response-time percentiles (microseconds, model units)",
        ["Request", "Percentile", "Paper base (ms)", "Paper enh (ms)", "Meas base", "Meas enh"],
    )
    checks: dict[str, bool] = {}
    for name, (base_cdf, enh_cdf) in cdfs.items():
        for q in QUANTILES:
            paper = PAPER_TABLE6_MS[name]
            table.add_row(
                name,
                f"{q}%",
                paper["base"][q],
                paper["enhanced"][q],
                round(base_cdf.percentile(q), 1),
                round(enh_cdf.percentile(q), 1),
            )
        checks[f"{name}: enhanced at or below base at all reported percentiles"] = dominates(
            enh_cdf, base_cdf, QUANTILES
        )
        pts_b, pts_e = base_cdf.sampled(24), enh_cdf.sampled(24)
        report.series.append(Series(f"{name}/base", [p[0] for p in pts_b], [p[1] for p in pts_b]))
        report.series.append(Series(f"{name}/enhanced", [p[0] for p in pts_e], [p[1] for p in pts_e]))
    report.tables.append(table)
    new_order_med = cdfs["New Order"][0].percentile(50)
    payment_med = cdfs["Payment"][0].percentile(50)
    checks["New Order ~2-3x heavier than Payment (paper: 43.5 vs 17.9 ms)"] = (
        1.8 <= new_order_med / payment_med <= 3.5
    )
    report.shape_checks = checks
    report.notes.append("model request sizes are scaled down; percentile *ratios* reproduce")
    return report


register(Experiment("fig8_table6", "Figure 8 / Table 6", "MySQL latency CDFs", run))
