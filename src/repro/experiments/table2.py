"""Table 2 — trampoline instructions per kilo-instruction.

Paper values: Apache 12.23, Firefox 0.72, Memcached 1.75, MySQL 5.56.
Shape: Apache >> MySQL > Memcached > Firefox, with Apache around 1 % of
all executed instructions spent in trampolines.
"""

from __future__ import annotations

from repro.analysis.report import Report, Table
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_workload
from repro.experiments.scale import SMOKE, Scale
from repro.workloads import ALL_WORKLOADS

PAPER_PKI = {"apache": 12.23, "firefox": 0.72, "memcached": 1.75, "mysql": 5.56}


def measure_pki(scale: Scale) -> dict[str, float]:
    """Trampoline PKI per workload over a steady-state window."""
    out: dict[str, float] = {}
    for name, module in ALL_WORKLOADS.items():
        result = run_workload(
            module.config(),
            mechanism=None,
            warmup_requests=scale.warmup(name),
            measured_requests=scale.measured(name),
        )
        out[name] = result.counters.pki("trampoline_instructions")
    return out


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Table 2."""
    measured = measure_pki(scale)
    table = Table(
        "Table 2: Instructions in trampoline per kilo instruction",
        ["Workload", "Paper PKI", "Measured PKI"],
    )
    for name in sorted(measured):
        table.add_row(name, PAPER_PKI[name], round(measured[name], 2))

    order = sorted(measured, key=measured.get, reverse=True)
    report = Report("table2", "Trampoline instructions PKI (opportunity)")
    report.tables.append(table)
    report.shape_checks = {
        "ordering apache > mysql > memcached > firefox": order
        == ["apache", "mysql", "memcached", "firefox"],
        "apache ~1% of instructions in trampolines": 8.0 <= measured["apache"] <= 17.0,
        "each workload within 35% of the paper's value": all(
            abs(measured[w] - PAPER_PKI[w]) / PAPER_PKI[w] <= 0.35 for w in measured
        ),
    }
    return report


register(Experiment("table2", "Table 2", "Trampoline instructions PKI", run))
