"""Figure 7 — Memcached GET/SET processing-time histograms.

Paper shape: plotted in TSC units (kilocycles), the main peak of the
enhanced histogram sits left of the base peak for both request types —
an average reduction in request processing time — while the overall
distribution shape is preserved.
"""

from __future__ import annotations

from repro.analysis.histogram import Histogram
from repro.analysis.report import Report, Series, Table
from repro.analysis.stats import mean
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import run_pair
from repro.experiments.scale import SMOKE, Scale

#: The paper plots processing time in TSC ticks / 1000.
KCYCLES = 1000.0


def measure(scale: Scale):
    """Per-type (base, enhanced) processing times in kilocycles."""
    base, enhanced = run_pair("memcached", scale)
    out = {}
    for name in ("GET", "SET"):
        out[name] = (
            [r.cycles / KCYCLES for r in base.requests_of(name)],
            [r.cycles / KCYCLES for r in enhanced.requests_of(name)],
        )
    return out


def run(scale: Scale = SMOKE) -> Report:
    """Reproduce Figure 7."""
    samples = measure(scale)
    report = Report("fig7", "Memcached processing-time histograms")
    table = Table(
        "Figure 7 summary (TSC kilocycles)",
        ["Request", "Base peak", "Enh peak", "Peak shift", "Base mean", "Enh mean"],
    )
    checks: dict[str, bool] = {}
    for name, (base_kc, enh_kc) in samples.items():
        lo = min(min(base_kc), min(enh_kc))
        hi = max(max(base_kc), max(enh_kc))
        # Bin count scales with the sample so sparse classes (SET is 10%
        # of the mix) still produce a stable main peak.
        bins = max(8, min(30, len(base_kc) // 8))
        base_h = Histogram.of(base_kc, bins=bins, lo=lo, hi=hi)
        enh_h = Histogram.of(enh_kc, bins=bins, lo=lo, hi=hi)
        shift = enh_h.mode_shift(base_h)
        table.add_row(
            name,
            round(base_h.peak_value(), 2),
            round(enh_h.peak_value(), 2),
            round(shift, 2),
            round(mean(base_kc), 2),
            round(mean(enh_kc), 2),
        )
        centres = [(base_h.edges[i] + base_h.edges[i + 1]) / 2 for i in range(len(base_h.counts))]
        report.series.append(Series(f"{name}/base", centres, base_h.fractions()))
        report.series.append(Series(f"{name}/enhanced", centres, enh_h.fractions()))
        bin_width = (hi - lo) / bins if hi > lo else 1.0
        checks[f"{name}: enhanced peak at or left of base (within one bin)"] = (
            enh_h.peak_value() <= base_h.peak_value() + bin_width
        )
        checks[f"{name}: enhanced mean processing time lower"] = mean(enh_kc) <= mean(base_kc)
    report.tables.append(table)
    report.shape_checks = checks
    return report


register(Experiment("fig7", "Figure 7", "Memcached GET/SET histograms", run))
