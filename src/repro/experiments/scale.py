"""Scale presets for experiments.

The paper measured hours of warm-server execution; a pure-Python model
cannot, so every experiment takes a :class:`Scale` choosing how many
requests to simulate.  All reported *shapes* (who wins, orderings,
crossovers) hold at every preset; only statistical smoothness improves
with size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Scale:
    """Per-workload (warmup_requests, measured_requests) preset."""

    name: str
    requests: dict[str, tuple[int, int]]

    def warmup(self, workload: str) -> int:
        """Warmup requests excluded from the measurement window."""
        return self._get(workload)[0]

    def measured(self, workload: str) -> int:
        """Requests inside the measurement window."""
        return self._get(workload)[1]

    def _get(self, workload: str) -> tuple[int, int]:
        try:
            return self.requests[workload]
        except KeyError:
            raise ConfigError(f"scale {self.name!r} has no preset for {workload!r}") from None


#: CI-sized: each experiment in seconds.
SMOKE = Scale(
    "smoke",
    {
        "apache": (14, 30),
        "memcached": (40, 250),
        "mysql": (12, 30),
        "firefox": (4, 14),
    },
)

#: Bench-sized: the default for the benchmark harness (a few minutes total).
PAPER = Scale(
    "paper",
    {
        "apache": (30, 220),
        "memcached": (150, 1500),
        "mysql": (25, 160),
        "firefox": (20, 120),
    },
)
