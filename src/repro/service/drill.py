"""Fleet-level chaos drill: kill the leader mid-campaign and prove
nothing was lost.

``repro drill`` runs one scripted high-availability exercise over a
*live* campaign, entirely in-process (threads, real HTTP on loopback):

1. a **leader** manager serves a campaign to a small worker fleet whose
   transports all route through one deterministic
   :class:`~repro.chaos.net.NetFaultInjector` (drops, delays, duplicated
   POSTs, truncated responses, injected 502s — all decided by seed);
2. one worker **vanishes** (the in-process SIGKILL analog) holding a
   lease, so the expiry path runs under fire too;
3. after the first shard completions the leader is **killed**
   non-gracefully; the tailing :class:`~repro.service.standby.
   StandbyManager` detects the loss, **promotes** itself at a bumped
   fencing epoch, and starts serving on the standby endpoint the
   workers already hold as their failover target;
4. a **partition window** then cuts worker→new-leader traffic briefly,
   exercising the retry/rotate path against the promoted manager;
5. after the campaign completes, two **fencing probes** assert both
   rejection directions: a stale-epoch write to the new leader, and a
   new-epoch write to the *revived* old leader, must both answer
   HTTP 409 ``fenced`` — never a merge.

The drill then holds the run to the acceptance bar:

* the promoted manager's :class:`~repro.experiments.runner.
  CampaignResult` must be **counter-for-counter identical** to a serial,
  fault-free ``run_campaign`` of the same spec;
* **zero re-execution**: the fleet's delivered-shard total equals the
  shard count — failover re-leased only what dead workers held;
* the merged incident log (leader + standby/promoted + injector)
  validates, and contains ``leader_lost``, ``promoted``,
  ``fenced_write`` and ``net_fault``.

Exit semantics match ``repro submit``: 0 complete, 3 degraded (still
counter-identical to serial), 1 failed drill.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.net import FaultyTransport, NetFaultInjector, NetFaultPolicy
from repro.errors import ServiceError
from repro.experiments.runner import CampaignResult, run_campaign
from repro.experiments.scale import PAPER, SMOKE
from repro.resilience.incidents import (
    IncidentRecorder,
    load_incident_log,
    validate_incident_log,
)
from repro.resilience.supervisor import SupervisorPolicy
from repro.service.api import ManagerServer
from repro.service.manager import CampaignManager
from repro.service.standby import StandbyManager
from repro.service.worker import (
    ManagerClient,
    WorkerAgent,
    WorkerChaos,
    WorkerVanished,
)

_SCALES = {"smoke": SMOKE, "paper": PAPER}

#: Incident kinds the drill's merged log must contain to pass.
REQUIRED_INCIDENTS = ("leader_lost", "promoted", "fenced_write", "net_fault")


def _default_net_policy(seed: int) -> NetFaultPolicy:
    """The stock drill fault mix: hostile enough to matter, mild enough
    that heartbeats survive and no lease expires spuriously."""
    return NetFaultPolicy(
        seed=seed,
        drop=0.05,
        delay=0.08,
        delay_s=0.01,
        duplicate=0.06,
        truncate=0.04,
        mangle=0.04,
    )


@dataclass(frozen=True)
class DrillSpec:
    """One scripted drill (defaults are the CI smoke configuration)."""

    workloads: tuple[str, ...] = ("apache",)
    abtb_sizes: tuple[int, ...] = (16, 64, 256)
    scale: str = "smoke"
    backend: str = "reference"
    seed: int = 1337
    workers: int = 3
    #: Worker 0 vanishes (in-process SIGKILL) on this lease grant (0 = off).
    vanish_worker_lease: int = 1
    #: Kill the leader once this many shards have completed.
    kill_leader_after_completions: int = 1
    #: Cut worker→new-leader traffic for this long after promotion (0 = off).
    partition_window_s: float = 0.4
    #: Probabilistic fault mix; None = :func:`_default_net_policy` (seeded).
    net: NetFaultPolicy | None = None
    shard_deadline_s: float = 6.0
    max_shard_failures: int = 5
    misses_to_promote: int = 4
    standby_poll_s: float = 0.1
    deadline_s: float = 180.0

    def campaign_body(self) -> dict:
        # No "seed": the serial reference (run_campaign) has no seed
        # knob either, and the two must hash to the same result keys.
        # spec.seed drives the *fault injector*, not the workloads.
        return {
            "workloads": list(self.workloads),
            "abtb_sizes": list(self.abtb_sizes),
            "scale": self.scale,
            "backend": self.backend,
        }

    @property
    def shard_count(self) -> int:
        return len(self.workloads) * len(self.abtb_sizes)


@dataclass
class DrillReport:
    """Everything the drill asserted, plus the evidence trail."""

    campaign_id: str = ""
    state: str = ""
    shard_count: int = 0
    executed: int = 0
    counters_match: bool = False
    zero_reexecution: bool = False
    probes_fenced: bool = False
    serial: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)
    worker_stats: list = field(default_factory=list)
    fault_counts: dict = field(default_factory=dict)
    incident_counts: dict = field(default_factory=dict)
    missing_kinds: list = field(default_factory=list)
    log_problems: list = field(default_factory=list)
    incidents_path: str = ""
    timeline: list = field(default_factory=list)
    failovers: int = 0
    duration_s: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return (
            not self.error
            and self.state in ("complete", "degraded")
            and self.counters_match
            and self.zero_reexecution
            and self.probes_fenced
            and not self.missing_kinds
            and not self.log_problems
        )

    @property
    def exit_code(self) -> int:
        if not self.ok:
            return 1
        return 3 if self.state == "degraded" else 0

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "exit_code": self.exit_code,
            "campaign_id": self.campaign_id,
            "state": self.state,
            "shard_count": self.shard_count,
            "executed": self.executed,
            "counters_match": self.counters_match,
            "zero_reexecution": self.zero_reexecution,
            "probes_fenced": self.probes_fenced,
            "serial": self.serial,
            "service": self.service,
            "worker_stats": list(self.worker_stats),
            "fault_counts": dict(self.fault_counts),
            "incident_counts": dict(self.incident_counts),
            "missing_kinds": list(self.missing_kinds),
            "log_problems": list(self.log_problems),
            "incidents_path": self.incidents_path,
            "timeline": list(self.timeline),
            "failovers": self.failovers,
            "duration_s": round(self.duration_s, 3),
            "error": self.error,
        }

    def render(self) -> str:
        lines = [
            f"drill: {'PASS' if self.ok else 'FAIL'} "
            f"(campaign {self.campaign_id or '?'} {self.state or 'unknown'}, "
            f"{self.duration_s:.1f}s)",
            f"  counters vs serial : {'identical' if self.counters_match else 'DIVERGED'}",
            f"  shard executions   : {self.executed}/{self.shard_count}"
            + ("" if self.zero_reexecution else "  (RE-EXECUTION)"),
            f"  fencing probes     : "
            + ("both rejected (409)" if self.probes_fenced else "NOT FENCED"),
            f"  injected faults    : "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(self.fault_counts.items()))
                or "none"
            ),
            f"  incident log       : {self.incidents_path or '-'}"
            + (
                f"  (missing: {', '.join(self.missing_kinds)})"
                if self.missing_kinds
                else ""
            )
            + (f"  ({len(self.log_problems)} schema problem(s))" if self.log_problems else ""),
        ]
        if self.error:
            lines.append(f"  error              : {self.error}")
        return "\n".join(lines)


def _reserve_port() -> int:
    """Pick a loopback port for the standby *before* promotion, so the
    worker fleet can hold ``[leader, standby]`` from the start.
    ``allow_reuse_address`` on ManagerServer makes the rebind safe."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _result_counters(result: CampaignResult) -> dict:
    return {
        "completed": len(result.completed),
        "failed": len(result.failed),
        "quarantined": len(result.quarantined),
        "attempts": sum(result.attempts.values()),
    }


def run_drill(
    spec: DrillSpec,
    root_dir: str | Path,
    log=lambda message: None,
) -> DrillReport:
    """Run one chaos drill under ``root_dir`` (see module doc).

    Never raises for a *failed* drill — failures land in the report with
    ``exit_code == 1``; only setup errors (bad spec, unusable root)
    raise.  ``log`` receives human-oriented progress lines.
    """
    if spec.scale not in _SCALES:
        raise ServiceError(f"drill scale {spec.scale!r} not in {sorted(_SCALES)}")
    root = Path(root_dir)
    root.mkdir(parents=True, exist_ok=True)
    cache_dir = root / "machine-cache"
    report = DrillReport(shard_count=spec.shard_count)
    t0 = time.monotonic()

    def mark(event: str, **detail) -> None:
        entry = {"t": round(time.monotonic() - t0, 3), "event": event, **detail}
        report.timeline.append(entry)
        log(f"[{entry['t']:7.3f}s] {event}"
            + (f" {detail}" if detail else ""))

    # ---- serial reference (fault-free ground truth; shares the machine
    # cache with the fleet, exactly like the service acceptance test).
    mark("serial_reference_start")
    serial = run_campaign(
        list(spec.workloads),
        _SCALES[spec.scale],
        abtb_sizes=tuple(spec.abtb_sizes),
        machine_cache_dir=cache_dir,
        backend=spec.backend,
    )
    report.serial = _result_counters(serial)
    mark("serial_reference_done", **report.serial)

    # ---- topology: leader + pre-reserved standby endpoint + injector.
    policy = SupervisorPolicy(
        shard_deadline_s=spec.shard_deadline_s,
        max_shard_failures=spec.max_shard_failures,
    )
    leader_recorder = IncidentRecorder()
    ha_recorder = IncidentRecorder()  # standby + promoted manager
    net_recorder = IncidentRecorder()
    injector = NetFaultInjector(
        policy=spec.net or _default_net_policy(spec.seed),
        recorder=net_recorder,
    )
    transport = FaultyTransport(injector)

    leader_manager = CampaignManager(
        root / "leader", policy=policy, recorder=leader_recorder
    )
    leader_server = ManagerServer(leader_manager, port=0)
    leader_server.start()
    leader_url = leader_server.url
    leader_port = leader_server.port
    standby_port = _reserve_port()
    standby_url = f"http://127.0.0.1:{standby_port}"
    endpoints = [leader_url, standby_url]
    mark("leader_up", url=leader_url, standby_url=standby_url)

    standby = StandbyManager(
        root / "standby",
        leader_url=leader_url,
        policy=policy,
        recorder=ha_recorder,
        poll_interval_s=spec.standby_poll_s,
        misses_to_promote=spec.misses_to_promote,
    )
    promoted_box: list[CampaignManager | None] = [None]
    standby_thread = threading.Thread(
        target=lambda: promoted_box.__setitem__(0, standby.run()),
        name="drill-standby",
        daemon=True,
    )
    standby_thread.start()

    # ---- the fleet: every client holds [leader, standby] and routes
    # through the shared injector; worker 0 is doomed to vanish.
    agents: list[WorkerAgent] = []
    threads: list[threading.Thread] = []
    stats: list[dict | None] = [None] * spec.workers
    for index in range(spec.workers):
        client = ManagerClient(
            endpoints,
            retries=120,
            retry_delay_s=0.05,
            timeout_s=5.0,
            transport=transport,
        )
        chaos = None
        if spec.vanish_worker_lease and index == 0:
            chaos = WorkerChaos(vanish_after_leases=spec.vanish_worker_lease)
        agent = WorkerAgent(
            client,
            name=f"drill-w{index}",
            poll_interval_s=0.05,
            machine_cache_dir=str(cache_dir),
            chaos=chaos,
        )
        agents.append(agent)

        def _run(agent=agent, index=index) -> None:
            try:
                stats[index] = agent.run()
            except WorkerVanished:
                mark("worker_vanished", worker=agent.worker_id or index)
                stats[index] = {
                    "worker_id": agent.worker_id,
                    "shards_done": agent.shards_done,
                    "shards_failed": agent.shards_failed,
                    "vanished": True,
                }
            except ServiceError as exc:
                stats[index] = {
                    "worker_id": agent.worker_id,
                    "shards_done": agent.shards_done,
                    "shards_failed": agent.shards_failed,
                    "error": str(exc),
                }

        threads.append(
            threading.Thread(target=_run, name=f"drill-w{index}", daemon=True)
        )

    def _shutdown() -> None:
        for agent in agents:
            agent.stop_event.set()
        standby.stop()
        injector.heal()
        for thread in threads:
            thread.join(timeout=10.0)
        standby_thread.join(timeout=10.0)

    old_leader_server: ManagerServer | None = None
    new_server: ManagerServer | None = None
    try:
        for thread in threads:
            thread.start()

        # ---- submit on the control plane (clean transport: the drill
        # script itself is not the system under test).
        control = ManagerClient(endpoints, retries=60, retry_delay_s=0.05)
        status, body = control.post("/campaigns", spec.campaign_body())
        if status not in (200, 201):
            raise ServiceError(f"drill submit answered {status}: {body}")
        cid = body["campaign_id"]
        report.campaign_id = cid
        mark("campaign_submitted", campaign_id=cid)

        def _wait(predicate, what: str, interval: float = 0.05) -> None:
            deadline = t0 + spec.deadline_s
            while not predicate():
                if time.monotonic() > deadline:
                    raise ServiceError(f"drill deadline expired waiting for {what}")
                time.sleep(interval)

        # ---- phase 1: let the campaign draw first blood, then kill the
        # leader with no warning (journal left open = crash).  The kill
        # is staged like a real failover, not a convenient one: first a
        # worker→leader partition (the fleet's in-flight deliveries now
        # retry until they reach the *new* leader — the bankable-late-
        # completion path), then a wait for the standby to drain the
        # leader's journal tail.  Without the partition+drain, any
        # completion landing in the last replication interval would be
        # silently lost and its shard re-executed, which is exactly what
        # the zero-re-execution bar forbids.
        def _leader_progressed() -> bool:
            status_dict = leader_manager.status(cid)
            if status_dict is None:
                return False
            return (
                status_dict["shards"]["completed"]
                >= spec.kill_leader_after_completions
            )

        _wait(_leader_progressed, "first shard completion(s) on the leader")
        injector.partition(leader_url, direction="request")
        mark("leader_isolated_from_fleet", url=leader_url)

        def _replicated() -> bool:
            # Exchanges already past the partition check can still land
            # and journal, so require catch-up against the *live* seq.
            return standby.applied_seq >= leader_manager.journal.seq

        _wait(_replicated, "standby replication catch-up")
        leader_server.stop(graceful=False)
        mark(
            "leader_killed",
            completions=leader_manager.status(cid)["shards"]["completed"],
            seq=leader_manager.journal.seq,
        )

        # ---- phase 2: the standby notices, promotes, and the drill
        # serves the promoted manager on the endpoint workers hold.
        _wait(
            standby.promoted_event.is_set,
            "standby promotion",
        )
        promoted = promoted_box[0]
        if promoted is None:  # pragma: no cover - promoted_event guards this
            raise ServiceError("standby stopped without promoting")
        report.failovers = 1
        new_server = ManagerServer(promoted, port=standby_port)
        new_server.start()
        # The old endpoint now answers with real connection-refused;
        # keeping the injected partition up would only double-count.
        injector.heal(leader_url)
        mark("standby_promoted", epoch=promoted.epoch, url=new_server.url)

        # ---- phase 3: one partition window against the new leader.
        if spec.partition_window_s > 0:
            injector.partition(standby_url, direction="request")
            mark("partition_start", url=standby_url, direction="request")
            time.sleep(spec.partition_window_s)
            injector.heal(standby_url)
            mark("partition_healed", url=standby_url)

        # ---- phase 4: run to completion on the promoted manager.
        def _campaign_done() -> bool:
            status_dict = promoted.status(cid)
            return status_dict is not None and status_dict["state"] in (
                "complete",
                "degraded",
            )

        _wait(_campaign_done, "campaign completion after failover")
        report.state = promoted.status(cid)["state"]
        mark("campaign_done", state=report.state)

        # ---- drain the fleet before counting anything.
        for agent in agents:
            agent.stop_event.set()
        for thread in threads:
            thread.join(timeout=15.0)
        report.worker_stats = [s for s in stats if s is not None]
        report.executed = sum(s.get("shards_done", 0) for s in report.worker_stats)
        report.zero_reexecution = report.executed == spec.shard_count

        # ---- fencing probes, both directions (after completion so the
        # probe cannot perturb the run it is judging).
        probe = ManagerClient(new_server.url, retries=0, timeout_s=5.0)
        probe_body = {
            "campaign_id": cid,
            "key": "drill-fencing-probe",
            "worker_id": "drill-probe",
            "outcome": {"failed": "fencing probe (must be rejected)"},
        }
        status_stale, body_stale = probe.post(
            "/shards/complete", {**probe_body, "epoch": max(1, promoted.epoch - 1)}
        )
        stale_fenced = status_stale == 409 and body_stale.get("fenced") is True
        mark("probe_stale_epoch_to_new_leader", status=status_stale)

        # Revive the dead leader on its old port; a write stamped with
        # the *new* epoch must bounce off its stale journal too.
        old_leader_server = ManagerServer(leader_manager, port=leader_port)
        old_leader_server.start()
        revived = ManagerClient(old_leader_server.url, retries=0, timeout_s=5.0)
        status_new, body_new = revived.post(
            "/shards/complete", {**probe_body, "epoch": promoted.epoch}
        )
        revived_fenced = status_new == 409 and body_new.get("fenced") is True
        mark("probe_new_epoch_to_revived_leader", status=status_new)
        report.probes_fenced = stale_fenced and revived_fenced

        # ---- the acceptance bar: counter-for-counter vs serial.
        result = promoted.result(cid)
        if result is None:
            raise ServiceError("campaign finished but result() returned None")
        report.service = _result_counters(result)
        report.counters_match = (
            result.completed == serial.completed
            and result.failed == serial.failed
            and result.quarantined == serial.quarantined
            and result.attempts == serial.attempts
        )
        mark("counters_compared", match=report.counters_match)
    except ServiceError as exc:
        report.error = str(exc)
        mark("drill_error", error=report.error)
    finally:
        _shutdown()
        if new_server is not None:
            new_server.stop(graceful=True)
        if old_leader_server is not None:
            old_leader_server.stop(graceful=False)
        else:
            leader_server.stop(graceful=False)

    # ---- merge every incident stream into one validated log.
    merged = IncidentRecorder()
    for recorder in (leader_recorder, ha_recorder, net_recorder):
        merged.extend_dicts(recorder.as_dicts())
    incidents_path = root / "incidents.jsonl"
    merged.write_jsonl(incidents_path)
    report.incidents_path = str(incidents_path)
    report.fault_counts = dict(injector.counts)
    report.log_problems = validate_incident_log(incidents_path)
    if not report.log_problems:
        counts: dict[str, int] = {}
        for incident in load_incident_log(incidents_path):
            counts[incident.kind] = counts.get(incident.kind, 0) + 1
        report.incident_counts = counts
        report.missing_kinds = [
            kind for kind in REQUIRED_INCIDENTS if kind not in counts
        ]
    else:
        report.missing_kinds = list(REQUIRED_INCIDENTS)
    report.duration_s = time.monotonic() - t0
    mark("drill_finished", ok=report.ok, exit_code=report.exit_code)
    return report
