"""Standby manager: WAL-tailing replication + promotion on leader loss.

The HA half of the campaign service.  A :class:`StandbyManager` runs
beside (or far from) the leader and keeps a byte-faithful mirror of the
leader's durable state by *tailing its journal* over the replication
endpoints (:mod:`repro.service.api`):

* ``GET /replication/state?since=N`` — the journal records newer than
  the follower's applied seq (or a full snapshot when the follower is
  older than the leader's last compaction), plus the leader's fencing
  epoch and result-store key list, all read under one leader lock;
* ``GET /replication/result?key=K`` — one content-addressed shard
  result, mirrored into the follower's own store.

Ordering is what makes the mirror trustworthy: the leader stores a
result *before* journaling its completion, and one replication pull
reads journal-tail and key-list under the same lock — so any completion
the follower applies has its result fetchable in the same round.  A
promoted standby therefore recovers exactly like a restarted leader
would, with zero lost completions.

**Promotion** (:meth:`StandbyManager.promote`) happens after
``misses_to_promote`` consecutive failed sync pulls (``leader_lost``
incident): the standby bumps the durable fencing epoch to
``leader_epoch + 1``, then constructs a full
:class:`~repro.service.manager.CampaignManager` over the mirrored data
directory — journal replay, store reconciliation, shard requeue, the
whole recovery path — and records a ``promoted`` incident.  The epoch
bump is what *fences* the old leader: if it revives, every write it
receives stamped with the new epoch is rejected (its journal is no
longer the truth), and every stale-epoch write it forwarded is rejected
by the new leader.  No state is ever silently merged across a
promotion.

The standby never serves worker traffic before promotion; workers hold
an ordered endpoint list ``[leader, standby]`` and only reach the
standby's port once the promoted manager is serving on it.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.errors import ServiceError
from repro.resilience.incidents import IncidentKind, IncidentRecorder
from repro.resilience.supervisor import SupervisorPolicy
from repro.service.journal import Journal, load_epoch, store_epoch
from repro.service.manager import CampaignManager
from repro.service.store import ResultStore
from repro.service.worker import ManagerClient


class StandbyManager:
    """Tails a leader's WAL; promotes itself when the leader is lost.

    Args:
        data_dir: the standby's *own* data directory (journal mirror +
            result mirror + epoch file); must not be the leader's.
        leader_url: the leader's base URL (ignored when ``client`` is
            given — drills pass a fault-injected client).
        client: transport to the leader; ``retries=0`` is deliberate so
            the standby's own miss counter is the failure detector.
        policy: lease policy handed to the promoted manager.
        recorder: incident recorder, shared with the promoted manager so
            ``leader_lost``/``promoted`` appear in its ``/incidents``.
        poll_interval_s: seconds between replication pulls.
        misses_to_promote: consecutive failed pulls before promotion.
        clock: monotonic time source for the promoted manager.
    """

    def __init__(
        self,
        data_dir: str | Path,
        leader_url: str = "",
        client: ManagerClient | None = None,
        policy: SupervisorPolicy | None = None,
        recorder: IncidentRecorder | None = None,
        poll_interval_s: float = 0.2,
        misses_to_promote: int = 5,
        clock=time.monotonic,
        snapshot_every: int = 50,
        reclaim_grace_s: float | None = None,
    ) -> None:
        if client is None and not leader_url:
            raise ServiceError("StandbyManager needs a leader_url or a client")
        self.data_dir = Path(data_dir)
        self.client = client or ManagerClient(leader_url, retries=0, timeout_s=5.0)
        self.policy = policy
        self.recorder = recorder if recorder is not None else IncidentRecorder()
        self.poll_interval_s = poll_interval_s
        self.misses_to_promote = max(1, misses_to_promote)
        self.clock = clock
        self.snapshot_every = snapshot_every
        # Default the promoted manager's reclaim grace to half a lease
        # TTL: longer than a renew interval (ttl/3), shorter than an
        # expiry sweep — in-flight workers reclaim before anyone else
        # can be granted their shard.
        if reclaim_grace_s is None:
            lease_policy = policy or SupervisorPolicy()
            reclaim_grace_s = lease_policy.shard_deadline_s / 2.0
        self.reclaim_grace_s = reclaim_grace_s
        self.stop_event = threading.Event()
        self.promoted_event = threading.Event()
        self.manager: CampaignManager | None = None

        self.journal = Journal(self.data_dir / "journal")
        loaded = self.journal.load()
        self.journal.open_for_append(loaded.last_seq)
        self.store = ResultStore(self.data_dir / "results", recorder=self.recorder)
        self.applied_seq = loaded.last_seq
        self.epoch_path = self.data_dir / "epoch.json"
        self.leader_epoch = load_epoch(self.epoch_path)
        self._have_results = set(self.store.keys())

        self.records_applied = 0
        self.snapshots_mirrored = 0
        self.results_mirrored = 0
        self.sync_rounds = 0
        self.misses = 0
        self.last_error = ""

    # ----------------------------------------------------------------- sync

    def sync_once(self) -> None:
        """One replication pull; raises ServiceError when the leader is
        unreachable or answers garbage (one "miss" for the detector)."""
        status, state = self.client.get(
            f"/replication/state?since={self.applied_seq}"
        )
        if status != 200 or "seq" not in state:
            raise ServiceError(
                f"replication pull answered {status}: {state.get('error', state)}"
            )
        # Journal state FIRST (it was read under the leader's lock
        # together with the key list), results after — never the other
        # way around, or a completion could land journal-visible here
        # with its result not yet fetchable.
        epoch = int(state.get("epoch", 1))
        if epoch != self.leader_epoch:
            self.leader_epoch = epoch
            store_epoch(self.epoch_path, epoch)
        snapshot = state.get("snapshot")
        if snapshot:
            self.journal.write_snapshot(
                snapshot["state"], seq=int(snapshot["seq"])
            )
            self.applied_seq = int(snapshot["seq"])
            self.snapshots_mirrored += 1
        for record in state.get("records", []):
            if self.journal.append_replica(record):
                self.records_applied += 1
        self.applied_seq = max(self.applied_seq, self.journal.seq)
        for key in state.get("result_keys", []):
            if key in self._have_results:
                continue
            rstatus, payload = self.client.get(f"/replication/result?key={key}")
            if rstatus == 200 and isinstance(payload.get("summary"), dict):
                self.store.put(
                    key, payload["summary"], payload.get("recipe", {})
                )
                self._have_results.add(key)
                self.results_mirrored += 1
        self.sync_rounds += 1

    # ------------------------------------------------------------ promotion

    def run(self) -> CampaignManager | None:
        """Follow the leader until it is lost (→ promote, return the new
        manager) or :meth:`stop` is called (→ None)."""
        while not self.stop_event.is_set():
            try:
                self.sync_once()
                self.misses = 0
            except ServiceError as exc:
                self.misses += 1
                self.last_error = str(exc)
                if self.misses >= self.misses_to_promote:
                    self.recorder.record(
                        IncidentKind.LEADER_LOST,
                        f"leader {self.client.base_url} lost: "
                        f"{self.misses} consecutive replication pull(s) "
                        f"failed ({self.last_error})",
                        severity="warning",
                        leader=self.client.base_url,
                        misses=self.misses,
                        applied_seq=self.applied_seq,
                    )
                    return self.promote()
            if self.stop_event.wait(self.poll_interval_s):
                break
        return None

    def promote(self) -> CampaignManager:
        """Bump the fencing epoch, recover a full manager over the
        mirror, and record the ``promoted`` incident."""
        new_epoch = self.leader_epoch + 1
        store_epoch(self.epoch_path, new_epoch)
        self.journal.close()
        manager = CampaignManager(
            self.data_dir,
            policy=self.policy,
            recorder=self.recorder,
            clock=self.clock,
            snapshot_every=self.snapshot_every,
            reclaim_grace_s=self.reclaim_grace_s,
        )
        self.recorder.record(
            IncidentKind.PROMOTED,
            f"standby promoted to leader at epoch {new_epoch} "
            f"(mirrored seq {self.applied_seq}, "
            f"{len(self._have_results)} result(s))",
            severity="warning",
            epoch=new_epoch,
            applied_seq=self.applied_seq,
            campaigns=len(manager.campaigns),
        )
        self.manager = manager
        self.promoted_event.set()
        return manager

    def stop(self) -> None:
        self.stop_event.set()

    # ------------------------------------------------------------ telemetry

    def status(self) -> dict:
        return {
            "role": "leader" if self.manager is not None else "standby",
            "leader": self.client.base_url,
            "leader_epoch": self.leader_epoch,
            "applied_seq": self.applied_seq,
            "sync_rounds": self.sync_rounds,
            "records_applied": self.records_applied,
            "snapshots_mirrored": self.snapshots_mirrored,
            "results_mirrored": self.results_mirrored,
            "misses": self.misses,
            "last_error": self.last_error,
        }
