"""Worker agent: pulls shard leases over HTTP and executes them.

The execution path is deliberately the *same code* the serial campaign
runner uses — :func:`repro.experiments.runner._run_one_pair` over
:func:`repro.experiments.runner.run_pair` with the same retry/timeout
policy, watchdog and incident recorder — which is what makes a service
campaign's :class:`~repro.experiments.runner.CampaignResult`
counter-for-counter identical to a serial one.

Lease discipline:

* a heartbeat thread renews the lease every ``renew_every_s`` while the
  shard simulates;
* a renewal answered 410 (lease gone: expired, or the manager restarted
  and forgot all leases) does NOT abort the computation — the worker
  finishes and still delivers, because completion is key-addressed and
  the result store dedupes; abandoning finished work would only waste it;
* a manager that is briefly unreachable (restarting) is retried with
  backoff by :class:`ManagerClient` rather than treated as fatal.

:class:`WorkerChaos` is the built-in fault injector for drills and the
service-smoke CI job: it SIGKILLs or wedges the worker after the Nth
lease grant, exercising the expiry → requeue → reassign path end to end.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.experiments.runner import RetryPolicy, _run_one_pair, run_pair
from repro.experiments.scale import PAPER, SMOKE
from repro.resilience.incidents import IncidentRecorder
from repro.resilience.watchdog import WatchdogPolicy
from repro.trace.store import TraceStore
from repro.uarch.machine import CheckpointStore

_SCALES = {"smoke": SMOKE, "paper": PAPER}


def http_exchange(url: str, method: str, data, timeout_s: float) -> tuple[int, bytes]:
    """One raw HTTP exchange (the default transport).

    HTTP error statuses are returned, not raised; connection-level
    failures propagate as ``URLError``/``OSError`` for the client's
    retry loop.  Pluggable: drills swap this for a
    :class:`repro.chaos.net.FaultyTransport` with the same signature.
    """
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class ManagerClient:
    """Tiny JSON-over-HTTP client for the manager (stdlib urllib).

    HTTP error statuses are *answers*, not failures — they are returned
    as ``(status, payload)`` like any other response, with two
    exceptions treated as transport-level and retried in place:

    * **HTTP 502** — a mid-path mangle (the fault injector's proxy
      failure); deliberately *not* 503, which the manager answers during
      genuine graceful shutdown and must keep reaching the caller so
      workers drain instead of hammering a dying leader;
    * an **undecodable 200 body** — a truncated response; the request is
      re-sent (every service endpoint is idempotent, so a duplicate
      delivery is harmless and better than acting on half an answer).

    ``base_url`` accepts a single URL or an **ordered endpoint list**
    ``[leader, standby, ...]``: connection-level failures rotate to the
    next endpoint before retrying, which is the whole client side of
    manager failover.  Retry sleeps use PR 9's
    :class:`~repro.experiments.runner.RetryPolicy` — capped exponential
    backoff with sha256-keyed jitter (keyed by endpoint + path, so a
    fleet of workers does not hammer a recovering manager in lockstep).
    ``retry_delay_s`` is kept as the backoff base for back-compat.
    """

    def __init__(
        self,
        base_url: str | list[str] | tuple[str, ...],
        retries: int = 40,
        retry_delay_s: float = 0.25,
        timeout_s: float = 10.0,
        sleep_fn=time.sleep,
        transport=None,
        backoff: RetryPolicy | None = None,
    ) -> None:
        urls = [base_url] if isinstance(base_url, str) else list(base_url)
        if not urls:
            raise ServiceError("ManagerClient needs at least one endpoint")
        self.endpoints = [u.rstrip("/") for u in urls]
        self._active = 0
        self.retries = retries
        self.retry_delay_s = retry_delay_s
        self.timeout_s = timeout_s
        self.sleep_fn = sleep_fn
        self.transport = transport if transport is not None else http_exchange
        self.backoff = backoff or RetryPolicy(
            timeout_s=None,
            max_retries=retries,
            backoff_base_s=retry_delay_s,
            backoff_factor=1.5,
            backoff_max_s=max(4.0 * retry_delay_s, 1.0),
            jitter=0.5,
        )
        self.failovers = 0

    @property
    def base_url(self) -> str:
        """The endpoint currently in use."""
        return self.endpoints[self._active]

    def rotate(self) -> str:
        """Move to the next endpoint (failover); returns the new one."""
        if len(self.endpoints) > 1:
            self._active = (self._active + 1) % len(self.endpoints)
            self.failovers += 1
        return self.base_url

    def get(self, path: str) -> tuple[int, dict]:
        return self._request("GET", path, None)

    def get_text(self, path: str) -> tuple[int, str]:
        """GET a non-JSON resource (``/incidents`` NDJSON, ``/metrics``)."""
        request = urllib.request.Request(self.base_url + path, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode()

    def post(self, path: str, body: dict | None = None) -> tuple[int, dict]:
        return self._request("POST", path, body if body is not None else {})

    def _request(self, method: str, path: str, body: dict | None) -> tuple[int, dict]:
        data = json.dumps(body).encode() if body is not None else None
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            url = self.base_url + path
            try:
                status, raw = self.transport(url, method, data, self.timeout_s)
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
                last_error = exc
                self.rotate()
                self._backoff(attempt, path)
                continue
            if status == 502:
                last_error = ServiceError(f"HTTP 502 from {url}")
                self._backoff(attempt, path)
                continue
            payload, intact = _decode(raw)
            if status == 200 and not intact:
                last_error = ServiceError(f"undecodable response body from {url}")
                self._backoff(attempt, path)
                continue
            return status, payload
        raise ServiceError(
            f"manager at {', '.join(self.endpoints)} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    def _backoff(self, attempt: int, path: str) -> None:
        if attempt < self.retries:
            self.sleep_fn(
                self.backoff.backoff(attempt + 1, key=f"{self.base_url}{path}")
            )


def _decode(raw: bytes) -> tuple[dict, bool]:
    """``(payload, intact)`` — ``intact`` is False for a non-empty body
    that does not parse to a JSON object (truncated in flight)."""
    if not raw:
        return {}, True
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError:
        return {}, False
    if not isinstance(payload, dict):
        return {}, False
    return payload, True


class _ProgressTracker:
    """Thread-safe shard progress shared between the execute path (which
    adds retired-event counts via :func:`repro.experiments.runner.
    run_workload`'s gated ``progress`` hook) and the heartbeat thread
    (which snapshots it into each renew body)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events_done = 0
        self.workload = ""
        self.backend = ""

    def begin(self, workload: str, backend: str) -> None:
        with self._lock:
            self.events_done = 0
            self.workload = workload
            self.backend = backend

    def add(self, n: int) -> None:
        with self._lock:
            self.events_done += int(n)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "events_done": self.events_done,
                "workload": self.workload,
                "backend": self.backend,
            }


class WorkerVanished(ServiceError):
    """An in-process worker was chaos-killed (the thread analog of
    SIGKILL): it abandons its lease silently — no heartbeat, no fail
    report, no delivery — and the manager must recover via lease expiry.
    Raised out of :meth:`WorkerAgent.run`; the drill harness catches it.
    """


@dataclass
class WorkerChaos:
    """Fault injection for drills: die or wedge after the Nth lease.

    ``kill_after_leases=N`` SIGKILLs the worker process the moment it is
    granted its Nth lease — before any result is delivered — so the
    manager sees a silent death and must recover via lease expiry.
    ``hang_after_leases=N`` wedges the worker instead (lease held, no
    renewal, no progress): the expiry path again, but with a live corpse.
    ``vanish_after_leases=N`` is the in-process analog of the kill: it
    raises :class:`WorkerVanished` instead of signalling, for drills
    that run workers as threads rather than subprocesses.
    """

    kill_after_leases: int = 0
    hang_after_leases: int = 0
    vanish_after_leases: int = 0
    leases_granted: int = 0

    def on_lease(self) -> None:
        self.leases_granted += 1
        if self.kill_after_leases and self.leases_granted >= self.kill_after_leases:
            os.kill(os.getpid(), signal.SIGKILL)
        if self.vanish_after_leases and self.leases_granted >= self.vanish_after_leases:
            raise WorkerVanished(
                f"worker chaos-vanished at lease {self.leases_granted}"
            )
        if self.hang_after_leases and self.leases_granted >= self.hang_after_leases:
            while True:  # pragma: no cover - only ever exited by SIGKILL
                time.sleep(3600)


class WorkerAgent:
    """Register → lease → heartbeat → execute → deliver, until stopped.

    Args:
        client: transport to the manager.
        name: optional human-readable worker name.
        poll_interval_s: idle sleep between lease attempts.
        max_idle_s: exit after this long with no work AND no queued work
            anywhere (None: run until stopped — the service default).
        machine_cache_dir: warm-machine checkpoint cache shared with the
            serial runner (optional but a large speedup across shards).
        trace_cache_dir: content-addressed trace store shared with the
            campaign runner; with ``backend="batched"`` shards load
            serialised trace batches instead of regenerating them.
        chaos: fault injector (drills/CI only).
        stop_event: external stop signal; the agent finishes the shard in
            hand, delivers it, then exits (graceful drain).
    """

    def __init__(
        self,
        client: ManagerClient,
        name: str = "",
        poll_interval_s: float = 0.25,
        max_idle_s: float | None = None,
        machine_cache_dir: str | None = None,
        trace_cache_dir: str | None = None,
        chaos: WorkerChaos | None = None,
        stop_event: threading.Event | None = None,
    ) -> None:
        self.client = client
        self.name = name
        self.poll_interval_s = poll_interval_s
        self.max_idle_s = max_idle_s
        self.machine_cache_dir = machine_cache_dir
        self.trace_cache_dir = trace_cache_dir
        self.chaos = chaos
        self.stop_event = stop_event if stop_event is not None else threading.Event()
        self.worker_id = ""
        self.renew_every_s = 1.0
        #: The fencing epoch of the leader we last registered against;
        #: stamped on every lease/renew/complete/fail so a stale leader
        #: (or our own staleness after a promotion) is detected, never
        #: silently merged.
        self.epoch = 0
        self.progress = _ProgressTracker()
        self.shards_done = 0
        self.shards_failed = 0
        self.leases_lost = 0
        self.reregistrations = 0
        self.manager_lost = False

    def stop(self) -> None:
        self.stop_event.set()

    def _register(self) -> None:
        """(Re-)register, keeping our worker_id when we have one.

        A registration answered with a *lower* epoch than we already
        hold comes from a revived stale leader: never step the epoch
        down — rotate to the next endpoint and try again instead.
        """
        for _ in range(max(4, 2 * len(self.client.endpoints))):
            status, registration = self.client.post(
                "/workers/register",
                {"name": self.name, "worker_id": self.worker_id},
            )
            if status != 200:
                if self.stop_event.wait(self.poll_interval_s):
                    raise ServiceError("worker stopped while registering")
                continue
            epoch = int(registration.get("epoch", 0))
            if self.epoch and epoch and epoch < self.epoch:
                self.client.rotate()
                continue
            if self.worker_id:
                self.reregistrations += 1
            self.worker_id = registration["worker_id"]
            self.renew_every_s = float(registration.get("renew_every_s", 1.0))
            self.epoch = epoch or self.epoch
            return
        raise ServiceError(
            f"could not register against any of {self.client.endpoints} "
            f"at epoch >= {self.epoch}"
        )

    def _post_write(self, path: str, body: dict) -> tuple[int, dict]:
        """POST a write stamped with our epoch, absorbing one fencing
        round-trip: fenced by a *newer* epoch means a failover happened
        under us — re-register (adopting the new epoch) and retry;
        fenced by an *older* one means a stale leader answered — rotate
        endpoints and retry.  Second fence in a row is returned as-is.
        """
        body = dict(body, epoch=self.epoch)
        status, response = self.client.post(path, body)
        if status == 409 and response.get("fenced"):
            theirs = int(response.get("epoch", 0))
            if theirs > self.epoch:
                self._register()
            else:
                self.client.rotate()
            body["epoch"] = self.epoch
            status, response = self.client.post(path, body)
        return status, response

    def run(self) -> dict:
        """The agent main loop; returns run stats when it exits."""
        self._register()
        idle_since: float | None = None
        while not self.stop_event.is_set():
            try:
                status, response = self._post_write(
                    "/leases", {"worker_id": self.worker_id}
                )
            except ServiceError:
                # Manager gone beyond the client's retry budget after we
                # were already registered: drain and exit cleanly — a
                # worker outliving its manager is shutdown, not a bug.
                self.manager_lost = True
                break
            if status != 200:
                # Manager shutting down or refusing us: back off, retry.
                if self.stop_event.wait(self.poll_interval_s):
                    break
                continue
            grant = response.get("lease")
            if grant is None:
                now = time.monotonic()
                if not response.get("has_work"):
                    if self.max_idle_s is not None:
                        idle_since = idle_since if idle_since is not None else now
                        if now - idle_since >= self.max_idle_s:
                            break
                else:
                    idle_since = None
                wait = min(
                    self.poll_interval_s,
                    float(response.get("retry_in_s") or self.poll_interval_s),
                )
                if self.stop_event.wait(wait):
                    break
                continue
            idle_since = None
            if self.chaos is not None:
                self.chaos.on_lease()
            try:
                self._execute_and_deliver(grant)
            except ServiceError:
                # Could not deliver (manager gone past the retry budget):
                # the result is lost here but the shard will be re-leased
                # and re-run — determinism makes that merely wasteful.
                self.shards_failed += 1
                self.manager_lost = True
                break
        return {
            "worker_id": self.worker_id,
            "shards_done": self.shards_done,
            "shards_failed": self.shards_failed,
            "leases_lost": self.leases_lost,
            "manager_lost": self.manager_lost,
        }

    # ----------------------------------------------------------- internals

    def _execute_and_deliver(self, grant: dict) -> None:
        heartbeat_done = threading.Event()
        lease_lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat,
            args=(grant, heartbeat_done, lease_lost),
            name=f"heartbeat-{grant['lease_id']}",
            daemon=True,
        )
        beat.start()
        try:
            outcome = self._execute(grant)
        except Exception as exc:  # defensive: _run_one_pair should not raise
            heartbeat_done.set()
            beat.join(timeout=2.0)
            self.shards_failed += 1
            self._post_write(
                "/shards/fail",
                {
                    "campaign_id": grant["campaign_id"],
                    "key": grant["key"],
                    "worker_id": self.worker_id,
                    "error": f"worker-side crash: {exc}",
                    "attempt": int(grant.get("attempt", 0)),
                },
            )
            return
        heartbeat_done.set()
        beat.join(timeout=2.0)
        if lease_lost.is_set():
            self.leases_lost += 1
        status, response = self._post_write(
            "/shards/complete",
            {
                "campaign_id": grant["campaign_id"],
                "key": grant["key"],
                "worker_id": self.worker_id,
                "outcome": outcome,
            },
        )
        if status == 200 and not outcome.get("failed"):
            self.shards_done += 1
        else:
            self.shards_failed += 1

    def _execute(self, grant: dict) -> dict:
        """Run one shard exactly the way the serial campaign loop would."""
        payload = grant["payload"]
        self.progress.begin(
            payload.get("workload", ""), payload.get("backend", "reference")
        )
        scale = _SCALES[payload["scale"]]
        policy = RetryPolicy(
            timeout_s=payload.get("timeout_s"),
            max_retries=int(payload.get("max_retries", 2)),
        )
        recorder = IncidentRecorder()
        watchdog_every = int(payload.get("watchdog_every") or 0)
        watchdog = WatchdogPolicy(check_every=watchdog_every) if watchdog_every else None
        machine_cache = (
            CheckpointStore(self.machine_cache_dir, recorder=recorder)
            if self.machine_cache_dir
            else None
        )
        trace_cache = (
            TraceStore(self.trace_cache_dir, recorder=recorder)
            if self.trace_cache_dir
            else None
        )

        def run_fn(workload: str, scale_obj, abtb: int, gate=None):
            # Gate the progress/recorder callbacks per attempt: a
            # timed-out attempt's abandoned thread keeps simulating, and
            # without the gate it would keep banking progress (and
            # incidents) into the retry attempt's heartbeats.
            progress = self.progress.add
            rec = recorder
            if gate is not None:
                progress = gate.wrap(progress)
                rec = gate.recorder(recorder)
            return run_pair(
                workload,
                scale_obj,
                abtb,
                seed=payload.get("seed"),
                backend=payload.get("backend", "reference"),
                recorder=rec,
                watchdog=watchdog,
                machine_cache=machine_cache,
                trace_cache=trace_cache,
                progress=progress,
            )

        outcome = _run_one_pair(
            grant["key"],
            payload["workload"],
            scale,
            int(payload["abtb"]),
            policy,
            run_fn,
            time.sleep,
        )
        outcome["incidents"] = recorder.as_dicts()
        return outcome

    def _heartbeat(
        self, grant: dict, done: threading.Event, lost: threading.Event
    ) -> None:
        """Renew the lease until the shard finishes.

        Every renew carries ``reclaim={campaign_id, key}``: a manager
        that does not know the lease — a promoted standby or a restarted
        leader, which forgot all soft-state leases — re-establishes it
        on our shard instead of answering 410, so in-flight work
        survives the failover under its original worker (and may come
        back under a fresh lease id, which we adopt).
        """
        lease_id = grant["lease_id"]
        while not done.wait(self.renew_every_s):
            try:
                status, response = self._post_write(
                    f"/leases/{lease_id}/renew",
                    {
                        "worker_id": self.worker_id,
                        "progress": self.progress.snapshot(),
                        "reclaim": {
                            "campaign_id": grant["campaign_id"],
                            "key": grant["key"],
                        },
                    },
                )
            except ServiceError:
                # Manager gone for longer than the client's retry budget:
                # the lease will expire server-side; keep computing and
                # deliver anyway once it is back.
                lost.set()
                return
            if status != 200:
                lost.set()
                return
            renewed_id = response.get("lease_id")
            if renewed_id and renewed_id != lease_id:
                lease_id = renewed_id  # lease reclaimed after a failover
