"""Worker agent: pulls shard leases over HTTP and executes them.

The execution path is deliberately the *same code* the serial campaign
runner uses — :func:`repro.experiments.runner._run_one_pair` over
:func:`repro.experiments.runner.run_pair` with the same retry/timeout
policy, watchdog and incident recorder — which is what makes a service
campaign's :class:`~repro.experiments.runner.CampaignResult`
counter-for-counter identical to a serial one.

Lease discipline:

* a heartbeat thread renews the lease every ``renew_every_s`` while the
  shard simulates;
* a renewal answered 410 (lease gone: expired, or the manager restarted
  and forgot all leases) does NOT abort the computation — the worker
  finishes and still delivers, because completion is key-addressed and
  the result store dedupes; abandoning finished work would only waste it;
* a manager that is briefly unreachable (restarting) is retried with
  backoff by :class:`ManagerClient` rather than treated as fatal.

:class:`WorkerChaos` is the built-in fault injector for drills and the
service-smoke CI job: it SIGKILLs or wedges the worker after the Nth
lease grant, exercising the expiry → requeue → reassign path end to end.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.experiments.runner import RetryPolicy, _run_one_pair, run_pair
from repro.experiments.scale import PAPER, SMOKE
from repro.resilience.incidents import IncidentRecorder
from repro.resilience.watchdog import WatchdogPolicy
from repro.trace.store import TraceStore
from repro.uarch.machine import CheckpointStore

_SCALES = {"smoke": SMOKE, "paper": PAPER}


class ManagerClient:
    """Tiny JSON-over-HTTP client for the manager (stdlib urllib).

    HTTP error statuses are *answers*, not failures — they are returned
    as ``(status, payload)`` like any other response.  Connection-level
    failures (manager down or mid-restart) are retried ``retries`` times
    with ``retry_delay_s`` between attempts, then raise
    :class:`~repro.errors.ServiceError`.
    """

    def __init__(
        self,
        base_url: str,
        retries: int = 40,
        retry_delay_s: float = 0.25,
        timeout_s: float = 10.0,
        sleep_fn=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.retry_delay_s = retry_delay_s
        self.timeout_s = timeout_s
        self.sleep_fn = sleep_fn

    def get(self, path: str) -> tuple[int, dict]:
        return self._request("GET", path, None)

    def get_text(self, path: str) -> tuple[int, str]:
        """GET a non-JSON resource (``/incidents`` NDJSON, ``/metrics``)."""
        request = urllib.request.Request(self.base_url + path, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode()

    def post(self, path: str, body: dict | None = None) -> tuple[int, dict]:
        return self._request("POST", path, body if body is not None else {})

    def _request(self, method: str, path: str, body: dict | None) -> tuple[int, dict]:
        data = json.dumps(body).encode() if body is not None else None
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                    return resp.status, _decode(resp.read())
            except urllib.error.HTTPError as exc:
                return exc.code, _decode(exc.read())
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
                last_error = exc
                if attempt < self.retries:
                    self.sleep_fn(self.retry_delay_s)
        raise ServiceError(
            f"manager at {self.base_url} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )


def _decode(raw: bytes) -> dict:
    try:
        payload = json.loads(raw) if raw else {}
    except json.JSONDecodeError:
        return {}
    return payload if isinstance(payload, dict) else {}


class _ProgressTracker:
    """Thread-safe shard progress shared between the execute path (which
    adds retired-event counts via :func:`repro.experiments.runner.
    run_workload`'s gated ``progress`` hook) and the heartbeat thread
    (which snapshots it into each renew body)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events_done = 0
        self.workload = ""
        self.backend = ""

    def begin(self, workload: str, backend: str) -> None:
        with self._lock:
            self.events_done = 0
            self.workload = workload
            self.backend = backend

    def add(self, n: int) -> None:
        with self._lock:
            self.events_done += int(n)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "events_done": self.events_done,
                "workload": self.workload,
                "backend": self.backend,
            }


@dataclass
class WorkerChaos:
    """Fault injection for drills: die or wedge after the Nth lease.

    ``kill_after_leases=N`` SIGKILLs the worker process the moment it is
    granted its Nth lease — before any result is delivered — so the
    manager sees a silent death and must recover via lease expiry.
    ``hang_after_leases=N`` wedges the worker instead (lease held, no
    renewal, no progress): the expiry path again, but with a live corpse.
    """

    kill_after_leases: int = 0
    hang_after_leases: int = 0
    leases_granted: int = 0

    def on_lease(self) -> None:
        self.leases_granted += 1
        if self.kill_after_leases and self.leases_granted >= self.kill_after_leases:
            os.kill(os.getpid(), signal.SIGKILL)
        if self.hang_after_leases and self.leases_granted >= self.hang_after_leases:
            while True:  # pragma: no cover - only ever exited by SIGKILL
                time.sleep(3600)


class WorkerAgent:
    """Register → lease → heartbeat → execute → deliver, until stopped.

    Args:
        client: transport to the manager.
        name: optional human-readable worker name.
        poll_interval_s: idle sleep between lease attempts.
        max_idle_s: exit after this long with no work AND no queued work
            anywhere (None: run until stopped — the service default).
        machine_cache_dir: warm-machine checkpoint cache shared with the
            serial runner (optional but a large speedup across shards).
        trace_cache_dir: content-addressed trace store shared with the
            campaign runner; with ``backend="batched"`` shards load
            serialised trace batches instead of regenerating them.
        chaos: fault injector (drills/CI only).
        stop_event: external stop signal; the agent finishes the shard in
            hand, delivers it, then exits (graceful drain).
    """

    def __init__(
        self,
        client: ManagerClient,
        name: str = "",
        poll_interval_s: float = 0.25,
        max_idle_s: float | None = None,
        machine_cache_dir: str | None = None,
        trace_cache_dir: str | None = None,
        chaos: WorkerChaos | None = None,
        stop_event: threading.Event | None = None,
    ) -> None:
        self.client = client
        self.name = name
        self.poll_interval_s = poll_interval_s
        self.max_idle_s = max_idle_s
        self.machine_cache_dir = machine_cache_dir
        self.trace_cache_dir = trace_cache_dir
        self.chaos = chaos
        self.stop_event = stop_event if stop_event is not None else threading.Event()
        self.worker_id = ""
        self.renew_every_s = 1.0
        self.progress = _ProgressTracker()
        self.shards_done = 0
        self.shards_failed = 0
        self.leases_lost = 0
        self.manager_lost = False

    def stop(self) -> None:
        self.stop_event.set()

    def run(self) -> dict:
        """The agent main loop; returns run stats when it exits."""
        _, registration = self.client.post(
            "/workers/register", {"name": self.name}
        )
        self.worker_id = registration["worker_id"]
        self.renew_every_s = float(registration.get("renew_every_s", 1.0))
        idle_since: float | None = None
        while not self.stop_event.is_set():
            try:
                status, response = self.client.post(
                    "/leases", {"worker_id": self.worker_id}
                )
            except ServiceError:
                # Manager gone beyond the client's retry budget after we
                # were already registered: drain and exit cleanly — a
                # worker outliving its manager is shutdown, not a bug.
                self.manager_lost = True
                break
            if status != 200:
                # Manager shutting down or refusing us: back off, retry.
                if self.stop_event.wait(self.poll_interval_s):
                    break
                continue
            grant = response.get("lease")
            if grant is None:
                now = time.monotonic()
                if not response.get("has_work"):
                    if self.max_idle_s is not None:
                        idle_since = idle_since if idle_since is not None else now
                        if now - idle_since >= self.max_idle_s:
                            break
                else:
                    idle_since = None
                wait = min(
                    self.poll_interval_s,
                    float(response.get("retry_in_s") or self.poll_interval_s),
                )
                if self.stop_event.wait(wait):
                    break
                continue
            idle_since = None
            if self.chaos is not None:
                self.chaos.on_lease()
            try:
                self._execute_and_deliver(grant)
            except ServiceError:
                # Could not deliver (manager gone past the retry budget):
                # the result is lost here but the shard will be re-leased
                # and re-run — determinism makes that merely wasteful.
                self.shards_failed += 1
                self.manager_lost = True
                break
        return {
            "worker_id": self.worker_id,
            "shards_done": self.shards_done,
            "shards_failed": self.shards_failed,
            "leases_lost": self.leases_lost,
            "manager_lost": self.manager_lost,
        }

    # ----------------------------------------------------------- internals

    def _execute_and_deliver(self, grant: dict) -> None:
        heartbeat_done = threading.Event()
        lease_lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat,
            args=(grant["lease_id"], heartbeat_done, lease_lost),
            name=f"heartbeat-{grant['lease_id']}",
            daemon=True,
        )
        beat.start()
        try:
            outcome = self._execute(grant)
        except Exception as exc:  # defensive: _run_one_pair should not raise
            heartbeat_done.set()
            beat.join(timeout=2.0)
            self.shards_failed += 1
            self.client.post(
                "/shards/fail",
                {
                    "campaign_id": grant["campaign_id"],
                    "key": grant["key"],
                    "worker_id": self.worker_id,
                    "error": f"worker-side crash: {exc}",
                },
            )
            return
        heartbeat_done.set()
        beat.join(timeout=2.0)
        if lease_lost.is_set():
            self.leases_lost += 1
        status, response = self.client.post(
            "/shards/complete",
            {
                "campaign_id": grant["campaign_id"],
                "key": grant["key"],
                "worker_id": self.worker_id,
                "outcome": outcome,
            },
        )
        if status == 200 and not outcome.get("failed"):
            self.shards_done += 1
        else:
            self.shards_failed += 1

    def _execute(self, grant: dict) -> dict:
        """Run one shard exactly the way the serial campaign loop would."""
        payload = grant["payload"]
        self.progress.begin(
            payload.get("workload", ""), payload.get("backend", "reference")
        )
        scale = _SCALES[payload["scale"]]
        policy = RetryPolicy(
            timeout_s=payload.get("timeout_s"),
            max_retries=int(payload.get("max_retries", 2)),
        )
        recorder = IncidentRecorder()
        watchdog_every = int(payload.get("watchdog_every") or 0)
        watchdog = WatchdogPolicy(check_every=watchdog_every) if watchdog_every else None
        machine_cache = (
            CheckpointStore(self.machine_cache_dir, recorder=recorder)
            if self.machine_cache_dir
            else None
        )
        trace_cache = (
            TraceStore(self.trace_cache_dir, recorder=recorder)
            if self.trace_cache_dir
            else None
        )

        def run_fn(workload: str, scale_obj, abtb: int, gate=None):
            # Gate the progress/recorder callbacks per attempt: a
            # timed-out attempt's abandoned thread keeps simulating, and
            # without the gate it would keep banking progress (and
            # incidents) into the retry attempt's heartbeats.
            progress = self.progress.add
            rec = recorder
            if gate is not None:
                progress = gate.wrap(progress)
                rec = gate.recorder(recorder)
            return run_pair(
                workload,
                scale_obj,
                abtb,
                seed=payload.get("seed"),
                backend=payload.get("backend", "reference"),
                recorder=rec,
                watchdog=watchdog,
                machine_cache=machine_cache,
                trace_cache=trace_cache,
                progress=progress,
            )

        outcome = _run_one_pair(
            grant["key"],
            payload["workload"],
            scale,
            int(payload["abtb"]),
            policy,
            run_fn,
            time.sleep,
        )
        outcome["incidents"] = recorder.as_dicts()
        return outcome

    def _heartbeat(
        self, lease_id: str, done: threading.Event, lost: threading.Event
    ) -> None:
        while not done.wait(self.renew_every_s):
            try:
                status, _ = self.client.post(
                    f"/leases/{lease_id}/renew",
                    {
                        "worker_id": self.worker_id,
                        "progress": self.progress.snapshot(),
                    },
                )
            except ServiceError:
                # Manager gone for longer than the client's retry budget:
                # the lease will expire server-side; keep computing and
                # deliver anyway once it is back.
                lost.set()
                return
            if status != 200:
                lost.set()
                return
