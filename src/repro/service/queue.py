"""Lease-based shard queue: the scheduling heart of the campaign service.

Workers never own shards — they hold *leases* with deadlines:

* :meth:`LeaseQueue.acquire` hands the oldest ready pending shard to a
  worker as a :class:`Lease` expiring ``shard_deadline_s`` from now;
* the worker renews via heartbeat (:meth:`LeaseQueue.renew`) while it
  simulates;
* a lease that expires — worker crash, hang, network partition, manager
  can't tell and doesn't need to — is swept by :meth:`LeaseQueue.expire`:
  the shard goes back to pending with exponential backoff, and after
  ``max_shard_failures`` process-level failures it is **quarantined**
  (the campaign then completes *degraded* rather than never);
* :meth:`LeaseQueue.complete` is key-addressed and idempotent: late
  completions (after expiry, after requeue, even after quarantine) are
  banked — the content-addressed result store upstream makes duplicate
  deliveries harmless, so the queue never discards finished work.

The knobs reuse :class:`~repro.resilience.supervisor.SupervisorPolicy`
(PR 5's supervisor): ``shard_deadline_s`` is the lease TTL,
``max_shard_failures`` the quarantine budget, ``backoff_base_s`` /
``backoff_factor`` the requeue backoff — one policy vocabulary for both
the in-process supervisor and the service.

The queue is in-memory soft state by design: leases are *not* journaled.
After a manager restart every non-terminal shard is simply pending again;
the worst case is a duplicate execution, which dedupes.  Failure counts
and terminal states are journaled by the manager, not here.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.resilience.supervisor import SupervisorPolicy


class ShardPhase(enum.Enum):
    """Lifecycle of one shard in the queue."""

    PENDING = "pending"
    LEASED = "leased"
    COMPLETED = "completed"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded claim on one shard."""

    lease_id: str
    key: str
    worker_id: str
    attempt: int
    expires_at: float


@dataclass
class _Shard:
    key: str
    payload: dict
    phase: ShardPhase = ShardPhase.PENDING
    failures: int = 0
    ready_at: float = 0.0
    last_error: str = ""
    lease: Lease | None = None


@dataclass
class ExpiredLease:
    """One sweep event from :meth:`LeaseQueue.expire` (for incidents/journal)."""

    key: str
    worker_id: str
    lease_id: str
    failures: int
    quarantined: bool
    backoff_s: float = 0.0
    last_error: str = ""


class LeaseQueue:
    """FIFO shard queue with deadline leases (see module doc).

    Args:
        policy: lease TTL / quarantine budget / backoff knobs.
        clock: monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self, policy: SupervisorPolicy | None = None, clock=time.monotonic
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        self.clock = clock
        self._shards: dict[str, _Shard] = {}  # insertion order == FIFO order
        self._leases: dict[str, Lease] = {}
        self._lease_seq = 0

    # ------------------------------------------------------------- shards

    def add(self, key: str, payload: dict, failures: int = 0) -> None:
        """Enqueue one pending shard (``failures`` seeds the quarantine
        budget when re-adding after recovery)."""
        if key in self._shards:
            raise ServiceError(f"shard {key!r} is already queued")
        self._shards[key] = _Shard(key=key, payload=payload, failures=failures)

    def discard(self, key: str) -> None:
        """Drop a shard (campaign cancelled); leased work is left to
        finish and its completion will be ignored upstream."""
        shard = self._shards.pop(key, None)
        if shard is not None and shard.lease is not None:
            self._leases.pop(shard.lease.lease_id, None)

    def phase(self, key: str) -> ShardPhase | None:
        shard = self._shards.get(key)
        return shard.phase if shard is not None else None

    def failures(self, key: str) -> int:
        shard = self._shards.get(key)
        return shard.failures if shard is not None else 0

    def counts(self) -> dict[str, int]:
        out = {phase.value: 0 for phase in ShardPhase}
        for shard in self._shards.values():
            out[shard.phase.value] += 1
        return out

    # ------------------------------------------------------------- leases

    def acquire(self, worker_id: str) -> tuple[Lease, dict] | None:
        """Lease the oldest ready pending shard to ``worker_id``.

        Returns ``(lease, payload)`` or None when nothing is ready (all
        shards terminal, leased, or still backing off).

        Acquire is **idempotent per worker**: a worker already holding a
        live lease gets that same lease back instead of a second shard.
        A duplicated acquire request (at-least-once delivery through a
        faulty network) therefore cannot strand an orphan lease that
        would later expire as a phantom failure.
        """
        now = self.clock()
        for lease in self._leases.values():
            if lease.worker_id == worker_id and lease.expires_at > now:
                held = self._shards.get(lease.key)
                if held is not None and held.phase is ShardPhase.LEASED:
                    return lease, held.payload
        for shard in self._shards.values():
            if shard.phase is not ShardPhase.PENDING or shard.ready_at > now:
                continue
            self._lease_seq += 1
            lease = Lease(
                lease_id=f"L{self._lease_seq}",
                key=shard.key,
                worker_id=worker_id,
                attempt=shard.failures + 1,
                expires_at=now + self.policy.shard_deadline_s,
            )
            shard.phase = ShardPhase.LEASED
            shard.lease = lease
            self._leases[lease.lease_id] = lease
            return lease, shard.payload
        return None

    def renew(self, lease_id: str, worker_id: str) -> Lease | None:
        """Extend a live lease's deadline; None when the lease is gone
        (expired and swept, completed, or from before a manager restart)
        or owned by another worker."""
        lease = self._leases.get(lease_id)
        if lease is None or lease.worker_id != worker_id:
            return None
        if lease.expires_at <= self.clock():
            return None  # expired but not yet swept: do not resurrect
        renewed = Lease(
            lease_id=lease.lease_id,
            key=lease.key,
            worker_id=lease.worker_id,
            attempt=lease.attempt,
            expires_at=self.clock() + self.policy.shard_deadline_s,
        )
        self._leases[lease_id] = renewed
        shard = self._shards.get(lease.key)
        if shard is not None and shard.lease is not None and shard.lease.lease_id == lease_id:
            shard.lease = renewed
        return renewed

    def reclaim(self, key: str, worker_id: str, lease_id: str = "") -> Lease | None:
        """Re-establish a lease on a *pending* shard for a worker whose
        previous lease vanished with a dead or restarted manager.

        The failover path: a promoted standby (or a restarted leader)
        forgot all leases — they are soft state — so a worker mid-shard
        renews against it, carrying (campaign, key).  Re-leasing the
        shard to that worker keeps it from being handed to someone else,
        which is what makes an in-flight shard survive a failover with
        zero re-execution.  ``lease_id`` is honoured when free so the
        worker's heartbeat can keep its id across the failover.

        Returns the (re)established lease, the worker's *existing* live
        lease when it already holds this shard (idempotent), or None
        when the shard is not reclaimable (leased by someone else,
        terminal, or unknown).  Backoff (``ready_at``) is deliberately
        ignored: the reclaiming worker is alive and holds partial work.
        """
        shard = self._shards.get(key)
        if shard is None:
            return None
        if shard.phase is ShardPhase.LEASED:
            lease = shard.lease
            if lease is not None and lease.worker_id == worker_id:
                return self.renew(lease.lease_id, worker_id)
            return None
        if shard.phase is not ShardPhase.PENDING:
            return None
        self._lease_seq += 1
        if not lease_id or lease_id in self._leases:
            lease_id = f"L{self._lease_seq}"
        lease = Lease(
            lease_id=lease_id,
            key=shard.key,
            worker_id=worker_id,
            attempt=shard.failures + 1,
            expires_at=self.clock() + self.policy.shard_deadline_s,
        )
        shard.phase = ShardPhase.LEASED
        shard.lease = lease
        self._leases[lease.lease_id] = lease
        return lease

    def expire(self) -> list[ExpiredLease]:
        """Sweep expired leases: requeue with backoff or quarantine.

        Returns one event per expired lease so the manager can journal
        the failure and record a ``lease_expired`` incident.
        """
        now = self.clock()
        events: list[ExpiredLease] = []
        for lease_id in [
            lid for lid, lease in self._leases.items() if lease.expires_at <= now
        ]:
            lease = self._leases.pop(lease_id)
            shard = self._shards.get(lease.key)
            if shard is None or shard.phase is not ShardPhase.LEASED:
                continue
            error = (
                f"lease {lease_id} for shard {lease.key} held by "
                f"{lease.worker_id} expired after "
                f"{self.policy.shard_deadline_s:.1f}s without renewal"
            )
            quarantined, backoff = self._fail(shard, error)
            events.append(
                ExpiredLease(
                    key=shard.key,
                    worker_id=lease.worker_id,
                    lease_id=lease_id,
                    failures=shard.failures,
                    quarantined=quarantined,
                    backoff_s=backoff,
                    last_error=error,
                )
            )
        return events

    # ---------------------------------------------------------- outcomes

    def complete(self, key: str) -> str:
        """Mark a shard completed; returns what actually happened.

        ``"completed"`` — normal first completion; ``"deduped"`` — the
        shard was already completed (late duplicate delivery);
        ``"healed"`` — a quarantined shard's result arrived late and
        un-quarantined it; ``"unknown"`` — no such shard (cancelled
        campaign or stale key).  Completion is accepted from *any*
        non-terminal state: pending (manager restarted, lease forgotten),
        leased (the normal path), even another worker's lease (the first
        holder crashed, both finished) — finished work is never dropped.
        """
        shard = self._shards.get(key)
        if shard is None:
            return "unknown"
        if shard.phase is ShardPhase.COMPLETED:
            return "deduped"
        healed = shard.phase is ShardPhase.QUARANTINED
        if shard.lease is not None:
            self._leases.pop(shard.lease.lease_id, None)
            shard.lease = None
        shard.phase = ShardPhase.COMPLETED
        shard.last_error = ""
        return "healed" if healed else "completed"

    def fail(self, key: str, error: str) -> tuple[bool, float]:
        """Worker-reported failure of a leased or pending shard; returns
        ``(quarantined, backoff_s)``."""
        shard = self._shards.get(key)
        if shard is None or shard.phase in (ShardPhase.COMPLETED, ShardPhase.QUARANTINED):
            return False, 0.0
        if shard.lease is not None:
            self._leases.pop(shard.lease.lease_id, None)
        return self._fail(shard, error)

    def quarantine(self, key: str, error: str) -> None:
        """Force a shard into quarantine (journal replay path)."""
        shard = self._shards.get(key)
        if shard is None:
            return
        if shard.lease is not None:
            self._leases.pop(shard.lease.lease_id, None)
            shard.lease = None
        shard.phase = ShardPhase.QUARANTINED
        shard.last_error = error

    def last_error(self, key: str) -> str:
        shard = self._shards.get(key)
        return shard.last_error if shard is not None else ""

    def live_leases(self) -> list[Lease]:
        """Snapshot of currently-held leases (soft state, for telemetry)."""
        return list(self._leases.values())

    def has_work(self) -> bool:
        """True while any shard is pending or leased."""
        return any(
            s.phase in (ShardPhase.PENDING, ShardPhase.LEASED)
            for s in self._shards.values()
        )

    def next_ready_at(self) -> float | None:
        """Earliest ``ready_at`` among pending shards (None when none)."""
        times = [
            s.ready_at
            for s in self._shards.values()
            if s.phase is ShardPhase.PENDING
        ]
        return min(times) if times else None

    # ---------------------------------------------------------- internals

    def _fail(self, shard: _Shard, error: str) -> tuple[bool, float]:
        shard.failures += 1
        shard.last_error = error
        shard.lease = None
        if shard.failures >= self.policy.max_shard_failures:
            shard.phase = ShardPhase.QUARANTINED
            return True, 0.0
        backoff = self.policy.backoff(shard.failures)
        shard.phase = ShardPhase.PENDING
        shard.ready_at = self.clock() + backoff
        return False, backoff
