"""REST front-end for the campaign manager (stdlib ``http.server``).

JSON over HTTP, dataclass-schema validated, served by a
``ThreadingHTTPServer`` (one thread per request; the manager serialises
state behind its own lock).  Routes::

    GET  /healthz                    liveness + campaign count
    GET  /metrics                    Prometheus text exposition
    GET  /metrics?format=jsonl       metrics as JSON lines (offline export)
    GET  /incidents                  incident log, JSON lines
    GET  /events                     live event stream (Server-Sent Events)
    GET  /events/log                 retained events, JSON lines
    GET  /timeseries                 list series names
    GET  /timeseries?name=...        one downsampled series window as JSON
    GET  /dash                       self-contained live dashboard (HTML)
    GET  /dash/data                  the dashboard's JSON snapshot
    GET  /campaigns                  list campaigns
    POST /campaigns                  submit (body: CampaignSpec)
    GET  /campaigns/<id>             one campaign's status
    GET  /campaigns/<id>/result      final CampaignResult (409 while running)
    POST /campaigns/<id>/cancel      cancel
    POST /workers/register           register (body: RegisterRequest)
    POST /leases                     acquire a lease (body: LeaseRequest)
    POST /leases/<id>/renew          heartbeat (body: RenewRequest,
                                     optionally carrying ShardProgress)
    POST /shards/complete            deliver an outcome (body: CompleteRequest)
    POST /shards/fail                report a failure (body: FailRequest)

Error mapping: :class:`~repro.errors.SchemaError` → 400, unknown
resources → 404, a known resource hit with the wrong method → 405,
:class:`~repro.errors.ServiceError` (including a shut down manager) →
409/503.  Lease acquire returns ``{"lease": null}`` rather than an error
when no work is ready — polling idle is not a fault.

``GET /events`` streams SSE frames (``id: <seq>`` + ``data: <json>``)
over the stdlib threading server: the response carries ``Connection:
close`` (no Content-Length on an unbounded stream), idle periods send
``: keep-alive`` comment frames, and a reconnecting client resumes from
its last sequence number via the standard ``Last-Event-ID`` header (or
``?since=N``).  ``?limit=N`` closes the stream after N data frames —
deterministic for tests and the CI smoke job.

A background *sweeper* thread calls :meth:`CampaignManager.tick`
periodically so leases held by crashed workers expire even when no
worker is polling.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import FencedWriteError, SchemaError, ServiceError
from repro.obs.dashboard import render_dashboard, snapshot_from_manager
from repro.obs.events import downsample
from repro.obs.metrics import TimeSeries
from repro.service.manager import CampaignManager
from repro.service.schemas import (
    CampaignSpec,
    CompleteRequest,
    FailRequest,
    LeaseRequest,
    RegisterRequest,
    RenewRequest,
)


def _result_as_dict(result) -> dict:
    return {
        "completed": result.completed,
        "failed": result.failed,
        "attempts": result.attempts,
        "resumed": result.resumed,
        "quarantined": result.quarantined,
    }


class _Handler(BaseHTTPRequestHandler):
    """Dispatches one request against the server's manager."""

    server: "ManagerServer"  # set by ThreadingHTTPServer machinery
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------ plumbing

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, body: str, content_type: str = "application/json") -> None:
        data = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, json.dumps(payload))

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise SchemaError(
                f"request body must be a JSON object, got {type(body).__name__}"
            )
        return body

    def _split_path(self) -> tuple[list[str], dict[str, str]]:
        """Path segments plus flattened (last-wins) query parameters."""
        parsed = urllib.parse.urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return parts, query

    @staticmethod
    def _int_param(query: dict, name: str, default: int) -> int:
        value = query.get(name)
        if value is None:
            return default
        try:
            return int(value)
        except ValueError:
            raise SchemaError(f"query parameter {name!r} must be an integer") from None

    # ------------------------------------------------------------- methods

    def do_GET(self) -> None:  # noqa: N802
        try:
            self._route_get()
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceError as exc:
            self._send_json(409, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            pass  # SSE client hung up mid-stream; nothing to answer
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(500, {"error": f"internal error: {exc}"})

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route_post()
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc)})
        except FencedWriteError as exc:
            # 409 + "fenced": the write's epoch does not match this
            # manager's.  The body carries our epoch so a stale *worker*
            # can tell it must fail over and re-register, while a stale
            # *leader* fencing a newer-epoch write simply refuses it.
            self._send_json(
                409,
                {
                    "error": str(exc),
                    "fenced": True,
                    "epoch": exc.ours,
                    "request_epoch": exc.theirs,
                },
            )
        except ServiceError as exc:
            status = 503 if "shut down" in str(exc) else 409
            self._send_json(status, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(500, {"error": f"internal error: {exc}"})

    # -------------------------------------------------------------- routes

    def _route_get(self) -> None:
        manager = self.server.manager
        parts, query = self._split_path()
        if parts == ["healthz"]:
            self._send_json(
                200,
                {
                    "ok": True,
                    "campaigns": len(manager.list_campaigns()),
                    "role": "leader",
                    "epoch": manager.epoch,
                    "seq": manager.journal.seq,
                },
            )
        elif parts == ["replication", "state"]:
            since = self._int_param(query, "since", 0)
            self._send_json(200, manager.replication_state(since))
        elif parts == ["replication", "result"]:
            key = query.get("key", "")
            payload = manager.replica_result(key) if key else None
            if payload is None:
                self._send_json(404, {"error": f"no stored result {key!r}"})
            else:
                self._send_json(200, payload)
        elif parts == ["metrics"]:
            if query.get("format") == "jsonl":
                self._send(200, manager.metrics.to_jsonl(), "application/x-ndjson")
            else:
                self._send(
                    200, manager.metrics.to_prometheus(), "text/plain; version=0.0.4"
                )
        elif parts == ["incidents"]:
            lines = "".join(
                json.dumps(d, sort_keys=True) + "\n"
                for d in manager.recorder.as_dicts()
            )
            self._send(200, lines, "application/x-ndjson")
        elif parts == ["events"]:
            self._stream_events(query)
        elif parts == ["events", "log"]:
            since = self._int_param(query, "since", 0)
            lines = "".join(
                json.dumps(e.as_dict(), sort_keys=True) + "\n"
                for e in manager.bus.since(since)
            )
            self._send(200, lines, "application/x-ndjson")
        elif parts == ["timeseries"]:
            self._serve_timeseries(query)
        elif parts == ["dash"]:
            self._send(
                200,
                render_dashboard(snapshot_from_manager(manager)),
                "text/html; charset=utf-8",
            )
        elif parts == ["dash", "data"]:
            self._send_json(200, snapshot_from_manager(manager))
        elif parts == ["campaigns"]:
            self._send_json(200, {"campaigns": manager.list_campaigns()})
        elif len(parts) == 2 and parts[0] == "campaigns":
            status = manager.status(parts[1])
            if status is None:
                self._send_json(404, {"error": f"no campaign {parts[1]!r}"})
            else:
                self._send_json(200, status)
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "result":
            status = manager.status(parts[1])
            if status is None:
                self._send_json(404, {"error": f"no campaign {parts[1]!r}"})
                return
            result = manager.result(parts[1])
            if result is None:
                self._send_json(
                    409, {"error": f"campaign {parts[1]} is not finished", "state": status["state"]}
                )
            else:
                self._send_json(200, _result_as_dict(result))
        elif _is_post_route(parts):
            self._send_json(
                405, {"error": f"{self.path!r} only accepts POST", "allow": "POST"}
            )
        else:
            self._send_json(404, {"error": f"no such resource {self.path!r}"})

    # ----------------------------------------------------------- telemetry

    def _serve_timeseries(self, query: dict) -> None:
        """``/timeseries`` — the name index, or one downsampled window."""
        manager = self.server.manager
        name = query.get("name")
        if name is None:
            names = [
                n
                for n in manager.metrics.names()
                if isinstance(manager.metrics.get(n), TimeSeries)
            ]
            self._send_json(200, {"series": names})
            return
        try:
            metric = manager.metrics.get(name)
        except KeyError:
            self._send_json(404, {"error": f"no series {name!r}"})
            return
        if not isinstance(metric, TimeSeries):
            self._send_json(
                404, {"error": f"metric {name!r} is a {metric.kind}, not a series"}
            )
            return
        since = float(query.get("since", 0.0) or 0.0)
        max_points = self._int_param(query, "max_points", 200)
        if max_points < 2:
            raise SchemaError("max_points must be >= 2")
        points = [p for p in metric.points() if p[0] >= since]
        window = downsample(points, max_points)
        self._send_json(
            200,
            {
                "name": name,
                "points": [[t, v] for t, v in window],
                "total_points": len(points),
                "downsampled": len(window) < len(points),
                "appended": metric.appended,
            },
        )

    def _stream_events(self, query: dict) -> None:
        """``/events`` — SSE until the client leaves, the server stops,
        or an optional ``?limit=N`` frame budget is spent."""
        bus = self.server.manager.bus
        header_cursor = self.headers.get("Last-Event-ID")
        default_since = int(header_cursor) if (header_cursor or "").isdigit() else 0
        cursor = self._int_param(query, "since", default_since)
        limit = self._int_param(query, "limit", 0)
        keepalive_s = self.server.sse_keepalive_s
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # An unbounded stream has no Content-Length; close delimits it.
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        sent = 0
        stop = self.server.stop_event
        # Every socket write below goes through _sse_write: a half-closed
        # client (BrokenPipe/ConnectionReset, or any OSError the kernel
        # surfaces later) detaches this subscriber by returning from the
        # handler — it must never propagate into the server machinery or
        # leave the thread wedged writing into a dead socket.
        while not stop.is_set():
            events = bus.since(cursor)
            if not events:
                if not bus.wait_for(cursor, timeout=keepalive_s):
                    if not self._sse_write(b": keep-alive\n\n"):
                        return
                    continue
                events = bus.since(cursor)
            for event in events:
                frame = f"id: {event.seq}\ndata: {json.dumps(event.as_dict())}\n\n"
                if not self._sse_write(frame.encode()):
                    return
                cursor = event.seq
                sent += 1
                if limit and sent >= limit:
                    return

    def _sse_write(self, data: bytes) -> bool:
        """Write + flush one SSE frame; False when the client is gone."""
        try:
            self.wfile.write(data)
            self.wfile.flush()
        except OSError:
            return False
        return True

    def _route_post(self) -> None:
        manager = self.server.manager
        parts, _query = self._split_path()
        body = self._read_body()
        if parts == ["campaigns"]:
            spec = CampaignSpec.from_dict(body)
            self._send_json(201, {"campaign_id": manager.submit(spec)})
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "cancel":
            self._send_json(200, {"cancelled": manager.cancel(parts[1])})
        elif parts == ["workers", "register"]:
            request = RegisterRequest.from_dict(body)
            self._send_json(
                200, manager.register_worker(request.name, request.worker_id)
            )
        elif parts == ["leases"]:
            request = LeaseRequest.from_dict(body)
            grant = manager.lease(request.worker_id, epoch=request.epoch)
            if grant is None:
                self._send_json(
                    200,
                    {
                        "lease": None,
                        "has_work": manager.queue.has_work(),
                        "retry_in_s": self.server.idle_retry_s,
                    },
                )
            else:
                self._send_json(200, {"lease": grant})
        elif len(parts) == 3 and parts[0] == "leases" and parts[2] == "renew":
            request = RenewRequest.from_dict(body)
            renewed = manager.renew(
                parts[1],
                request.worker_id,
                progress=(
                    request.progress.as_dict()
                    if request.progress is not None
                    else None
                ),
                epoch=request.epoch,
                reclaim=(
                    (request.reclaim_campaign_id, request.reclaim_key)
                    if request.reclaim_key
                    else None
                ),
            )
            # 410 Gone tells the worker its lease is lost (expired or the
            # manager restarted); the worker keeps computing and still
            # delivers — completion is key-addressed, not lease-addressed.
            if renewed is None:
                self._send_json(410, {"renewed": False})
            else:
                self._send_json(200, {"renewed": True, **renewed})
        elif parts == ["shards", "complete"]:
            request = CompleteRequest.from_dict(body)
            self._send_json(200, manager.complete(request))
        elif parts == ["shards", "fail"]:
            request = FailRequest.from_dict(body)
            self._send_json(
                200,
                manager.fail(
                    request.campaign_id,
                    request.key,
                    request.error,
                    request.worker_id,
                    epoch=request.epoch,
                    attempt=request.attempt,
                ),
            )
        elif _is_get_route(parts):
            self._send_json(
                405, {"error": f"{self.path!r} only accepts GET", "allow": "GET"}
            )
        else:
            self._send_json(404, {"error": f"no such resource {self.path!r}"})


def _is_get_route(parts: list[str]) -> bool:
    """Does this path shape belong to a GET-only resource?"""
    return (
        parts
        in (
            ["healthz"], ["metrics"], ["incidents"], ["events"],
            ["events", "log"], ["timeseries"], ["dash"], ["dash", "data"],
            ["replication", "state"], ["replication", "result"],
        )
        or (len(parts) == 2 and parts[0] == "campaigns")
        or (len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "result")
    )


def _is_post_route(parts: list[str]) -> bool:
    """Does this path shape belong to a POST-only resource?"""
    return (
        parts
        in (
            ["workers", "register"], ["leases"],
            ["shards", "complete"], ["shards", "fail"],
        )
        or (len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "cancel")
        or (len(parts) == 3 and parts[0] == "leases" and parts[2] == "renew")
    )


class ManagerServer:
    """The manager behind a threaded HTTP server + expiry sweeper.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    bound one.  ``allow_reuse_address`` (ThreadingHTTPServer's default)
    lets a restarted manager rebind the same port immediately — required
    for crash-recovery drills.
    """

    def __init__(
        self,
        manager: CampaignManager,
        host: str = "127.0.0.1",
        port: int = 8023,
        verbose: bool = False,
        idle_retry_s: float = 0.25,
        sse_keepalive_s: float = 10.0,
    ) -> None:
        self.manager = manager
        self.verbose = verbose
        self.idle_retry_s = idle_retry_s
        self.sse_keepalive_s = sse_keepalive_s
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._serve_thread: threading.Thread | None = None
        self._sweep_thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Hand the handler its context through the server object.
        self._httpd.manager = manager  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.idle_retry_s = idle_retry_s  # type: ignore[attr-defined]
        self._httpd.sse_keepalive_s = sse_keepalive_s  # type: ignore[attr-defined]
        self._httpd.stop_event = self._stop  # type: ignore[attr-defined]
        self.tick_interval_s = max(
            manager.policy.poll_interval_s, manager.policy.shard_deadline_s / 10.0
        )

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve + sweep in background threads; returns immediately."""
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="manager-http", daemon=True
        )
        self._serve_thread.start()
        self._sweep_thread = threading.Thread(
            target=self._sweep, name="manager-sweeper", daemon=True
        )
        self._sweep_thread.start()

    def serve_wait(self) -> None:
        """Block (after :meth:`start`) until :meth:`stop`; the timeout
        loop keeps the main thread responsive to SIGINT/SIGTERM."""
        while not self._stop.wait(0.5):
            pass

    def stop(self, graceful: bool = True) -> None:
        """Stop serving; ``graceful`` also snapshots + closes the journal.

        With ``graceful=False`` the manager state is abandoned as-is —
        the WAL alone must carry recovery (this is the crash drill the
        E2E test exercises, minus the SIGKILL).
        """
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._sweep_thread is not None:
            self._sweep_thread.join(timeout=5.0)
        if graceful:
            self.manager.shutdown()

    def _sweep(self) -> None:
        while not self._stop.wait(self.tick_interval_s):
            try:
                self.manager.tick()
            except ServiceError:
                break  # manager shut down under us; sweeping is over
            except Exception:  # pragma: no cover - defensive
                # A transient fault surfacing through tick (a half-closed
                # telemetry socket, a filesystem hiccup) must not kill
                # this thread: a dead sweeper means leases held by
                # crashed workers never expire again.
                continue
