"""REST front-end for the campaign manager (stdlib ``http.server``).

JSON over HTTP, dataclass-schema validated, served by a
``ThreadingHTTPServer`` (one thread per request; the manager serialises
state behind its own lock).  Routes::

    GET  /healthz                    liveness + campaign count
    GET  /metrics                    Prometheus text exposition
    GET  /incidents                  incident log, JSON lines
    GET  /campaigns                  list campaigns
    POST /campaigns                  submit (body: CampaignSpec)
    GET  /campaigns/<id>             one campaign's status
    GET  /campaigns/<id>/result      final CampaignResult (409 while running)
    POST /campaigns/<id>/cancel      cancel
    POST /workers/register           register (body: RegisterRequest)
    POST /leases                     acquire a lease (body: LeaseRequest)
    POST /leases/<id>/renew          heartbeat (body: RenewRequest)
    POST /shards/complete            deliver an outcome (body: CompleteRequest)
    POST /shards/fail                report a failure (body: FailRequest)

Error mapping: :class:`~repro.errors.SchemaError` → 400, unknown
resources → 404, :class:`~repro.errors.ServiceError` (including a shut
down manager) → 409/503.  Lease acquire returns ``{"lease": null}``
rather than an error when no work is ready — polling idle is not a
fault.

A background *sweeper* thread calls :meth:`CampaignManager.tick`
periodically so leases held by crashed workers expire even when no
worker is polling.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import SchemaError, ServiceError
from repro.service.manager import CampaignManager
from repro.service.schemas import (
    CampaignSpec,
    CompleteRequest,
    FailRequest,
    LeaseRequest,
    RegisterRequest,
    RenewRequest,
)


def _result_as_dict(result) -> dict:
    return {
        "completed": result.completed,
        "failed": result.failed,
        "attempts": result.attempts,
        "resumed": result.resumed,
        "quarantined": result.quarantined,
    }


class _Handler(BaseHTTPRequestHandler):
    """Dispatches one request against the server's manager."""

    server: "ManagerServer"  # set by ThreadingHTTPServer machinery
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------ plumbing

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, body: str, content_type: str = "application/json") -> None:
        data = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, json.dumps(payload))

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise SchemaError(
                f"request body must be a JSON object, got {type(body).__name__}"
            )
        return body

    # ------------------------------------------------------------- methods

    def do_GET(self) -> None:  # noqa: N802
        try:
            self._route_get()
        except ServiceError as exc:
            self._send_json(409, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(500, {"error": f"internal error: {exc}"})

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route_post()
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceError as exc:
            status = 503 if "shut down" in str(exc) else 409
            self._send_json(status, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_json(500, {"error": f"internal error: {exc}"})

    # -------------------------------------------------------------- routes

    def _route_get(self) -> None:
        manager = self.server.manager
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            self._send_json(
                200, {"ok": True, "campaigns": len(manager.list_campaigns())}
            )
        elif parts == ["metrics"]:
            self._send(200, manager.metrics.to_prometheus(), "text/plain; version=0.0.4")
        elif parts == ["incidents"]:
            lines = "".join(
                json.dumps(d, sort_keys=True) + "\n"
                for d in manager.recorder.as_dicts()
            )
            self._send(200, lines, "application/x-ndjson")
        elif parts == ["campaigns"]:
            self._send_json(200, {"campaigns": manager.list_campaigns()})
        elif len(parts) == 2 and parts[0] == "campaigns":
            status = manager.status(parts[1])
            if status is None:
                self._send_json(404, {"error": f"no campaign {parts[1]!r}"})
            else:
                self._send_json(200, status)
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "result":
            status = manager.status(parts[1])
            if status is None:
                self._send_json(404, {"error": f"no campaign {parts[1]!r}"})
                return
            result = manager.result(parts[1])
            if result is None:
                self._send_json(
                    409, {"error": f"campaign {parts[1]} is not finished", "state": status["state"]}
                )
            else:
                self._send_json(200, _result_as_dict(result))
        else:
            self._send_json(404, {"error": f"no such resource {self.path!r}"})

    def _route_post(self) -> None:
        manager = self.server.manager
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        body = self._read_body()
        if parts == ["campaigns"]:
            spec = CampaignSpec.from_dict(body)
            self._send_json(201, {"campaign_id": manager.submit(spec)})
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "cancel":
            self._send_json(200, {"cancelled": manager.cancel(parts[1])})
        elif parts == ["workers", "register"]:
            request = RegisterRequest.from_dict(body)
            self._send_json(200, manager.register_worker(request.name))
        elif parts == ["leases"]:
            request = LeaseRequest.from_dict(body)
            grant = manager.lease(request.worker_id)
            if grant is None:
                self._send_json(
                    200,
                    {
                        "lease": None,
                        "has_work": manager.queue.has_work(),
                        "retry_in_s": self.server.idle_retry_s,
                    },
                )
            else:
                self._send_json(200, {"lease": grant})
        elif len(parts) == 3 and parts[0] == "leases" and parts[2] == "renew":
            request = RenewRequest.from_dict(body)
            renewed = manager.renew(parts[1], request.worker_id)
            # 410 Gone tells the worker its lease is lost (expired or the
            # manager restarted); the worker keeps computing and still
            # delivers — completion is key-addressed, not lease-addressed.
            if renewed is None:
                self._send_json(410, {"renewed": False})
            else:
                self._send_json(200, {"renewed": True, **renewed})
        elif parts == ["shards", "complete"]:
            request = CompleteRequest.from_dict(body)
            self._send_json(200, manager.complete(request))
        elif parts == ["shards", "fail"]:
            request = FailRequest.from_dict(body)
            self._send_json(
                200,
                manager.fail(
                    request.campaign_id, request.key, request.error, request.worker_id
                ),
            )
        else:
            self._send_json(404, {"error": f"no such resource {self.path!r}"})


class ManagerServer:
    """The manager behind a threaded HTTP server + expiry sweeper.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    bound one.  ``allow_reuse_address`` (ThreadingHTTPServer's default)
    lets a restarted manager rebind the same port immediately — required
    for crash-recovery drills.
    """

    def __init__(
        self,
        manager: CampaignManager,
        host: str = "127.0.0.1",
        port: int = 8023,
        verbose: bool = False,
        idle_retry_s: float = 0.25,
    ) -> None:
        self.manager = manager
        self.verbose = verbose
        self.idle_retry_s = idle_retry_s
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        # Hand the handler its context through the server object.
        self._httpd.manager = manager  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.idle_retry_s = idle_retry_s  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        self._sweep_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.tick_interval_s = max(
            manager.policy.poll_interval_s, manager.policy.shard_deadline_s / 10.0
        )

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve + sweep in background threads; returns immediately."""
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="manager-http", daemon=True
        )
        self._serve_thread.start()
        self._sweep_thread = threading.Thread(
            target=self._sweep, name="manager-sweeper", daemon=True
        )
        self._sweep_thread.start()

    def serve_wait(self) -> None:
        """Block (after :meth:`start`) until :meth:`stop`; the timeout
        loop keeps the main thread responsive to SIGINT/SIGTERM."""
        while not self._stop.wait(0.5):
            pass

    def stop(self, graceful: bool = True) -> None:
        """Stop serving; ``graceful`` also snapshots + closes the journal.

        With ``graceful=False`` the manager state is abandoned as-is —
        the WAL alone must carry recovery (this is the crash drill the
        E2E test exercises, minus the SIGKILL).
        """
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._sweep_thread is not None:
            self._sweep_thread.join(timeout=5.0)
        if graceful:
            self.manager.shutdown()

    def _sweep(self) -> None:
        while not self._stop.wait(self.tick_interval_s):
            try:
                self.manager.tick()
            except ServiceError:
                break  # manager shut down under us; sweeping is over
