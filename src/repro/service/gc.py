"""Result-store garbage collection with campaign-aware retention.

The content-addressed :class:`~repro.service.store.ResultStore` only
ever grows: every completed shard of every campaign (and every serial
run pointed at the same cache) leaves a ``*.result.json`` behind, and
dedupe means old entries keep *saving* work — until the disk fills.
This module is the retention policy: ``repro service gc`` evicts stored
results by age and/or count, with one hard safety rule:

    **a result referenced by a live campaign is never evicted.**

"Live" is decided from the manager's own durable state (journal
snapshot + WAL, read-only — gc never opens the journal for append, so
it is safe to run beside a *stopped* manager or on a copy): every shard
result key of every non-cancelled campaign is protected, whether the
shard is pending (the result is about to be wanted), completed (the
final ``CampaignResult`` is served from it) or quarantined.  Only
orphans — results whose campaigns were cancelled, or that came from
other data directories' campaigns sharing the store — are candidates.

Every eviction is recorded as a ``result_evicted`` incident (severity
info), so a post-gc incident log accounts for exactly which bytes went
away and why.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import SchemaError, ServiceError
from repro.resilience.incidents import IncidentKind, IncidentRecorder
from repro.service.journal import Journal
from repro.service.schemas import CampaignSpec
from repro.service.store import ResultStore, shard_result_key


@dataclass(frozen=True)
class ResultGcPolicy:
    """Retention knobs (both optional; both None = nothing to do).

    ``max_age_s`` evicts unprotected entries older than this (by file
    mtime); ``max_count`` keeps at most this many unprotected entries,
    evicting the oldest beyond it.  ``dry_run`` reports without
    deleting.
    """

    max_age_s: float | None = None
    max_count: int | None = None
    dry_run: bool = False

    def __post_init__(self) -> None:
        if self.max_age_s is None and self.max_count is None:
            raise ServiceError(
                "result gc needs max_age_s and/or max_count (refusing to "
                "guess a retention policy)"
            )
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ServiceError(f"max_age_s must be >= 0, got {self.max_age_s}")
        if self.max_count is not None and self.max_count < 0:
            raise ServiceError(f"max_count must be >= 0, got {self.max_count}")


@dataclass
class GcReport:
    """What one gc pass did (or would do, under ``dry_run``)."""

    examined: int = 0
    protected: int = 0
    evicted: list[str] = field(default_factory=list)
    reclaimed_bytes: int = 0
    dry_run: bool = False

    def as_dict(self) -> dict:
        return {
            "examined": self.examined,
            "protected": self.protected,
            "evicted": list(self.evicted),
            "evicted_count": len(self.evicted),
            "reclaimed_bytes": self.reclaimed_bytes,
            "dry_run": self.dry_run,
        }


def referenced_result_keys(data_dir: str | Path) -> set[str]:
    """Result keys referenced by live (non-cancelled) campaigns in the
    manager state at ``data_dir`` — read-only journal replay, tolerant
    of the same corruption the manager's own recovery tolerates."""
    journal = Journal(Path(data_dir) / "journal")
    loaded = journal.load()
    specs: dict[str, dict] = {}
    cancelled: set[str] = set()
    if loaded.snapshot is not None:
        for cid, cdata in loaded.snapshot.get("campaigns", {}).items():
            specs[cid] = cdata.get("spec", {})
            if cdata.get("cancelled"):
                cancelled.add(cid)
    for record in loaded.records:
        if record["type"] == "submit":
            specs[record["data"]["campaign_id"]] = record["data"].get("spec", {})
        elif record["type"] == "cancel":
            cancelled.add(record["data"]["campaign_id"])
    keys: set[str] = set()
    for cid, spec_data in specs.items():
        if cid in cancelled:
            continue
        try:
            spec = CampaignSpec.from_dict(spec_data)
        except SchemaError:
            continue  # unreplayable spec: protects nothing
        for workload in spec.workloads:
            for abtb in spec.abtb_sizes:
                keys.add(
                    shard_result_key(
                        workload, abtb, spec.scale, spec.backend, spec.seed
                    )
                )
    return keys


def collect_garbage(
    data_dir: str | Path,
    policy: ResultGcPolicy,
    recorder: IncidentRecorder | None = None,
    clock=time.time,
) -> GcReport:
    """One gc pass over ``data_dir/results`` (see module doc)."""
    data_dir = Path(data_dir)
    store = ResultStore(data_dir / "results", recorder=recorder)
    protected = referenced_result_keys(data_dir)
    now = clock()

    rows: list[tuple[str, Path, float, int]] = []  # (key, path, mtime, size)
    for key in store.keys():
        path = store.path(key)
        try:
            stat = path.stat()
        except OSError:
            continue  # raced with another writer/gc; nothing to do
        rows.append((key, path, stat.st_mtime, stat.st_size))

    report = GcReport(examined=len(rows), dry_run=policy.dry_run)
    candidates = [r for r in rows if r[0] not in protected]
    report.protected = len(rows) - len(candidates)
    candidates.sort(key=lambda r: r[2])  # oldest first

    evict: dict[str, tuple[str, Path, float, int]] = {}
    if policy.max_age_s is not None:
        for row in candidates:
            if now - row[2] > policy.max_age_s:
                evict[row[0]] = row
    if policy.max_count is not None:
        kept = [r for r in candidates if r[0] not in evict]
        overflow = len(kept) - policy.max_count
        for row in kept[:max(0, overflow)]:
            evict[row[0]] = row

    for key, path, mtime, size in (evict[k] for k in sorted(evict)):
        if not policy.dry_run:
            try:
                path.unlink()
            except OSError:
                continue  # raced; treat as already gone
        report.evicted.append(key)
        report.reclaimed_bytes += size
        if recorder is not None:
            recorder.record(
                IncidentKind.RESULT_EVICTED,
                f"result {key} evicted by gc "
                f"({'dry-run; ' if policy.dry_run else ''}age "
                f"{now - mtime:.0f}s, {size} byte(s))",
                severity="info",
                key=key,
                path=str(path),
                age_s=round(now - mtime, 3),
                bytes=size,
                dry_run=policy.dry_run,
            )
    return report
