"""repro.service — the fault-tolerant, highly-available campaign service.

Turns :func:`repro.experiments.runner.run_campaign` into a long-running
manager/worker system that survives worker crashes, manager restarts,
*manager loss* and corrupt state without losing or double-counting a
single shard:

* :mod:`repro.service.schemas` — dataclass request/response schemas with
  strict validation (the JSON contract of the REST API), including the
  fencing ``epoch`` stamp and the heartbeat ``reclaim`` envelope;
* :mod:`repro.service.queue` — the lease-based shard queue: workers pull
  shard leases with deadlines, renew via heartbeat, and expired leases
  are requeued with exponential backoff and quarantined after N failures
  (knobs reuse :class:`~repro.resilience.supervisor.SupervisorPolicy`);
* :mod:`repro.service.store` — the durable, content-addressed result
  store keyed by config hash: shard execution is idempotent, so
  at-least-once delivery dedupes instead of corrupting aggregates;
* :mod:`repro.service.journal` — write-ahead JSONL journal plus atomic
  snapshot; a SIGKILL'd manager replays both on restart, and a standby
  tails the same records over the replication endpoints;
* :mod:`repro.service.manager` — the :class:`CampaignManager` state
  machine composing queue + store + journal, producing final
  :class:`~repro.experiments.runner.CampaignResult`s byte-identical to a
  serial fault-free run; every write is fenced by a monotonic epoch;
* :mod:`repro.service.standby` — :class:`StandbyManager`: WAL-tailing
  replication, leader-loss detection and promotion at a bumped epoch;
* :mod:`repro.service.api` — the stdlib ``http.server`` REST front end
  (submit/list/status/cancel, leases, incidents, Prometheus metrics,
  replication);
* :mod:`repro.service.worker` — the worker agent: registers, pulls
  leases, runs shards through the same ``run_workload`` path as serial
  campaigns and reports back; holds an *ordered endpoint list* and fails
  over to a promoted standby, reclaiming its in-flight lease;
* :mod:`repro.service.gc` — campaign-aware result-store retention
  (``repro service gc``): age/count eviction that never touches a
  result referenced by a live campaign;
* :mod:`repro.service.drill` — the fleet-level chaos drill
  (``repro drill``): scripted kills/partitions/promotions over a live
  campaign, held to a counter-identical-to-serial acceptance bar.

See ``docs/SERVICE.md`` for the API, the lease lifecycle, the recovery
guarantees and the HA/failover runbook.
"""

from repro.service.drill import DrillReport, DrillSpec, run_drill
from repro.service.gc import (
    GcReport,
    ResultGcPolicy,
    collect_garbage,
    referenced_result_keys,
)
from repro.service.journal import (
    JOURNAL_SNAPSHOT_SCHEMA,
    Journal,
    load_epoch,
    store_epoch,
)
from repro.service.manager import CampaignManager
from repro.service.queue import Lease, LeaseQueue, ShardPhase
from repro.service.schemas import (
    CampaignSpec,
    CompleteRequest,
    FailRequest,
    LeaseRequest,
    RegisterRequest,
    RenewRequest,
    ShardProgress,
)
from repro.service.standby import StandbyManager
from repro.service.store import RESULT_SCHEMA, ResultStore, shard_result_key
from repro.service.worker import (
    ManagerClient,
    WorkerAgent,
    WorkerChaos,
    WorkerVanished,
    http_exchange,
)

__all__ = [
    "CampaignManager",
    "CampaignSpec",
    "CompleteRequest",
    "DrillReport",
    "DrillSpec",
    "FailRequest",
    "GcReport",
    "JOURNAL_SNAPSHOT_SCHEMA",
    "Journal",
    "Lease",
    "LeaseQueue",
    "LeaseRequest",
    "ManagerClient",
    "RESULT_SCHEMA",
    "RegisterRequest",
    "RenewRequest",
    "ResultGcPolicy",
    "ResultStore",
    "ShardPhase",
    "ShardProgress",
    "StandbyManager",
    "WorkerAgent",
    "WorkerChaos",
    "WorkerVanished",
    "collect_garbage",
    "http_exchange",
    "load_epoch",
    "referenced_result_keys",
    "run_drill",
    "shard_result_key",
    "store_epoch",
]
