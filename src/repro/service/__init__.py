"""repro.service — the fault-tolerant campaign service.

Turns :func:`repro.experiments.runner.run_campaign` into a long-running
manager/worker system that survives worker crashes, manager restarts and
corrupt state without losing or double-counting a single shard:

* :mod:`repro.service.schemas` — dataclass request/response schemas with
  strict validation (the JSON contract of the REST API);
* :mod:`repro.service.queue` — the lease-based shard queue: workers pull
  shard leases with deadlines, renew via heartbeat, and expired leases
  are requeued with exponential backoff and quarantined after N failures
  (knobs reuse :class:`~repro.resilience.supervisor.SupervisorPolicy`);
* :mod:`repro.service.store` — the durable, content-addressed result
  store keyed by config hash: shard execution is idempotent, so
  at-least-once delivery dedupes instead of corrupting aggregates;
* :mod:`repro.service.journal` — write-ahead JSONL journal plus atomic
  snapshot; a SIGKILL'd manager replays both on restart;
* :mod:`repro.service.manager` — the :class:`CampaignManager` state
  machine composing queue + store + journal, producing final
  :class:`~repro.experiments.runner.CampaignResult`s byte-identical to a
  serial fault-free run;
* :mod:`repro.service.api` — the stdlib ``http.server`` REST front end
  (submit/list/status/cancel, leases, incidents, Prometheus metrics);
* :mod:`repro.service.worker` — the worker agent: registers, pulls
  leases, runs shards through the same ``run_workload`` path as serial
  campaigns (watchdog and incident recorder included) and reports back.

See ``docs/SERVICE.md`` for the API, the lease lifecycle and the
recovery guarantees.
"""

from repro.service.journal import JOURNAL_SNAPSHOT_SCHEMA, Journal
from repro.service.manager import CampaignManager
from repro.service.queue import Lease, LeaseQueue, ShardPhase
from repro.service.schemas import (
    CampaignSpec,
    CompleteRequest,
    FailRequest,
    LeaseRequest,
    RegisterRequest,
    RenewRequest,
    ShardProgress,
)
from repro.service.store import RESULT_SCHEMA, ResultStore, shard_result_key
from repro.service.worker import WorkerAgent, WorkerChaos

__all__ = [
    "CampaignManager",
    "CampaignSpec",
    "CompleteRequest",
    "FailRequest",
    "JOURNAL_SNAPSHOT_SCHEMA",
    "Journal",
    "Lease",
    "LeaseQueue",
    "LeaseRequest",
    "RESULT_SCHEMA",
    "RegisterRequest",
    "RenewRequest",
    "ResultStore",
    "ShardPhase",
    "ShardProgress",
    "WorkerAgent",
    "WorkerChaos",
    "shard_result_key",
]
