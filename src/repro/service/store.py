"""Durable, content-addressed shard result store.

Shard execution is deterministic: the summary of one (workload × ABTB ×
scale × seed × backend) pair is a pure function of its recipe.  The store
exploits that by keying every result on the *config hash* of the recipe
(:func:`shard_result_key`), with three consequences:

* **idempotence** — re-running an already-completed shard (at-least-once
  delivery after a lease expiry, a worker retry after a manager restart,
  a resubmitted campaign) dedupes against the stored result instead of
  double-counting;
* **first-write-wins determinism** — a conflicting second write (which
  determinism says should never happen outside a diverged-backend
  marker) is recorded as a ``result_conflict`` incident and discarded,
  so aggregates can never silently drift;
* **durability** — results are integrity-enveloped files
  (:mod:`repro.resilience.integrity`): a bit-flipped result is detected
  on read, reported as a ``result_corrupt`` incident and treated as a
  miss, i.e. recomputed rather than trusted.

The store is safe for concurrent writers on one filesystem: writes go
through the atomic tempfile-rename path of ``write_artifact`` and racy
first-fills of the same key produce byte-identical files.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CheckpointCorruptionError
from repro.resilience.incidents import IncidentKind
from repro.resilience.integrity import read_artifact, write_artifact
from repro.uarch.machine import machine_key

#: Integrity-envelope schema for stored shard results.
RESULT_SCHEMA = "repro.shard-result"
RESULT_SCHEMA_VERSION = 1


def shard_result_key(
    workload: str,
    abtb_entries: int,
    scale: str,
    backend: str = "reference",
    seed: int | None = None,
) -> str:
    """Config hash identifying one shard's result.

    Covers everything that determines the summary — any difference yields
    a different key, so results can never be shared across recipes that
    could diverge.  Campaign identity is deliberately *excluded*: two
    campaigns sweeping the same point share one result.
    """
    return machine_key(
        kind="shard-result",
        workload=workload,
        abtb_entries=abtb_entries,
        scale=scale,
        backend=backend,
        seed=seed,
    )


class ResultStore:
    """A directory of shard results keyed by config hash.

    ``put`` is idempotent (see module doc); ``get`` treats corrupt files
    as misses and records an incident when a recorder is attached.
    """

    def __init__(self, root: str | Path, recorder=None) -> None:
        self.root = Path(root)
        self.recorder = recorder
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.dedups = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.result.json"

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or None.

        A missing file is a silent miss; a *corrupt* file is a miss plus
        a ``result_corrupt`` incident — never trusted bytes.
        """
        path = self.path(key)
        try:
            payload = read_artifact(path, RESULT_SCHEMA, RESULT_SCHEMA_VERSION)
        except CheckpointCorruptionError as exc:
            self.misses += 1
            if exc.reason != "missing" and self.recorder is not None:
                self.recorder.record(
                    IncidentKind.RESULT_CORRUPT,
                    f"shard result {path.name} failed integrity validation "
                    f"({exc.reason}); will recompute",
                    key=key,
                    path=str(path),
                    reason=exc.reason,
                )
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, summary: dict, recipe: dict) -> tuple[Path, bool]:
        """Store one shard summary; returns ``(path, deduped)``.

        ``deduped`` is True when an intact result for ``key`` already
        existed — the new bytes are then discarded (first write wins) and
        a disagreement beyond the ``diverged_backend`` marker raises a
        ``result_conflict`` incident.
        """
        path = self.path(key)
        existing = self.get(key)
        if existing is not None:
            self.dedups += 1
            if _strip_divergence(existing.get("summary")) != _strip_divergence(summary):
                if self.recorder is not None:
                    self.recorder.record(
                        IncidentKind.RESULT_CONFLICT,
                        f"shard result {key} was delivered twice with different "
                        f"summaries; keeping the first (stored) result",
                        key=key,
                        path=str(path),
                    )
            return path, True
        self.writes += 1
        payload = {"key": key, "summary": summary, "recipe": recipe}
        return write_artifact(path, payload, RESULT_SCHEMA, RESULT_SCHEMA_VERSION), False

    def keys(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(p.name[: -len(".result.json")] for p in self.root.glob("*.result.json"))


def _strip_divergence(summary: object) -> object:
    """Summaries modulo the ``diverged_backend`` marker (a watchdog
    fallback changes the marker, never the counters)."""
    if not isinstance(summary, dict):
        return summary
    return {k: v for k, v in summary.items() if k != "diverged_backend"}
