"""Dataclass schemas for the campaign service's JSON bodies.

Every request body the REST API accepts is parsed through one of these
schemas before it touches the manager: unknown fields are rejected, types
are checked, and domain constraints (known workloads, positive ABTB
sizes, valid scale/backend names) are enforced — a malformed request can
never put the manager into a state its journal cannot replay.  Failures
raise :class:`~repro.errors.SchemaError`, which the API layer maps onto
HTTP 400 with the message in the response body.

The schemas are deliberately plain dataclasses (no external dependency):
``from_dict`` validates, ``as_dict`` produces the canonical JSON-safe
form that is journaled and therefore must stay stable across versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError

#: Scale presets the service accepts (resolved lazily to avoid importing
#: the experiment registry at schema-validation time).
SCALE_NAMES = ("smoke", "paper")

#: Simulation engines the service accepts (mirrors repro.uarch.backend.BACKENDS).
BACKEND_NAMES = ("reference", "batched")


def _require_dict(data: object, what: str) -> dict:
    if not isinstance(data, dict):
        raise SchemaError(f"{what}: expected a JSON object, got {type(data).__name__}")
    return data


def _reject_unknown(data: dict, known: set[str], what: str) -> None:
    unknown = set(data) - known
    if unknown:
        raise SchemaError(f"{what}: unknown field(s) {sorted(unknown)}")


def _str_field(data: dict, name: str, what: str, default: str | None = None) -> str:
    value = data.get(name, default)
    if not isinstance(value, str) or not value:
        raise SchemaError(f"{what}: {name!r} must be a non-empty string, got {value!r}")
    return value


def _opt_number(data: dict, name: str, what: str) -> float | None:
    value = data.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{what}: {name!r} must be a number or null, got {value!r}")
    return float(value)


def _opt_int(data: dict, name: str, what: str) -> int | None:
    value = data.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"{what}: {name!r} must be an integer or null, got {value!r}")
    return value


def _epoch_field(data: dict, what: str) -> int:
    """The optional fencing ``epoch`` stamp (0 = unstamped, accepted for
    pre-HA workers; the manager only fences stamped requests)."""
    value = data.get("epoch", 0)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise SchemaError(f"{what}: 'epoch' must be a non-negative integer, got {value!r}")
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """What to sweep: the submit body and the journaled campaign recipe.

    Mirrors the parameters of
    :func:`repro.experiments.runner.run_campaign` that make sense over
    the wire; everything the result depends on is in here, so the
    content-addressed result key can be derived from a spec alone.
    """

    workloads: tuple[str, ...]
    abtb_sizes: tuple[int, ...] = (256,)
    scale: str = "smoke"
    backend: str = "reference"
    seed: int | None = None
    timeout_s: float | None = None
    max_retries: int = 2
    watchdog_every: int = 0

    def __post_init__(self) -> None:
        what = "campaign spec"
        from repro.workloads import ALL_WORKLOADS

        if not self.workloads:
            raise SchemaError(f"{what}: 'workloads' must not be empty")
        for name in self.workloads:
            if name not in ALL_WORKLOADS:
                raise SchemaError(
                    f"{what}: unknown workload {name!r} "
                    f"(choose from {sorted(ALL_WORKLOADS)})"
                )
        if len(set(self.workloads)) != len(self.workloads):
            raise SchemaError(f"{what}: duplicate workload names")
        if not self.abtb_sizes:
            raise SchemaError(f"{what}: 'abtb_sizes' must not be empty")
        for size in self.abtb_sizes:
            if isinstance(size, bool) or not isinstance(size, int) or size < 1:
                raise SchemaError(
                    f"{what}: ABTB sizes must be positive integers, got {size!r}"
                )
        if len(set(self.abtb_sizes)) != len(self.abtb_sizes):
            raise SchemaError(f"{what}: duplicate ABTB sizes")
        if self.scale not in SCALE_NAMES:
            raise SchemaError(
                f"{what}: scale {self.scale!r} not in {SCALE_NAMES}"
            )
        if self.backend not in BACKEND_NAMES:
            raise SchemaError(
                f"{what}: backend {self.backend!r} not in {BACKEND_NAMES}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SchemaError(f"{what}: timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise SchemaError(f"{what}: max_retries must be >= 0, got {self.max_retries}")
        if self.watchdog_every < 0:
            raise SchemaError(
                f"{what}: watchdog_every must be >= 0, got {self.watchdog_every}"
            )

    @classmethod
    def from_dict(cls, data: object) -> "CampaignSpec":
        what = "campaign spec"
        data = _require_dict(data, what)
        _reject_unknown(
            data,
            {
                "workloads", "abtb_sizes", "scale", "backend", "seed",
                "timeout_s", "max_retries", "watchdog_every",
            },
            what,
        )
        workloads = data.get("workloads")
        if not isinstance(workloads, (list, tuple)) or not all(
            isinstance(w, str) for w in workloads or ()
        ):
            raise SchemaError(f"{what}: 'workloads' must be a list of strings")
        abtb_sizes = data.get("abtb_sizes", [256])
        if not isinstance(abtb_sizes, (list, tuple)):
            raise SchemaError(f"{what}: 'abtb_sizes' must be a list of integers")
        max_retries = data.get("max_retries", 2)
        if isinstance(max_retries, bool) or not isinstance(max_retries, int):
            raise SchemaError(f"{what}: 'max_retries' must be an integer")
        watchdog_every = data.get("watchdog_every", 0)
        if isinstance(watchdog_every, bool) or not isinstance(watchdog_every, int):
            raise SchemaError(f"{what}: 'watchdog_every' must be an integer")
        return cls(
            workloads=tuple(workloads),
            abtb_sizes=tuple(abtb_sizes),
            scale=_str_field(data, "scale", what, "smoke"),
            backend=_str_field(data, "backend", what, "reference"),
            seed=_opt_int(data, "seed", what),
            timeout_s=_opt_number(data, "timeout_s", what),
            max_retries=max_retries,
            watchdog_every=watchdog_every,
        )

    def as_dict(self) -> dict:
        """Canonical JSON-safe form (journaled; keep stable)."""
        return {
            "workloads": list(self.workloads),
            "abtb_sizes": list(self.abtb_sizes),
            "scale": self.scale,
            "backend": self.backend,
            "seed": self.seed,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "watchdog_every": self.watchdog_every,
        }


@dataclass(frozen=True)
class RegisterRequest:
    """``POST /workers/register`` body.

    ``worker_id`` makes re-registration idempotent: a worker failing over
    to a promoted leader (or retrying a duplicated register) asks to keep
    the id it already holds, so its in-flight lease reclaim and its
    completions keep their attribution across the failover.
    """

    name: str = ""
    worker_id: str = ""

    @classmethod
    def from_dict(cls, data: object) -> "RegisterRequest":
        what = "register request"
        data = _require_dict(data, what)
        _reject_unknown(data, {"name", "worker_id"}, what)
        name = data.get("name", "")
        worker_id = data.get("worker_id", "")
        if not isinstance(name, str):
            raise SchemaError(f"{what}: 'name' must be a string")
        if not isinstance(worker_id, str):
            raise SchemaError(f"{what}: 'worker_id' must be a string")
        return cls(name=name, worker_id=worker_id)


@dataclass(frozen=True)
class LeaseRequest:
    """``POST /leases`` (acquire) body."""

    worker_id: str
    epoch: int = 0

    @classmethod
    def from_dict(cls, data: object) -> "LeaseRequest":
        what = "lease request"
        data = _require_dict(data, what)
        _reject_unknown(data, {"worker_id", "epoch"}, what)
        return cls(
            worker_id=_str_field(data, "worker_id", what),
            epoch=_epoch_field(data, what),
        )


@dataclass(frozen=True)
class ShardProgress:
    """Optional per-shard progress a heartbeat may carry.

    ``events_done`` is the count of trace events the worker has retired
    so far on its current shard; ``workload`` / ``backend`` name what it
    is running and on which engine.  All fields default to "unknown" so
    old workers that renew without progress remain valid.
    """

    events_done: int = 0
    workload: str = ""
    backend: str = ""

    @classmethod
    def from_dict(cls, data: object) -> "ShardProgress":
        what = "shard progress"
        data = _require_dict(data, what)
        _reject_unknown(data, {"events_done", "workload", "backend"}, what)
        events_done = data.get("events_done", 0)
        if isinstance(events_done, bool) or not isinstance(events_done, int):
            raise SchemaError(f"{what}: 'events_done' must be an integer")
        if events_done < 0:
            raise SchemaError(f"{what}: 'events_done' must be >= 0, got {events_done}")
        workload = data.get("workload", "")
        backend = data.get("backend", "")
        if not isinstance(workload, str) or not isinstance(backend, str):
            raise SchemaError(f"{what}: 'workload' and 'backend' must be strings")
        return cls(events_done=events_done, workload=workload, backend=backend)

    def as_dict(self) -> dict:
        return {
            "events_done": self.events_done,
            "workload": self.workload,
            "backend": self.backend,
        }


@dataclass(frozen=True)
class RenewRequest:
    """``POST /leases/<id>/renew`` body (progress is optional).

    ``reclaim`` carries ``{campaign_id, key}`` of the shard the worker is
    executing.  A manager that does not know the lease (promoted standby,
    restarted leader — leases are soft state) re-establishes it on that
    shard instead of answering 410, which is what lets an in-flight shard
    survive a failover without re-execution.
    """

    worker_id: str
    progress: ShardProgress | None = None
    epoch: int = 0
    reclaim_campaign_id: str = ""
    reclaim_key: str = ""

    @classmethod
    def from_dict(cls, data: object) -> "RenewRequest":
        what = "renew request"
        data = _require_dict(data, what)
        _reject_unknown(data, {"worker_id", "progress", "epoch", "reclaim"}, what)
        progress_data = data.get("progress")
        progress = (
            ShardProgress.from_dict(progress_data)
            if progress_data is not None
            else None
        )
        reclaim = data.get("reclaim")
        reclaim_campaign_id = reclaim_key = ""
        if reclaim is not None:
            reclaim = _require_dict(reclaim, f"{what}: 'reclaim'")
            _reject_unknown(reclaim, {"campaign_id", "key"}, f"{what}: 'reclaim'")
            reclaim_campaign_id = _str_field(reclaim, "campaign_id", f"{what}: 'reclaim'")
            reclaim_key = _str_field(reclaim, "key", f"{what}: 'reclaim'")
        return cls(
            worker_id=_str_field(data, "worker_id", what),
            progress=progress,
            epoch=_epoch_field(data, what),
            reclaim_campaign_id=reclaim_campaign_id,
            reclaim_key=reclaim_key,
        )


@dataclass(frozen=True)
class CompleteRequest:
    """``POST /shards/complete`` body.

    Completion is addressed by ``(campaign_id, key)`` rather than by
    lease so that work finished after a lease expired — or across a
    manager restart that forgot all leases — is still bankable; the
    content-addressed result store makes the double-delivery harmless.
    """

    campaign_id: str
    key: str
    worker_id: str
    outcome: dict
    epoch: int = 0

    @classmethod
    def from_dict(cls, data: object) -> "CompleteRequest":
        what = "complete request"
        data = _require_dict(data, what)
        _reject_unknown(
            data, {"campaign_id", "key", "worker_id", "outcome", "epoch"}, what
        )
        outcome = data.get("outcome")
        outcome = _require_dict(outcome, f"{what}: 'outcome'")
        if "summary" not in outcome and not outcome.get("failed"):
            raise SchemaError(
                f"{what}: outcome must carry either a 'summary' or a 'failed' reason"
            )
        summary = outcome.get("summary")
        if summary is not None and not isinstance(summary, dict):
            raise SchemaError(f"{what}: outcome 'summary' must be an object or null")
        return cls(
            campaign_id=_str_field(data, "campaign_id", what),
            key=_str_field(data, "key", what),
            worker_id=_str_field(data, "worker_id", what),
            outcome=outcome,
            epoch=_epoch_field(data, what),
        )


@dataclass(frozen=True)
class FailRequest:
    """``POST /shards/fail`` body (worker-reported permanent failure).

    ``attempt`` (the lease's attempt number, 0 = unstamped) lets the
    manager dedupe a duplicated fail delivery: the same worker reporting
    the same attempt twice burns one unit of quarantine budget, not two.
    """

    campaign_id: str
    key: str
    worker_id: str
    error: str
    epoch: int = 0
    attempt: int = 0

    @classmethod
    def from_dict(cls, data: object) -> "FailRequest":
        what = "fail request"
        data = _require_dict(data, what)
        _reject_unknown(
            data, {"campaign_id", "key", "worker_id", "error", "epoch", "attempt"}, what
        )
        attempt = data.get("attempt", 0)
        if isinstance(attempt, bool) or not isinstance(attempt, int) or attempt < 0:
            raise SchemaError(f"{what}: 'attempt' must be a non-negative integer")
        return cls(
            campaign_id=_str_field(data, "campaign_id", what),
            key=_str_field(data, "key", what),
            worker_id=_str_field(data, "worker_id", what),
            error=_str_field(data, "error", what),
            epoch=_epoch_field(data, what),
            attempt=attempt,
        )
