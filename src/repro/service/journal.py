"""Write-ahead journal + atomic snapshot for the campaign manager.

Every state transition the manager acknowledges — campaign submitted,
shard completed, shard failed, shard quarantined, campaign cancelled —
is appended to ``wal.jsonl`` *before* the in-memory state changes and
the client sees the response.  A SIGKILL'd manager therefore loses
nothing: restart replays the snapshot and the tail of the WAL and every
acknowledged transition is back.

On-disk layout (one directory)::

    snapshot.json   integrity-enveloped full state + the seq it covers
    wal.jsonl       one record per line, each self-checksummed:
                    {"seq": N, "type": ..., "data": {...}, "sha256": ...}

Durability and corruption rules:

* appends are flushed and fsync'd before the caller proceeds;
* each line carries a SHA-256 over its ``{seq, type, data}`` body, so a
  bit flip is *detected* on replay (reported via ``problems``), the
  record is dropped, and replay continues — the manager then heals the
  gap from the content-addressed result store instead of trusting or
  dying on corrupt bytes;
* a torn final line (crash mid-append) is expected, not corruption: the
  record was never acknowledged, dropping it is correct;
* snapshots are atomic (tempfile + rename inside an integrity envelope);
  the WAL is truncated only *after* the snapshot is durable, and replay
  skips WAL records already covered by the snapshot's ``seq``, so a
  crash between the two steps merely replays harmlessly twice.

Replication support (the HA layer, :mod:`repro.service.standby`):

* the journal retains the records appended since the last compaction in
  memory (:meth:`Journal.records_since`) so a follower can *tail* the
  WAL incrementally instead of re-reading files;
* :meth:`Journal.append_replica` writes a record received from a leader
  verbatim — same seq, re-checksummed — so a promoted standby's WAL
  replays exactly like the leader's would have;
* the **fencing epoch** lives beside the journal in ``epoch.json``
  (:func:`load_epoch` / :func:`store_epoch`, atomic + fsync'd): it is
  bumped by promotion and must survive any crash, because a revived
  stale leader keeping its old epoch is precisely what makes fencing
  work.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CheckpointCorruptionError, ServiceError
from repro.resilience.integrity import payload_checksum, read_artifact, write_artifact

#: Integrity-envelope schema of the manager snapshot.
JOURNAL_SNAPSHOT_SCHEMA = "repro.service-snapshot"
JOURNAL_SNAPSHOT_VERSION = 1

_RECORD_KEYS = {"seq", "type", "data", "sha256"}


@dataclass
class JournalState:
    """What :meth:`Journal.load` recovered.

    ``snapshot`` is the snapshot payload's ``state`` (or None), ``records``
    the validated WAL records newer than the snapshot, in seq order, and
    ``problems`` human-readable descriptions of every dropped artifact
    (corrupt snapshot, bit-flipped line, torn tail) for incident logging.
    """

    snapshot: dict | None = None
    records: list[dict] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    last_seq: int = 0


class Journal:
    """The manager's write-ahead log (see module doc)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.root / "wal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self._fh = None
        self._seq = 0
        #: Seq covered by the last durable snapshot (0: none yet).
        self.snapshot_seq = 0
        #: Records appended since the last snapshot, retained so a
        #: replication follower can tail the WAL without re-reading it.
        self._recent: list[dict] = []

    # ---------------------------------------------------------------- load

    def load(self) -> JournalState:
        """Recover snapshot + WAL tail; see :class:`JournalState`.

        Never raises on corrupt content — every dropped artifact lands in
        ``problems`` instead, because recovery is exactly the moment the
        caller cannot afford to die on bad bytes.
        """
        state = JournalState()
        snapshot_seq = 0
        try:
            payload = read_artifact(
                self.snapshot_path, JOURNAL_SNAPSHOT_SCHEMA, JOURNAL_SNAPSHOT_VERSION
            )
            snapshot_seq = int(payload.get("seq", 0))
            state.snapshot = payload.get("state")
        except CheckpointCorruptionError as exc:
            if exc.reason != "missing":
                state.problems.append(
                    f"snapshot {self.snapshot_path.name} dropped ({exc.reason}): {exc}"
                )
        state.last_seq = snapshot_seq

        try:
            text = self.wal_path.read_text()
        except FileNotFoundError:
            text = ""
        except OSError as exc:
            state.problems.append(f"wal {self.wal_path.name} unreadable: {exc}")
            text = ""
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            record, problem = _parse_record(line)
            if record is None:
                if lineno == len(lines):
                    # Torn tail: the append never finished, so the
                    # transition was never acknowledged — dropping it is
                    # the correct (and expected) crash semantics.
                    state.problems.append(f"wal line {lineno}: torn tail dropped")
                else:
                    state.problems.append(f"wal line {lineno}: {problem}")
                continue
            seq = record["seq"]
            if seq <= snapshot_seq:
                continue  # already covered by the snapshot
            state.records.append(record)
            state.last_seq = max(state.last_seq, seq)
        state.records.sort(key=lambda r: r["seq"])
        self.snapshot_seq = snapshot_seq
        self._recent = list(state.records)
        return state

    # -------------------------------------------------------------- append

    def open_for_append(self, last_seq: int) -> None:
        """Start appending after recovery decided the current seq."""
        self._seq = last_seq
        self._fh = open(self.wal_path, "a", encoding="utf-8")

    def append(self, record_type: str, data: dict) -> int:
        """Durably append one record; returns its seq.

        The record is on disk (flushed + fsync'd) when this returns —
        callers apply the transition to in-memory state only afterwards,
        which is what makes the log *write-ahead*.
        """
        if self._fh is None:
            raise ServiceError("journal is not open for append (call open_for_append)")
        self._seq += 1
        body = {"seq": self._seq, "type": record_type, "data": data}
        self._write_line(body)
        self._recent.append(body)
        return self._seq

    def append_replica(self, record: dict) -> bool:
        """Durably append a record replicated from a leader, preserving
        its seq (re-checksummed locally).  Returns False for records the
        follower already holds (``seq <= current``) — replication is
        at-least-once and duplicates are expected, not errors."""
        if self._fh is None:
            raise ServiceError("journal is not open for append (call open_for_append)")
        seq = int(record["seq"])
        if seq <= self._seq:
            return False
        body = {"seq": seq, "type": record["type"], "data": record["data"]}
        self._write_line(body)
        self._seq = seq
        self._recent.append(body)
        return True

    def _write_line(self, body: dict) -> None:
        line = json.dumps({**body, "sha256": payload_checksum(body)}, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def records_since(self, seq: int) -> list[dict]:
        """Retained records newer than ``seq`` (replication tail).  A
        follower older than the last compaction cannot be served from
        here — it needs a full snapshot (``seq < snapshot_seq``)."""
        return [dict(r) for r in self._recent if r["seq"] > seq]

    @property
    def seq(self) -> int:
        return self._seq

    # ------------------------------------------------------------ snapshot

    def write_snapshot(self, state: dict, seq: int | None = None) -> Path:
        """Atomically snapshot the full state, then truncate the WAL.

        The snapshot records the seq it covers; a crash after the rename
        but before the truncate only causes harmless double-replay.
        ``seq`` lets a replication follower stamp the *leader's* seq on
        a mirrored snapshot (default: this journal's own current seq).
        """
        if seq is not None:
            self._seq = int(seq)
        path = write_artifact(
            self.snapshot_path,
            {"seq": self._seq, "state": state},
            JOURNAL_SNAPSHOT_SCHEMA,
            JOURNAL_SNAPSHOT_VERSION,
        )
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.wal_path, "w", encoding="utf-8")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.snapshot_seq = self._seq
        self._recent = []
        return path

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ------------------------------------------------------------ fencing epoch


def load_epoch(path: str | Path, default: int = 1) -> int:
    """The fencing epoch stored at ``path`` (``default`` when absent or
    unreadable — a manager that cannot read its epoch must not invent a
    high one, so corruption degrades to the *oldest* plausible epoch and
    the fencing check still protects newer leaders)."""
    try:
        payload = json.loads(Path(path).read_text())
        epoch = int(payload["epoch"])
        return epoch if epoch >= 1 else default
    except (OSError, ValueError, TypeError, KeyError):
        return default


def store_epoch(path: str | Path, epoch: int) -> None:
    """Durably (atomic rename + fsync) store the fencing epoch."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps({"epoch": int(epoch)}))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _parse_record(line: str) -> tuple[dict | None, str]:
    """Validate one WAL line; returns ``(record, "")`` or ``(None, why)``."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        return None, f"not JSON: {exc}"
    if not isinstance(record, dict) or not _RECORD_KEYS.issubset(record):
        missing = sorted(_RECORD_KEYS - set(record)) if isinstance(record, dict) else []
        return None, f"missing field(s) {missing or 'object structure'}"
    body = {"seq": record["seq"], "type": record["type"], "data": record["data"]}
    if not isinstance(body["seq"], int) or body["seq"] < 1:
        return None, f"bad seq {body['seq']!r}"
    if payload_checksum(body) != record["sha256"]:
        return None, "checksum mismatch (bit flip?)"
    if not isinstance(record["type"], str) or not isinstance(record["data"], dict):
        return None, "bad record body types"
    return body, ""
