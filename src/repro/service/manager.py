"""The campaign manager: queue + journal + result store, composed.

One :class:`CampaignManager` owns all service state.  Its contract:

* **write-ahead** — every acknowledged transition is journaled before
  in-memory state changes, so a SIGKILL'd manager recovers in-flight
  campaigns on restart (:meth:`CampaignManager.recover` replays snapshot
  + WAL) and final :class:`~repro.experiments.runner.CampaignResult`s
  are identical to an uninterrupted run;
* **idempotent completion** — results are banked in the content-addressed
  :class:`~repro.service.store.ResultStore` keyed by config hash; late,
  duplicate or post-restart deliveries dedupe instead of double-counting;
* **self-healing** — corrupt journal lines are dropped (incident:
  ``journal_corrupt``) and the lost completions are *reconciled back*
  from the result store; anything unreconcilable is simply requeued,
  which is always safe because shard execution is deterministic;
* **leases are soft state** — never journaled; a restart forgets them
  and the affected shards are pending again (worst case: a duplicate
  execution that dedupes).

Thread safety: every public method takes the manager lock; the REST
layer (:mod:`repro.service.api`) serves from multiple threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import FencedWriteError, ServiceError
from repro.experiments.runner import CampaignResult, pair_key
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.resilience.incidents import IncidentKind, IncidentRecorder
from repro.resilience.supervisor import SupervisorPolicy
from repro.service.queue import LeaseQueue, ShardPhase
from repro.service.journal import Journal, load_epoch, store_epoch
from repro.service.schemas import CampaignSpec, CompleteRequest
from repro.service.store import ResultStore, shard_result_key


@dataclass
class _ShardMeta:
    """Manager-side bookkeeping for one shard of one campaign."""

    key: str  # pair key (workload::abtb=N::scale=S)
    workload: str
    abtb: int
    result_key: str
    payload: dict
    state: str = "pending"  # pending | completed | quarantined
    failures: int = 0
    attempts: int = 0
    last_error: str = ""


@dataclass
class _Campaign:
    campaign_id: str
    spec: CampaignSpec
    shards: dict[str, _ShardMeta] = field(default_factory=dict)
    cancelled: bool = False

    @property
    def done(self) -> bool:
        if self.cancelled:
            return True
        return all(s.state in ("completed", "quarantined") for s in self.shards.values())

    @property
    def degraded(self) -> bool:
        return any(s.state == "quarantined" for s in self.shards.values())

    def state_name(self) -> str:
        if self.cancelled:
            return "cancelled"
        if not self.done:
            return "running"
        return "degraded" if self.degraded else "complete"


def _shard_payload(spec: CampaignSpec, workload: str, abtb: int) -> dict:
    """The recipe a worker needs to execute one shard."""
    return {
        "workload": workload,
        "abtb": abtb,
        "scale": spec.scale,
        "backend": spec.backend,
        "seed": spec.seed,
        "timeout_s": spec.timeout_s,
        "max_retries": spec.max_retries,
        "watchdog_every": spec.watchdog_every,
    }


class CampaignManager:
    """See module doc.

    Args:
        data_dir: root for the journal, snapshot and result store.
        policy: lease TTL / quarantine budget / backoff (the supervisor
            policy vocabulary from PR 5).
        recorder: incident recorder (one is created when omitted).
        metrics: metrics registry for ``/metrics`` (created when omitted).
        bus: event bus for ``/events`` (created when omitted; incidents
            recorded through ``recorder`` are mirrored onto it).
        clock: monotonic time source for leases (injectable for tests).
        snapshot_every: journal appends between automatic snapshots.
    """

    def __init__(
        self,
        data_dir: str | Path,
        policy: SupervisorPolicy | None = None,
        recorder: IncidentRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        bus: EventBus | None = None,
        clock=time.monotonic,
        snapshot_every: int = 50,
        reclaim_grace_s: float = 0.0,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.policy = policy or SupervisorPolicy()
        self.recorder = recorder if recorder is not None else IncidentRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = bus if bus is not None else EventBus(metrics=self.metrics)
        if self.recorder.bus is None:
            self.recorder.bus = self.bus
        self.clock = clock
        self.snapshot_every = max(1, snapshot_every)
        self._lock = threading.RLock()
        self._progress: dict[tuple[str, str], dict] = {}  # (cid, key) -> progress
        #: (campaign_id, key, worker_id, attempt) of every banked failure
        #: report, so an at-least-once duplicate fail delivery burns one
        #: unit of quarantine budget, not two.
        self._fail_seen: set[tuple[str, str, str, int]] = set()
        self.store = ResultStore(self.data_dir / "results", recorder=self.recorder)
        self.journal = Journal(self.data_dir / "journal")
        #: Fencing epoch: monotonic, durable, bumped by standby promotion.
        #: Stamped requests from any other epoch are rejected (HTTP 409),
        #: in both directions — see :class:`repro.errors.FencedWriteError`.
        self.epoch_path = self.data_dir / "epoch.json"
        self.epoch = load_epoch(self.epoch_path)
        store_epoch(self.epoch_path, self.epoch)
        self.queue = LeaseQueue(self.policy, clock=clock)
        self.campaigns: dict[str, _Campaign] = {}
        self.workers: dict[str, dict] = {}
        self._lease_index: dict[str, tuple[str, str]] = {}  # lease_id -> (cid, key)
        self._next_campaign = 1
        self._next_worker = 1
        self._appends_since_snapshot = 0
        self._closed = False
        #: Until this instant, lease() grants nothing *new* while renew
        #: reclaims still work — a freshly promoted manager holds grants
        #: back long enough for in-flight workers' heartbeats to
        #: re-establish their leases, so no shard runs twice.
        self._grants_open_at = self.clock() + max(0.0, reclaim_grace_s)
        self.recover()

    # ------------------------------------------------------------ recovery

    def recover(self) -> None:
        """Rebuild state from snapshot + WAL, then reconcile with the
        result store (heals journal corruption: a completed shard whose
        journal record was lost is re-completed from its stored result,
        and anything else is requeued — never lost, never double-counted).
        """
        with self._lock:
            loaded = self.journal.load()
            for problem in loaded.problems:
                self.recorder.record(
                    IncidentKind.JOURNAL_CORRUPT,
                    f"journal recovery dropped a record: {problem}",
                    severity="warning" if "torn tail" in problem else "error",
                    problem=problem,
                )
            if loaded.snapshot is not None:
                self._restore_snapshot(loaded.snapshot)
            replayed = 0
            for record in loaded.records:
                self._replay(record["type"], record["data"])
                replayed += 1
            self.journal.open_for_append(loaded.last_seq)

            # Requeue every non-terminal shard, seeding its failure budget.
            in_flight = 0
            for campaign in self.campaigns.values():
                if campaign.cancelled:
                    continue
                for meta in campaign.shards.values():
                    if meta.state != "pending":
                        continue
                    # Reconcile: if the result already exists (journal
                    # record lost, or a worker finished during downtime),
                    # bank it instead of recomputing.
                    stored = self.store.get(meta.result_key)
                    if stored is not None:
                        self._mark_completed(
                            campaign, meta,
                            attempts=int(stored.get("meta", {}).get("attempts", 1)),
                            journal=True, deduped=True, worker_id="<recovery>",
                        )
                        continue
                    self.queue.add(
                        self._qkey(campaign.campaign_id, meta.key),
                        meta.payload,
                        failures=meta.failures,
                    )
                    in_flight += 1
            if replayed or loaded.snapshot is not None:
                self.recorder.record(
                    IncidentKind.MANAGER_RECOVERED,
                    f"manager recovered {len(self.campaigns)} campaign(s) "
                    f"({in_flight} shard(s) requeued, {replayed} journal "
                    f"record(s) replayed)",
                    severity="info",
                    campaigns=len(self.campaigns),
                    requeued=in_flight,
                    replayed=replayed,
                )
                self.metrics.counter("service.journal_replays").inc()
                # Compact immediately: drops corrupt lines for good.
                self._snapshot()
            self._refresh_gauges()

    def _restore_snapshot(self, state: dict) -> None:
        self._next_campaign = int(state.get("next_campaign", 1))
        self._next_worker = int(state.get("next_worker", 1))
        for cid, cdata in state.get("campaigns", {}).items():
            spec = CampaignSpec.from_dict(cdata["spec"])
            campaign = self._build_campaign(cid, spec)
            campaign.cancelled = bool(cdata.get("cancelled", False))
            for key, sdata in cdata.get("shards", {}).items():
                meta = campaign.shards.get(key)
                if meta is None:
                    continue
                meta.state = sdata.get("state", "pending")
                meta.failures = int(sdata.get("failures", 0))
                meta.attempts = int(sdata.get("attempts", 0))
                meta.last_error = sdata.get("last_error", "")
            self.campaigns[cid] = campaign

    def _replay(self, record_type: str, data: dict) -> None:
        """Apply one journal record to in-memory state (no re-journaling)."""
        if record_type == "submit":
            spec = CampaignSpec.from_dict(data["spec"])
            cid = data["campaign_id"]
            self.campaigns[cid] = self._build_campaign(cid, spec)
            n = int(cid[1:]) if cid[1:].isdigit() else 0
            self._next_campaign = max(self._next_campaign, n + 1)
        elif record_type == "cancel":
            campaign = self.campaigns.get(data["campaign_id"])
            if campaign is not None:
                campaign.cancelled = True
        elif record_type == "complete":
            campaign = self.campaigns.get(data["campaign_id"])
            meta = campaign.shards.get(data["key"]) if campaign is not None else None
            if meta is not None:
                meta.state = "completed"
                meta.attempts = int(data.get("attempts", 1))
                meta.last_error = ""
        elif record_type == "fail":
            campaign = self.campaigns.get(data["campaign_id"])
            meta = campaign.shards.get(data["key"]) if campaign is not None else None
            if meta is not None and meta.state == "pending":
                meta.failures += 1
                meta.last_error = data.get("error", "")
        elif record_type == "quarantine":
            campaign = self.campaigns.get(data["campaign_id"])
            meta = campaign.shards.get(data["key"]) if campaign is not None else None
            if meta is not None and meta.state != "completed":
                meta.state = "quarantined"
                meta.failures = int(data.get("failures", meta.failures))
                meta.last_error = data.get("last_error", meta.last_error)
        # Unknown record types are ignored: a newer manager's journal
        # must not crash an older one during e.g. a rolling restart.

    # ----------------------------------------------------------- campaigns

    def submit(self, spec: CampaignSpec) -> str:
        """Journal and enqueue one campaign; returns its id.

        Shards whose config hash already has a stored result complete
        instantly (cross-campaign dedupe) — resubmitting a finished
        campaign is free.
        """
        with self._lock:
            self._check_open()
            cid = f"c{self._next_campaign:04d}"
            self._next_campaign += 1
            self.journal.append("submit", {"campaign_id": cid, "spec": spec.as_dict()})
            self._count_append()
            campaign = self._build_campaign(cid, spec)
            self.campaigns[cid] = campaign
            for meta in campaign.shards.values():
                stored = self.store.get(meta.result_key)
                if stored is not None:
                    self._mark_completed(
                        campaign, meta,
                        attempts=int(stored.get("meta", {}).get("attempts", 1)),
                        journal=True, deduped=True, worker_id="<store>",
                    )
                else:
                    self.queue.add(self._qkey(cid, meta.key), meta.payload)
            self.metrics.counter("service.campaigns_submitted").inc()
            self.bus.emit(
                "campaign_submitted",
                f"campaign {cid} submitted ({len(campaign.shards)} shard(s), "
                f"backend={spec.backend}, scale={spec.scale})",
                campaign_id=cid,
                shards=len(campaign.shards),
                backend=spec.backend,
            )
            self._refresh_gauges()
            return cid

    def cancel(self, campaign_id: str) -> bool:
        with self._lock:
            self._check_open()
            campaign = self.campaigns.get(campaign_id)
            if campaign is None or campaign.cancelled:
                return False
            self.journal.append("cancel", {"campaign_id": campaign_id})
            self._count_append()
            campaign.cancelled = True
            for meta in campaign.shards.values():
                self.queue.discard(self._qkey(campaign_id, meta.key))
            self.metrics.counter("service.campaigns_cancelled").inc()
            self.bus.emit(
                "campaign_cancelled",
                f"campaign {campaign_id} cancelled",
                severity="warning",
                campaign_id=campaign_id,
            )
            self._refresh_gauges()
            return True

    def list_campaigns(self) -> list[dict]:
        with self._lock:
            return [self._status_dict(c) for c in self.campaigns.values()]

    def status(self, campaign_id: str) -> dict | None:
        with self._lock:
            campaign = self.campaigns.get(campaign_id)
            return self._status_dict(campaign) if campaign is not None else None

    def result(self, campaign_id: str) -> CampaignResult | None:
        """The final CampaignResult, or None while the campaign runs.

        Built purely from journaled state + the result store, so it is
        identical whether the campaign ran uninterrupted or through any
        number of crashes and restarts.
        """
        with self._lock:
            campaign = self.campaigns.get(campaign_id)
            if campaign is None or not campaign.done or campaign.cancelled:
                return None
            result = CampaignResult()
            for meta in campaign.shards.values():
                if meta.state == "completed":
                    stored = self.store.get(meta.result_key)
                    if stored is None:
                        # The stored result rotted after completion:
                        # demote and recompute rather than publish a gap.
                        meta.state = "pending"
                        self.queue.add(
                            self._qkey(campaign_id, meta.key),
                            meta.payload,
                            failures=meta.failures,
                        )
                        return None
                    result.completed[meta.key] = stored["summary"]
                    result.attempts[meta.key] = meta.attempts or 1
                elif meta.state == "quarantined":
                    result.quarantined[meta.key] = {
                        "failures": meta.failures,
                        "last_error": meta.last_error,
                    }
                    result.attempts[meta.key] = meta.failures
            return result

    # ------------------------------------------------------------- workers

    def register_worker(self, name: str = "", worker_id: str = "") -> dict:
        """Register a worker (idempotent when it brings a ``worker_id``).

        A worker failing over to a promoted leader — or retrying a
        duplicated register through a flaky network — asks to keep the id
        it already holds, so its in-flight lease reclaim and completion
        attribution survive the failover.  Unknown brought ids are
        *adopted* (registration is soft state, never journaled; the new
        leader has no worker table to check against).
        """
        with self._lock:
            self._check_open()
            if worker_id and worker_id in self.workers:
                self.metrics.counter("service.workers_reregistered").inc()
                return self._register_grant(worker_id)
            if worker_id:
                # Keep the id counter ahead of any adopted id so a fresh
                # registration can never collide with it.
                num = worker_id[1:].split("-", 1)[0]
                if worker_id.startswith("w") and num.isdigit():
                    self._next_worker = max(self._next_worker, int(num) + 1)
            else:
                worker_id = f"w{self._next_worker:03d}" + (f"-{name}" if name else "")
                self._next_worker += 1
            self.workers[worker_id] = {
                "name": name,
                "shards_completed": 0,
                "registered_at": self.clock(),
            }
            self.metrics.counter("service.workers_registered").inc()
            self.bus.emit(
                "worker_registered",
                f"worker {worker_id} registered",
                worker_id=worker_id,
            )
            return self._register_grant(worker_id)

    def _register_grant(self, worker_id: str) -> dict:
        return {
            "worker_id": worker_id,
            "lease_ttl_s": self.policy.shard_deadline_s,
            "renew_every_s": self.policy.shard_deadline_s / 3.0,
            "epoch": self.epoch,
        }

    def lease(self, worker_id: str, epoch: int = 0) -> dict | None:
        """Sweep expiries, then lease the next ready shard (None: no work)."""
        with self._lock:
            self._check_open()
            self._check_epoch(epoch, "lease", worker_id=worker_id)
            self.tick()
            if self.clock() < self._grants_open_at:
                return None  # reclaim grace window: renewals only
            acquired = self.queue.acquire(worker_id)
            if acquired is None:
                return None
            lease, payload = acquired
            cid, key = self._split_qkey(lease.key)
            self._lease_index[lease.lease_id] = (cid, key)
            self.metrics.counter("service.leases_granted").inc()
            self.bus.emit(
                "shard_leased",
                f"shard {key} leased to {worker_id} "
                f"(attempt {lease.attempt}, lease {lease.lease_id})",
                campaign_id=cid,
                shard_key=key,
                worker_id=worker_id,
                lease_id=lease.lease_id,
                attempt=lease.attempt,
            )
            return {
                "lease_id": lease.lease_id,
                "campaign_id": cid,
                "key": key,
                "attempt": lease.attempt,
                "payload": payload,
                "ttl_s": self.policy.shard_deadline_s,
                "renew_every_s": self.policy.shard_deadline_s / 3.0,
                "epoch": self.epoch,
            }

    def renew(
        self,
        lease_id: str,
        worker_id: str,
        progress: dict | None = None,
        epoch: int = 0,
        reclaim: tuple[str, str] | None = None,
    ) -> dict | None:
        """Extend a lease; optionally banks the heartbeat's shard progress
        (events retired, current workload, backend in use) so lease rows
        and the dashboard show live progress instead of just lease age.

        ``reclaim`` — ``(campaign_id, key)`` of the shard the worker is
        executing — turns an unknown lease into a *re-established* one
        when this manager simply forgot it (promoted standby, restarted
        leader: leases are soft state).  That path is what lets a shard
        in flight across a failover finish under its original worker with
        zero re-execution.
        """
        with self._lock:
            self._check_open()
            self._check_epoch(epoch, "renew", worker_id=worker_id)
            renewed = self.queue.renew(lease_id, worker_id)
            if renewed is None and reclaim is not None:
                return self._reclaim(lease_id, worker_id, reclaim, progress)
            if renewed is None:
                return None
            self.metrics.counter("service.leases_renewed").inc()
            if progress:
                self._bank_progress(lease_id, worker_id, progress)
            return {"lease_id": lease_id, "ttl_s": self.policy.shard_deadline_s}

    def _reclaim(
        self,
        lease_id: str,
        worker_id: str,
        reclaim: tuple[str, str],
        progress: dict | None,
    ) -> dict | None:
        cid, key = reclaim
        campaign = self.campaigns.get(cid)
        meta = campaign.shards.get(key) if campaign is not None else None
        if campaign is None or meta is None or campaign.cancelled:
            return None
        if meta.state != "pending":
            return None  # already terminal here: let the worker drop it
        lease = self.queue.reclaim(self._qkey(cid, key), worker_id, lease_id)
        if lease is None:
            return None  # someone else holds it now
        self._lease_index[lease.lease_id] = (cid, key)
        self.metrics.counter("service.leases_reclaimed").inc()
        self.bus.emit(
            "shard_leased",
            f"shard {key} lease reclaimed by {worker_id} after failover "
            f"(lease {lease.lease_id})",
            campaign_id=cid,
            shard_key=key,
            worker_id=worker_id,
            lease_id=lease.lease_id,
            attempt=lease.attempt,
        )
        if progress:
            self._bank_progress(lease.lease_id, worker_id, progress)
        return {
            "lease_id": lease.lease_id,
            "ttl_s": self.policy.shard_deadline_s,
            "reclaimed": True,
        }

    def _bank_progress(self, lease_id: str, worker_id: str, progress: dict) -> None:
        entry = self._lease_index.get(lease_id)
        if entry is None:
            return
        cid, key = entry
        record = {
            "events_done": int(progress.get("events_done", 0)),
            "workload": str(progress.get("workload", "")),
            "backend": str(progress.get("backend", "")),
            "updated_at": self.clock(),
        }
        self._progress[(cid, key)] = record
        worker = self.workers.get(worker_id)
        if worker is not None:
            worker["last_progress"] = {**record, "campaign_id": cid, "key": key}
        self.bus.emit(
            "shard_progress",
            f"shard {key}: {record['events_done']} event(s) retired "
            f"({record['backend'] or 'unknown backend'})",
            campaign_id=cid,
            shard_key=key,
            worker_id=worker_id,
            events_done=record["events_done"],
            workload=record["workload"],
            backend=record["backend"],
        )
        self.metrics.series("service.progress.events_done").append(
            self.clock(), float(record["events_done"])
        )

    def complete(self, request: CompleteRequest) -> dict:
        """Bank one shard outcome (idempotent; see CompleteRequest doc)."""
        with self._lock:
            self._check_open()
            self._check_epoch(
                request.epoch, "complete",
                worker_id=request.worker_id, key=request.key,
            )
            campaign = self.campaigns.get(request.campaign_id)
            if campaign is None:
                return {"status": "unknown-campaign"}
            meta = campaign.shards.get(request.key)
            if meta is None:
                return {"status": "unknown-shard"}
            outcome = request.outcome
            self.recorder.extend_dicts(outcome.get("incidents"))
            if campaign.cancelled:
                return {"status": "ignored-cancelled"}
            if outcome.get("failed"):
                return self._record_failure(
                    campaign, meta, str(outcome["failed"]), request.worker_id
                )
            summary = outcome.get("summary")
            if not isinstance(summary, dict):
                return self._record_failure(
                    campaign, meta, "outcome carried no summary", request.worker_id
                )
            _, deduped = self.store.put(
                meta.result_key,
                summary,
                recipe=meta.payload,
            )
            if meta.state == "completed":
                self.metrics.counter("service.shards_deduped").inc()
                return {"status": "deduped"}
            status = self._mark_completed(
                campaign, meta,
                attempts=int(outcome.get("attempts", 1)),
                journal=True, deduped=deduped, worker_id=request.worker_id,
            )
            worker = self.workers.get(request.worker_id)
            if worker is not None:
                worker["shards_completed"] += 1
            return {"status": status, "deduped": deduped}

    def fail(
        self,
        campaign_id: str,
        key: str,
        error: str,
        worker_id: str,
        epoch: int = 0,
        attempt: int = 0,
    ) -> dict:
        with self._lock:
            self._check_open()
            self._check_epoch(epoch, "fail", worker_id=worker_id, key=key)
            campaign = self.campaigns.get(campaign_id)
            meta = campaign.shards.get(key) if campaign is not None else None
            if campaign is None or meta is None:
                return {"status": "unknown-shard"}
            if campaign.cancelled or meta.state != "pending":
                return {"status": "ignored"}
            if attempt:
                token = (campaign_id, key, worker_id, attempt)
                if token in self._fail_seen:
                    self.metrics.counter("service.fails_deduped").inc()
                    return {"status": "deduped"}
                self._fail_seen.add(token)
            return self._record_failure(campaign, meta, error, worker_id)

    # ---------------------------------------------------------------- tick

    def tick(self) -> int:
        """Sweep expired leases; returns how many expired."""
        with self._lock:
            events = self.queue.expire()
            for event in events:
                cid, key = self._split_qkey(event.key)
                self._lease_index.pop(event.lease_id, None)
                campaign = self.campaigns.get(cid)
                meta = campaign.shards.get(key) if campaign is not None else None
                self.metrics.counter("service.leases_expired").inc()
                self.recorder.record(
                    IncidentKind.LEASE_EXPIRED,
                    event.last_error,
                    severity="warning",
                    key=key,
                    campaign_id=cid,
                    worker_id=event.worker_id,
                    failures=event.failures,
                )
                if campaign is None or meta is None:
                    continue
                self.journal.append(
                    "fail",
                    {
                        "campaign_id": cid, "key": key,
                        "error": event.last_error, "worker_id": event.worker_id,
                    },
                )
                self._count_append()
                meta.failures = event.failures
                meta.last_error = event.last_error
                if event.quarantined:
                    self._quarantine(campaign, meta)
                else:
                    self.recorder.record(
                        IncidentKind.SHARD_REQUEUED,
                        f"shard {key} requeued (failure {event.failures}/"
                        f"{self.policy.max_shard_failures}, backoff "
                        f"{event.backoff_s:.2f}s)",
                        severity="warning",
                        key=key,
                        campaign_id=cid,
                        failures=event.failures,
                        backoff_s=event.backoff_s,
                    )
            if events:
                self._refresh_gauges()
            return len(events)

    # ------------------------------------------------------------ shutdown

    def shutdown(self) -> None:
        """Graceful stop: snapshot, close the journal, record the incident."""
        with self._lock:
            if self._closed:
                return
            running = sum(
                1 for c in self.campaigns.values() if not c.done
            )
            self._snapshot()
            self.journal.close()
            self._closed = True
            self.recorder.record(
                IncidentKind.SHUTDOWN,
                f"manager shut down gracefully with {running} campaign(s) "
                f"in flight; journal snapshot flushed",
                severity="info",
                in_flight=running,
            )

    @property
    def closed(self) -> bool:
        return self._closed

    # ----------------------------------------------------------- internals

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("manager is shut down")

    def _check_epoch(self, theirs: int, op: str, **context) -> None:
        """Fence a stamped write from another epoch (0 = unstamped, let
        through: pre-HA workers and local callers never stamp)."""
        if theirs == 0 or theirs == self.epoch:
            return
        direction = (
            "stale writer must re-register against the current leader"
            if theirs < self.epoch
            else "this manager is a stale leader; refusing to merge"
        )
        self.metrics.counter("service.fenced_writes").inc()
        self.recorder.record(
            IncidentKind.FENCED_WRITE,
            f"{op} fenced: request epoch {theirs} != manager epoch "
            f"{self.epoch} ({direction})",
            severity="warning",
            op=op,
            ours=self.epoch,
            theirs=theirs,
            **context,
        )
        raise FencedWriteError(
            f"{op} carries epoch {theirs} but this manager is at epoch "
            f"{self.epoch}: {direction}",
            ours=self.epoch,
            theirs=theirs,
        )

    @staticmethod
    def _qkey(campaign_id: str, key: str) -> str:
        return f"{campaign_id}/{key}"

    @staticmethod
    def _split_qkey(qkey: str) -> tuple[str, str]:
        cid, _, key = qkey.partition("/")
        return cid, key

    def _build_campaign(self, cid: str, spec: CampaignSpec) -> _Campaign:
        campaign = _Campaign(campaign_id=cid, spec=spec)
        for workload in spec.workloads:
            for abtb in spec.abtb_sizes:
                key = pair_key(workload, abtb, spec.scale)
                campaign.shards[key] = _ShardMeta(
                    key=key,
                    workload=workload,
                    abtb=abtb,
                    result_key=shard_result_key(
                        workload, abtb, spec.scale, spec.backend, spec.seed
                    ),
                    payload=_shard_payload(spec, workload, abtb),
                )
        return campaign

    def _mark_completed(
        self,
        campaign: _Campaign,
        meta: _ShardMeta,
        attempts: int,
        journal: bool,
        deduped: bool,
        worker_id: str,
    ) -> str:
        if journal:
            self.journal.append(
                "complete",
                {
                    "campaign_id": campaign.campaign_id,
                    "key": meta.key,
                    "attempts": attempts,
                    "deduped": deduped,
                    "worker_id": worker_id,
                },
            )
            self._count_append()
        queue_status = self.queue.complete(self._qkey(campaign.campaign_id, meta.key))
        meta.state = "completed"
        meta.attempts = attempts
        meta.last_error = ""
        self._progress.pop((campaign.campaign_id, meta.key), None)
        self.metrics.counter("service.shards_completed").inc()
        if deduped:
            self.metrics.counter("service.shards_deduped").inc()
        done_count = sum(
            1 for m in campaign.shards.values() if m.state == "completed"
        )
        self.metrics.series(
            f"service.campaign.{campaign.campaign_id}.completed"
        ).append(self.clock(), float(done_count))
        self.bus.emit(
            "shard_completed",
            f"shard {meta.key} completed by {worker_id} "
            f"(attempt {attempts}{', deduped' if deduped else ''})",
            campaign_id=campaign.campaign_id,
            shard_key=meta.key,
            worker_id=worker_id,
            attempts=attempts,
            deduped=deduped,
        )
        if campaign.done:
            self.metrics.counter("service.campaigns_completed").inc()
            self._emit_campaign_done(campaign)
        self._refresh_gauges()
        return "healed" if queue_status == "healed" else "completed"

    def _emit_campaign_done(self, campaign: _Campaign) -> None:
        state = campaign.state_name()
        self.bus.emit(
            "campaign_complete",
            f"campaign {campaign.campaign_id} finished: {state} "
            f"({len(campaign.shards)} shard(s))",
            severity="warning" if state == "degraded" else "info",
            campaign_id=campaign.campaign_id,
            state=state,
        )

    def _record_failure(
        self, campaign: _Campaign, meta: _ShardMeta, error: str, worker_id: str
    ) -> dict:
        self.journal.append(
            "fail",
            {
                "campaign_id": campaign.campaign_id, "key": meta.key,
                "error": error, "worker_id": worker_id,
            },
        )
        self._count_append()
        quarantined, backoff = self.queue.fail(
            self._qkey(campaign.campaign_id, meta.key), error
        )
        meta.failures += 1
        meta.last_error = error
        self.metrics.counter("service.shards_failed").inc()
        self.recorder.record(
            IncidentKind.WORKER_DEATH if "crash" in error else IncidentKind.SHARD_REQUEUED,
            f"shard {meta.key} failed on {worker_id}: {error}",
            severity="warning",
            key=meta.key,
            campaign_id=campaign.campaign_id,
            failures=meta.failures,
        )
        if quarantined:
            self._quarantine(campaign, meta)
            return {"status": "quarantined"}
        self._refresh_gauges()
        return {"status": "requeued", "backoff_s": backoff}

    def _quarantine(self, campaign: _Campaign, meta: _ShardMeta) -> None:
        self.journal.append(
            "quarantine",
            {
                "campaign_id": campaign.campaign_id,
                "key": meta.key,
                "failures": meta.failures,
                "last_error": meta.last_error,
            },
        )
        self._count_append()
        self.queue.quarantine(
            self._qkey(campaign.campaign_id, meta.key), meta.last_error
        )
        meta.state = "quarantined"
        self._progress.pop((campaign.campaign_id, meta.key), None)
        self.metrics.counter("service.shards_quarantined").inc()
        self.recorder.record(
            IncidentKind.SHARD_QUARANTINED,
            f"shard {meta.key} quarantined after {meta.failures} lease-level "
            f"failure(s); campaign {campaign.campaign_id} will complete degraded",
            key=meta.key,
            campaign_id=campaign.campaign_id,
            failures=meta.failures,
        )
        if campaign.done:
            self._emit_campaign_done(campaign)
        self._refresh_gauges()

    def _status_dict(self, campaign: _Campaign) -> dict:
        counts = {"pending": 0, "leased": 0, "completed": 0, "quarantined": 0}
        for meta in campaign.shards.values():
            if meta.state in ("completed", "quarantined"):
                counts[meta.state] += 1
            else:
                phase = self.queue.phase(self._qkey(campaign.campaign_id, meta.key))
                counts["leased" if phase is ShardPhase.LEASED else "pending"] += 1
        return {
            "campaign_id": campaign.campaign_id,
            "state": campaign.state_name(),
            "spec": campaign.spec.as_dict(),
            "shards": {"total": len(campaign.shards), **counts},
        }

    def _count_append(self) -> None:
        self._appends_since_snapshot += 1
        if self._appends_since_snapshot >= self.snapshot_every:
            self._snapshot()

    def _snapshot_state(self) -> dict:
        """The full journal-snapshot state dict (also served to a
        replication follower that is older than the last compaction)."""
        return {
            "next_campaign": self._next_campaign,
            "next_worker": self._next_worker,
            "campaigns": {
                cid: {
                    "spec": c.spec.as_dict(),
                    "cancelled": c.cancelled,
                    "shards": {
                        key: {
                            "state": m.state,
                            "failures": m.failures,
                            "attempts": m.attempts,
                            "last_error": m.last_error,
                        }
                        for key, m in c.shards.items()
                    },
                }
                for cid, c in self.campaigns.items()
            },
        }

    def _snapshot(self) -> None:
        self.journal.write_snapshot(self._snapshot_state())
        self._appends_since_snapshot = 0

    def _refresh_gauges(self) -> None:
        active = sum(1 for c in self.campaigns.values() if not c.done)
        self.metrics.gauge("service.campaigns_active").set(float(active))
        counts = self.queue.counts()
        self.metrics.gauge("service.shards_pending").set(float(counts["pending"]))
        self.metrics.gauge("service.shards_leased").set(float(counts["leased"]))
        # Mirror the queue depths as time series so /timeseries (and the
        # dashboard's live charts) can show the campaign converging, not
        # just its current value.
        t = self.clock()
        self.metrics.series("service.queue.pending").append(t, float(counts["pending"]))
        self.metrics.series("service.queue.leased").append(t, float(counts["leased"]))
        self.metrics.series("service.active_campaigns").append(t, float(active))

    # -------------------------------------------------------- replication

    def replication_state(self, since_seq: int) -> dict:
        """One replication pull for a follower that has applied records
        up to ``since_seq``.

        A follower inside the retained tail gets incremental ``records``;
        one older than the last compaction gets a full ``snapshot``
        (state + the seq it covers) instead.  ``result_keys`` is read
        under the same lock as the journal tail — and the leader stores a
        result *before* journaling its completion — so every completion
        visible in ``records``/``snapshot`` has its result fetchable by
        the time the follower asks.  The pull carries the leader's epoch:
        a follower that ever sees a *higher* epoch than its leader's
        original one knows a newer leader exists somewhere.
        """
        with self._lock:
            out = {
                "epoch": self.epoch,
                "seq": self.journal.seq,
                "snapshot_seq": self.journal.snapshot_seq,
                "result_keys": self.store.keys(),
            }
            if since_seq < self.journal.snapshot_seq:
                out["snapshot"] = {
                    "seq": self.journal.seq,
                    "state": self._snapshot_state(),
                }
                out["records"] = []
            else:
                out["records"] = self.journal.records_since(since_seq)
            return out

    def replica_result(self, key: str) -> dict | None:
        """One stored result payload for a replication follower (None:
        missing or corrupt — the follower simply retries next round)."""
        with self._lock:
            return self.store.get(key)

    # ---------------------------------------------------------- telemetry

    def leases(self) -> list[dict]:
        """Live lease rows (soft state) with any banked progress."""
        with self._lock:
            now = self.clock()
            rows = []
            for lease in self.queue.live_leases():
                cid, key = self._split_qkey(lease.key)
                row = {
                    "lease_id": lease.lease_id,
                    "campaign_id": cid,
                    "key": key,
                    "worker_id": lease.worker_id,
                    "attempt": lease.attempt,
                    "expires_in_s": round(lease.expires_at - now, 3),
                }
                progress = self._progress.get((cid, key))
                if progress is not None:
                    row["progress"] = {
                        **progress,
                        "age_s": round(now - progress["updated_at"], 3),
                    }
                rows.append(row)
            return rows

    def telemetry(self) -> dict:
        """One consistent snapshot for the dashboard (``/dash/data``)."""
        with self._lock:
            return {
                "campaigns": [self._status_dict(c) for c in self.campaigns.values()],
                "leases": self.leases(),
                "workers": [
                    {
                        "worker_id": wid,
                        "name": info.get("name", ""),
                        "shards_completed": info.get("shards_completed", 0),
                        "last_progress": info.get("last_progress"),
                    }
                    for wid, info in self.workers.items()
                ],
                "incident_counts": self.recorder.counts(),
                "incidents": self.recorder.as_dicts()[-50:],
                "last_seq": self.bus.last_seq,
            }
