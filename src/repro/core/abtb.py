"""The alternate BTB (ABTB).

A retire-time table mapping *trampoline addresses* to the *library function
addresses* their indirect branches jump to.  When a call's resolved target
hits in the ABTB, the branch-resolution logic treats a prediction equal to
the mapped function address as correct and promotes the call's BTB entry —
this is what lets the front end skip the trampoline on later executions.

Each entry costs 12 bytes: six for the trampoline (call target) address and
six for the function address (x86-64 uses 48-bit virtual addresses), per
Section 5.3 of the paper.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError

#: Bytes per ABTB entry (two 48-bit virtual addresses).
ABTB_ENTRY_BYTES = 12


class ABTB:
    """Fully-associative, LRU alternate BTB.

    The paper sweeps sizes from a handful of entries to 256 (≈1.5 KB);
    full associativity with LRU matches its working-set analysis
    (Figure 5's "ABTB working sets").
    """

    def __init__(self, entries: int = 256, policy: str = "lru") -> None:
        if entries < 1:
            raise ConfigError(f"ABTB needs at least one entry, got {entries}")
        if policy not in ("lru", "fifo"):
            raise ConfigError(f"unknown ABTB replacement policy {policy!r}")
        self.entries = entries
        self.policy = policy
        #: trampoline address -> (function address, GOT slot address)
        self._table: "OrderedDict[int, tuple[int, int]]" = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.evictions = 0
        self.flushes = 0

    def lookup(self, trampoline_addr: int) -> int | None:
        """Mapped function address for a trampoline, or None."""
        self.lookups += 1
        entry = self._table.get(trampoline_addr)
        if entry is None:
            return None
        self.hits += 1
        if self.policy == "lru":
            self._table.move_to_end(trampoline_addr)
        return entry[0]

    def insert(self, trampoline_addr: int, function_addr: int, got_addr: int) -> None:
        """Learn (or refresh) a trampoline→function mapping."""
        self.inserts += 1
        if trampoline_addr in self._table:
            self._table.move_to_end(trampoline_addr)
            self._table[trampoline_addr] = (function_addr, got_addr)
            return
        if len(self._table) >= self.entries:
            self._table.popitem(last=False)
            self.evictions += 1
        self._table[trampoline_addr] = (function_addr, got_addr)

    def got_addresses(self) -> set[int]:
        """GOT slot addresses backing the live entries."""
        return {got for (_func, got) in self._table.values()}

    def flush(self) -> None:
        """Clear every entry (Bloom hit, context switch, or explicit)."""
        self._table.clear()
        self.flushes += 1

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Table contents in replacement order plus stats, JSON-safe."""
        return {
            "entries": self.entries,
            "policy": self.policy,
            "table": [
                [tramp, func, got] for tramp, (func, got) in self._table.items()
            ],
            "lookups": self.lookups,
            "hits": self.hits,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "flushes": self.flushes,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically configured ABTB.

        The table's iteration order *is* the replacement order, so rows
        are reinserted in snapshot order.
        """
        if state.get("entries") != self.entries or state.get("policy") != self.policy:
            raise ConfigError(
                f"ABTB: snapshot (entries={state.get('entries')!r}, "
                f"policy={state.get('policy')!r}) does not match instance "
                f"(entries={self.entries}, policy={self.policy!r})"
            )
        self._table = OrderedDict(
            (int(tramp), (int(func), int(got))) for tramp, func, got in state["table"]
        )
        self.lookups = int(state["lookups"])
        self.hits = int(state["hits"])
        self.inserts = int(state["inserts"])
        self.evictions = int(state["evictions"])
        self.flushes = int(state["flushes"])

    def reset(self) -> None:
        """Empty table, zeroed stats (including the flush count)."""
        self._table.clear()
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.evictions = 0
        self.flushes = 0

    def describe(self) -> dict:
        """Static configuration."""
        return {
            "kind": "abtb",
            "entries": self.entries,
            "policy": self.policy,
            "storage_bytes": self.storage_bytes,
        }

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, trampoline_addr: int) -> bool:
        return trampoline_addr in self._table

    @property
    def storage_bytes(self) -> int:
        """Hardware storage cost of this table."""
        return self.entries * ABTB_ENTRY_BYTES

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0
