"""The alternate BTB (ABTB).

A retire-time table mapping *trampoline addresses* to the *library function
addresses* their indirect branches jump to.  When a call's resolved target
hits in the ABTB, the branch-resolution logic treats a prediction equal to
the mapped function address as correct and promotes the call's BTB entry —
this is what lets the front end skip the trampoline on later executions.

Each entry costs 12 bytes: six for the trampoline (call target) address and
six for the function address (x86-64 uses 48-bit virtual addresses), per
Section 5.3 of the paper.

The paper's working-set analysis (Figure 5) assumes full associativity;
real front-end tables are set-associative (the BTB model in
:mod:`repro.uarch.btb` is 4-way).  This ABTB supports both: ``ways=0``
(the default) is the paper's fully-associative organization, ``ways=n``
an n-way set-associative one indexed by trampoline address — ``ways=1``
being the direct-mapped design point.  Sets are indexed by
``(trampoline_addr >> 4)`` because PLT stubs sit on a 16-byte pitch
(:data:`repro.linker.module.PLT_ENTRY_SIZE`): consecutive stubs land in
consecutive sets instead of aliasing within one.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError

#: Bytes per ABTB entry (two 48-bit virtual addresses).
ABTB_ENTRY_BYTES = 12

#: PLT stubs are 16 bytes apart; indexing by address >> 4 spreads
#: consecutive trampolines across consecutive sets.
_SET_SHIFT = 4


class ABTB:
    """LRU/FIFO alternate BTB, fully- or set-associative.

    The paper sweeps sizes from a handful of entries to 256 (≈1.5 KB)
    with full associativity, matching its working-set analysis
    (Figure 5's "ABTB working sets").  ``ways`` selects the
    organization: ``0`` keeps one set covering every entry (fully
    associative, bit-exact with the historical behaviour), ``n >= 1``
    splits capacity into ``entries // n`` power-of-two sets of ``n``
    ways each, with replacement confined to the indexed set.
    """

    def __init__(self, entries: int = 256, policy: str = "lru", ways: int = 0) -> None:
        if entries < 1:
            raise ConfigError(f"ABTB needs at least one entry, got {entries}")
        if policy not in ("lru", "fifo"):
            raise ConfigError(f"unknown ABTB replacement policy {policy!r}")
        if ways < 0:
            raise ConfigError(f"ABTB ways must be >= 0, got {ways}")
        if ways:
            if entries % ways:
                raise ConfigError(
                    f"ABTB ways ({ways}) must divide entries ({entries})"
                )
            n_sets = entries // ways
            if n_sets & (n_sets - 1):
                raise ConfigError(
                    f"ABTB set count must be a power of two, got {n_sets} "
                    f"({entries} entries / {ways} ways)"
                )
        else:
            n_sets = 1  # fully associative: one set holds everything
        self.entries = entries
        self.policy = policy
        self.ways = ways
        self._set_capacity = ways if ways else entries
        self._set_mask = n_sets - 1
        #: per set: trampoline address -> (function address, GOT slot address)
        self._sets: list["OrderedDict[int, tuple[int, int]]"] = [
            OrderedDict() for _ in range(n_sets)
        ]
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.evictions = 0
        self.flushes = 0

    def _set_for(self, trampoline_addr: int) -> "OrderedDict[int, tuple[int, int]]":
        return self._sets[(trampoline_addr >> _SET_SHIFT) & self._set_mask]

    def lookup(self, trampoline_addr: int) -> int | None:
        """Mapped function address for a trampoline, or None."""
        self.lookups += 1
        table = self._set_for(trampoline_addr)
        entry = table.get(trampoline_addr)
        if entry is None:
            return None
        self.hits += 1
        if self.policy == "lru":
            table.move_to_end(trampoline_addr)
        return entry[0]

    def insert(self, trampoline_addr: int, function_addr: int, got_addr: int) -> None:
        """Learn (or refresh) a trampoline→function mapping."""
        self.inserts += 1
        table = self._set_for(trampoline_addr)
        if trampoline_addr in table:
            table.move_to_end(trampoline_addr)
            table[trampoline_addr] = (function_addr, got_addr)
            return
        if len(table) >= self._set_capacity:
            table.popitem(last=False)
            self.evictions += 1
        table[trampoline_addr] = (function_addr, got_addr)

    def got_addresses(self) -> set[int]:
        """GOT slot addresses backing the live entries."""
        return {
            got for table in self._sets for (_func, got) in table.values()
        }

    def flush(self) -> None:
        """Clear every entry (Bloom hit, context switch, or explicit)."""
        for table in self._sets:
            table.clear()
        self.flushes += 1

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Per-set contents in replacement order plus stats, JSON-safe."""
        return {
            "entries": self.entries,
            "policy": self.policy,
            "ways": self.ways,
            "sets": [
                [[tramp, func, got] for tramp, (func, got) in table.items()]
                for table in self._sets
            ],
            "lookups": self.lookups,
            "hits": self.hits,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "flushes": self.flushes,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically configured ABTB.

        Each set's iteration order *is* its replacement order, so rows
        are reinserted in snapshot order.
        """
        if (
            state.get("entries") != self.entries
            or state.get("policy") != self.policy
            or state.get("ways", 0) != self.ways
        ):
            raise ConfigError(
                f"ABTB: snapshot (entries={state.get('entries')!r}, "
                f"policy={state.get('policy')!r}, ways={state.get('ways')!r}) "
                f"does not match instance (entries={self.entries}, "
                f"policy={self.policy!r}, ways={self.ways})"
            )
        sets = state["sets"]
        if len(sets) != len(self._sets):
            raise ConfigError(
                f"ABTB: snapshot has {len(sets)} set(s), instance has "
                f"{len(self._sets)}"
            )
        self._sets = [
            OrderedDict(
                (int(tramp), (int(func), int(got))) for tramp, func, got in rows
            )
            for rows in sets
        ]
        self.lookups = int(state["lookups"])
        self.hits = int(state["hits"])
        self.inserts = int(state["inserts"])
        self.evictions = int(state["evictions"])
        self.flushes = int(state["flushes"])

    def reset(self) -> None:
        """Empty table, zeroed stats (including the flush count)."""
        for table in self._sets:
            table.clear()
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.evictions = 0
        self.flushes = 0

    def describe(self) -> dict:
        """Static configuration."""
        return {
            "kind": "abtb",
            "entries": self.entries,
            "policy": self.policy,
            "ways": self.ways,
            "sets": len(self._sets),
            "storage_bytes": self.storage_bytes,
        }

    def __len__(self) -> int:
        return sum(len(table) for table in self._sets)

    def __contains__(self, trampoline_addr: int) -> bool:
        return trampoline_addr in self._set_for(trampoline_addr)

    @property
    def storage_bytes(self) -> int:
        """Hardware storage cost of this table."""
        return self.entries * ABTB_ENTRY_BYTES

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0
