"""The paper's primary contribution: ABTB, Bloom filter and the
speculative trampoline-skip mechanism."""

from repro.core.abtb import ABTB, ABTB_ENTRY_BYTES
from repro.core.bloom import BloomFilter
from repro.core.config import MechanismConfig
from repro.core.mechanism import MechanismStats, TrampolineSkipMechanism

__all__ = [
    "ABTB",
    "ABTB_ENTRY_BYTES",
    "BloomFilter",
    "MechanismConfig",
    "MechanismStats",
    "TrampolineSkipMechanism",
]
