"""The speculative trampoline-skip mechanism (Section 3 of the paper).

This object holds the ABTB and Bloom filter and implements the retire-time
logic; the CPU model (:mod:`repro.uarch.cpu`) calls into it at the points
where real hardware would:

* ``learn`` — when a retired ``call`` is immediately followed by a retired
  indirect branch (the trampoline signature), map the trampoline address to
  the branch's target and remember the GOT slot in the Bloom filter;
* ``mapped_target`` — during branch resolution of a call, look the call's
  *real* target up in the ABTB; a hit means the predicted target may
  legitimately be the library function rather than the trampoline;
* ``snoop_store`` — every retired store (and each coherence invalidation)
  probes the Bloom filter; a hit conservatively flushes the ABTB and the
  filter;
* ``on_context_switch`` — without ASID support the ABTB is invalidated
  like the TLB.

The alternate implementation of Section 3.4 (``use_bloom=False``) skips
store snooping entirely; correctness then depends on software calling
:meth:`invalidate` when it rewrites a GOT (e.g. ``dlclose``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.abtb import ABTB
from repro.core.bloom import BloomFilter
from repro.core.config import MechanismConfig
from repro.errors import ConfigError


@dataclass
class MechanismStats:
    """Event counts specific to the mechanism."""

    learns: int = 0
    promotions: int = 0
    store_flushes: int = 0
    context_flushes: int = 0
    explicit_flushes: int = 0
    coherence_flushes: int = 0
    #: Skips that would have executed stale targets — must stay zero
    #: whenever the Bloom filter is enabled (correctness property).
    unsafe_skips: int = 0


@dataclass
class TrampolineSkipMechanism:
    """ABTB + Bloom filter with the paper's retire-time protocol."""

    config: MechanismConfig = field(default_factory=MechanismConfig)

    def __post_init__(self) -> None:
        self.abtb = ABTB(
            self.config.abtb_entries, self.config.abtb_policy,
            ways=self.config.abtb_ways,
        )
        self.bloom = BloomFilter(self.config.bloom_bits, self.config.bloom_hashes)
        self.stats = MechanismStats()

    # ------------------------------------------------------------- retire

    def learn(self, call_pc: int, trampoline_pc: int, branch_target: int, got_addr: int) -> None:
        """Record a retired call→indirect-branch pair.

        ``trampoline_pc`` is the call's target (the PLT stub address);
        ``branch_target`` is where the stub's indirect branch actually went;
        ``got_addr`` is the address the branch's pointer was loaded from.
        """
        self.stats.learns += 1
        self.abtb.insert(trampoline_pc, branch_target, got_addr)
        if self.config.use_bloom:
            self.bloom.add(got_addr)

    def mapped_target(self, real_target: int) -> int | None:
        """ABTB lookup used by the modified branch-resolution logic."""
        return self.abtb.lookup(real_target)

    def note_promotion(self) -> None:
        """Count a BTB entry being redirected to a library function."""
        self.stats.promotions += 1

    def note_unsafe_skip(self) -> None:
        """Count a skip validated against a stale mapping (§3.4 hazard)."""
        self.stats.unsafe_skips += 1

    # ------------------------------------------------------------- snooping

    def snoop_store(self, addr: int) -> bool:
        """Probe a retired store; flush on a (possibly false) positive.

        The filter is probed even when empty — hardware snoops every
        store, so ``bloom.queries`` must count the probe either way.
        """
        if not self.config.use_bloom:
            return False
        if self.bloom.maybe_contains(addr):
            self._flush()
            self.stats.store_flushes += 1
            return True
        return False

    def coherence_invalidate(self, addr: int) -> bool:
        """Probe an invalidation from the coherence subsystem.

        Like :meth:`snoop_store`, the probe is counted even when the
        filter is empty.
        """
        if not self.config.use_bloom:
            return False
        if self.bloom.maybe_contains(addr):
            self._flush()
            self.stats.coherence_flushes += 1
            return True
        return False

    # ---------------------------------------------------------- lifecycle

    def on_context_switch(self) -> None:
        """Invalidate on context switch unless ASIDs retain entries."""
        if not self.config.asid_support:
            self._flush()
            self.stats.context_flushes += 1

    def invalidate(self) -> None:
        """Explicit software invalidation (the Section 3.4 interface)."""
        self._flush()
        self.stats.explicit_flushes += 1

    def _flush(self) -> None:
        self.abtb.flush()
        self.bloom.clear()

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Composite state: ABTB, Bloom filter and mechanism stats."""
        return {
            "config": asdict(self.config),
            "abtb": self.abtb.snapshot(),
            "bloom": self.bloom.snapshot(),
            "stats": asdict(self.stats),
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically configured mechanism."""
        if state.get("config") != asdict(self.config):
            raise ConfigError(
                f"mechanism: snapshot config {state.get('config')!r} does not "
                f"match instance config {asdict(self.config)!r}"
            )
        self.abtb.restore(state["abtb"])
        self.bloom.restore(state["bloom"])
        self.stats = MechanismStats(**state["stats"])

    def reset(self) -> None:
        """Cold mechanism: empty ABTB and filter, zeroed stats."""
        self.abtb.reset()
        self.bloom.reset()
        self.stats = MechanismStats()

    def describe(self) -> dict:
        """Static configuration of both sub-structures."""
        return {
            "kind": "trampoline_skip_mechanism",
            "config": asdict(self.config),
            "abtb": self.abtb.describe(),
            "bloom": self.bloom.describe(),
            "storage_bytes": self.storage_bytes,
        }

    # ----------------------------------------------------------- metadata

    @property
    def storage_bytes(self) -> int:
        """Total on-chip storage: ABTB entries plus the Bloom filter."""
        bloom = self.bloom.storage_bytes if self.config.use_bloom else 0
        return self.abtb.storage_bytes + bloom
