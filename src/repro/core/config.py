"""Configuration for the trampoline-skip mechanism."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class MechanismConfig:
    """Hardware parameters of the trampoline-skip mechanism.

    Attributes:
        abtb_entries: ABTB capacity (the paper sweeps 1–256; 256 ≈ 1.5 KB).
        abtb_policy: replacement policy within an associativity set
            ("lru" or "fifo").
        abtb_ways: ABTB organization.  0 (the default) is the paper's
            fully-associative table; n >= 1 models an n-way
            set-associative table indexed by trampoline address, with
            1 the direct-mapped point.  Must divide ``abtb_entries``
            into a power-of-two number of sets.
        bloom_bits: Bloom filter size in bits.  The paper calls the filter
            "small" but never sizes it; because *every* retired store
            probes it, the false-positive rate must be tiny or spurious
            ABTB flushes erase the mechanism's benefit (the bloom-size
            ablation experiment demonstrates the cliff).  The default,
            128 Ki bits (16 KB), keeps false flushes out of the
            measurement window for all four workloads.
        bloom_hashes: hash functions used by the filter.
        use_bloom: True for the transparent design (Section 3.2) in which
            retired stores are snooped; False for the architecturally
            visible alternative (Section 3.4) where software must issue
            explicit ABTB invalidations.
        asid_support: when True, ABTB entries survive context switches the
            same way ASID-tagged TLB entries do (Section 3.3).
    """

    abtb_entries: int = 256
    abtb_policy: str = "lru"
    abtb_ways: int = 0
    bloom_bits: int = 1 << 17
    bloom_hashes: int = 4
    use_bloom: bool = True
    asid_support: bool = False

    def __post_init__(self) -> None:
        if self.abtb_entries < 1 or self.abtb_entries & (self.abtb_entries - 1):
            raise ConfigError(
                f"abtb_entries must be a power of two >= 1, got {self.abtb_entries}"
            )
        if self.abtb_ways < 0:
            raise ConfigError(f"abtb_ways must be >= 0, got {self.abtb_ways}")
        if self.abtb_ways and self.abtb_entries % self.abtb_ways:
            raise ConfigError(
                f"abtb_ways ({self.abtb_ways}) must divide abtb_entries "
                f"({self.abtb_entries})"
            )
        if self.bloom_bits < 8:
            raise ConfigError("bloom_bits must be >= 8")
