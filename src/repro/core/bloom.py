"""Bloom filter over GOT slot addresses.

The mechanism keeps a small Bloom filter containing the GOT addresses that
back live ABTB entries.  Every retired store (and incoming coherence
invalidation) probes the filter; a hit means some ABTB mapping *may* now be
stale, so the whole ABTB (and the filter itself) is cleared — correctness
by conservative flush (paper Section 3.2).
"""

from __future__ import annotations

from repro.errors import ConfigError

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """SplitMix64 finaliser: a fast, well-distributed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class BloomFilter:
    """A counting-free Bloom filter sized for hardware implementation.

    Attributes:
        bits: number of filter bits (power of two).
        hashes: number of hash functions.
    """

    def __init__(self, bits: int = 1024, hashes: int = 2) -> None:
        if bits < 8 or bits & (bits - 1):
            raise ConfigError(f"bloom bits must be a power of two >= 8, got {bits}")
        if not 1 <= hashes <= 8:
            raise ConfigError(f"bloom hash count must be in [1, 8], got {hashes}")
        self.bits = bits
        self.hashes = hashes
        self._mask = bits - 1
        self._bitset = 0
        self._population = 0
        self.adds = 0
        self.queries = 0
        self.hits = 0

    def _positions(self, key: int) -> list[int]:
        h1 = _splitmix64(key)
        h2 = _splitmix64(h1) | 1  # odd, so double hashing cycles all bits
        return [((h1 + i * h2) & _MASK64) & self._mask for i in range(self.hashes)]

    def add(self, key: int) -> None:
        """Insert a key (a GOT slot address)."""
        self.adds += 1
        for pos in self._positions(key):
            self._bitset |= 1 << pos
        self._population += 1

    def maybe_contains(self, key: int) -> bool:
        """Probe; False is definitive, True may be a false positive."""
        self.queries += 1
        hit = all((self._bitset >> pos) & 1 for pos in self._positions(key))
        if hit:
            self.hits += 1
        return hit

    def clear(self) -> None:
        """Reset all bits (performed together with an ABTB flush)."""
        self._bitset = 0
        self._population = 0

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Bitset (hex-encoded) plus population and stats, JSON-safe."""
        return {
            "bits": self.bits,
            "hashes": self.hashes,
            "bitset": hex(self._bitset),
            "population": self._population,
            "adds": self.adds,
            "queries": self.queries,
            "hits": self.hits,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically sized filter."""
        if state.get("bits") != self.bits or state.get("hashes") != self.hashes:
            raise ConfigError(
                f"bloom: snapshot (bits={state.get('bits')!r}, "
                f"hashes={state.get('hashes')!r}) does not match instance "
                f"(bits={self.bits}, hashes={self.hashes})"
            )
        self._bitset = int(state["bitset"], 16)
        self._population = int(state["population"])
        self.adds = int(state["adds"])
        self.queries = int(state["queries"])
        self.hits = int(state["hits"])

    def reset(self) -> None:
        """Cleared bits, zeroed stats."""
        self.clear()
        self.adds = 0
        self.queries = 0
        self.hits = 0

    def describe(self) -> dict:
        """Static configuration."""
        return {
            "kind": "bloom_filter",
            "bits": self.bits,
            "hashes": self.hashes,
            "storage_bytes": self.storage_bytes,
        }

    @property
    def population(self) -> int:
        """Keys inserted since the last clear."""
        return self._population

    @property
    def set_bits(self) -> int:
        """Number of bits currently set."""
        return bin(self._bitset).count("1")

    @property
    def false_positive_rate(self) -> float:
        """Analytic false-positive estimate for the current population."""
        if self._population == 0:
            return 0.0
        fill = 1.0 - (1.0 - 1.0 / self.bits) ** (self.hashes * self._population)
        return fill**self.hashes

    @property
    def storage_bytes(self) -> int:
        """Hardware storage of the filter in bytes."""
        return self.bits // 8
