"""Bloom filter over GOT slot addresses.

The mechanism keeps a small Bloom filter containing the GOT addresses that
back live ABTB entries.  Every retired store (and incoming coherence
invalidation) probes the filter; a hit means some ABTB mapping *may* now be
stale, so the whole ABTB (and the filter itself) is cleared — correctness
by conservative flush (paper Section 3.2).
"""

from __future__ import annotations

from repro.errors import ConfigError

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """SplitMix64 finaliser: a fast, well-distributed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class BloomFilter:
    """A counting-free Bloom filter sized for hardware implementation.

    Attributes:
        bits: number of filter bits (power of two).
        hashes: number of hash functions.
    """

    def __init__(self, bits: int = 1024, hashes: int = 2) -> None:
        if bits < 8 or bits & (bits - 1):
            raise ConfigError(f"bloom bits must be a power of two >= 8, got {bits}")
        if not 1 <= hashes <= 8:
            raise ConfigError(f"bloom hash count must be in [1, 8], got {hashes}")
        self.bits = bits
        self.hashes = hashes
        self._mask = bits - 1
        self._bitset = 0
        # Distinct keys currently represented (re-inserting a key the
        # filter already holds must not grow the population, or the
        # analytic false-positive estimate drifts from reality).
        self._keys: set[int] = set()
        # key -> bit positions; pure function of (key, geometry), so the
        # cache survives clears.  Bounded defensively: hashing is cheap
        # enough that a rare full drop is invisible.
        self._pos_cache: dict[int, list[int]] = {}
        self.adds = 0
        self.queries = 0
        self.hits = 0

    def _positions(self, key: int) -> list[int]:
        pos = self._pos_cache.get(key)
        if pos is None:
            h1 = _splitmix64(key)
            h2 = _splitmix64(h1) | 1  # odd, so double hashing cycles all bits
            pos = [((h1 + i * h2) & _MASK64) & self._mask for i in range(self.hashes)]
            if len(self._pos_cache) >= (1 << 20):
                self._pos_cache.clear()
            self._pos_cache[key] = pos
        return pos

    def add(self, key: int) -> None:
        """Insert a key (a GOT slot address).

        Duplicate inserts are idempotent: they set no new bits and leave
        the population unchanged.
        """
        self.adds += 1
        for pos in self._positions(key):
            self._bitset |= 1 << pos
        self._keys.add(key)

    def maybe_contains(self, key: int) -> bool:
        """Probe; False is definitive, True may be a false positive."""
        self.queries += 1
        if not self._keys:
            # The probe is counted (hardware always queries), but an
            # empty filter has no bits set: the miss is immediate.
            return False
        bitset = self._bitset
        for pos in self._positions(key):
            if not (bitset >> pos) & 1:
                return False
        self.hits += 1
        return True

    def clear(self) -> None:
        """Reset all bits (performed together with an ABTB flush)."""
        self._bitset = 0
        self._keys.clear()

    # --------------------------------------------------------- SimComponent

    def snapshot(self) -> dict:
        """Bitset (hex-encoded), the key set, and stats, JSON-safe."""
        return {
            "bits": self.bits,
            "hashes": self.hashes,
            "bitset": hex(self._bitset),
            "keys": sorted(self._keys),
            "population": len(self._keys),
            "adds": self.adds,
            "queries": self.queries,
            "hits": self.hits,
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken on an identically sized filter."""
        if state.get("bits") != self.bits or state.get("hashes") != self.hashes:
            raise ConfigError(
                f"bloom: snapshot (bits={state.get('bits')!r}, "
                f"hashes={state.get('hashes')!r}) does not match instance "
                f"(bits={self.bits}, hashes={self.hashes})"
            )
        bitset = int(state["bitset"], 16)
        keys = {int(k) for k in state["keys"]}
        if int(state["population"]) != len(keys):
            raise ConfigError(
                f"bloom: snapshot population {state['population']!r} does "
                f"not match its {len(keys)} distinct keys"
            )
        for key in keys:
            for pos in self._positions(key):
                if not (bitset >> pos) & 1:
                    raise ConfigError(
                        f"bloom: snapshot bitset is missing bit {pos} for "
                        f"key {key:#x}"
                    )
        self._bitset = bitset
        self._keys = keys
        self.adds = int(state["adds"])
        self.queries = int(state["queries"])
        self.hits = int(state["hits"])

    def reset(self) -> None:
        """Cleared bits, zeroed stats."""
        self.clear()
        self.adds = 0
        self.queries = 0
        self.hits = 0

    def describe(self) -> dict:
        """Static configuration."""
        return {
            "kind": "bloom_filter",
            "bits": self.bits,
            "hashes": self.hashes,
            "storage_bytes": self.storage_bytes,
        }

    @property
    def population(self) -> int:
        """Distinct keys inserted since the last clear."""
        return len(self._keys)

    @property
    def set_bits(self) -> int:
        """Number of bits currently set."""
        return bin(self._bitset).count("1")

    @property
    def false_positive_rate(self) -> float:
        """Analytic false-positive estimate for the current population."""
        population = len(self._keys)
        if population == 0:
            return 0.0
        fill = 1.0 - (1.0 - 1.0 / self.bits) ** (self.hashes * population)
        return fill**self.hashes

    @property
    def storage_bytes(self) -> int:
        """Hardware storage of the filter in bytes."""
        return self.bits // 8
