"""Differential correctness: prove the batched backend equals the reference."""

from repro.difftest.harness import (
    DEFAULT_ABTB_SIZES,
    DiffReport,
    Divergence,
    diff_backends,
    difftest_workload,
    run_matrix,
    snapshot_diff,
    workload_events,
)

__all__ = [
    "DEFAULT_ABTB_SIZES",
    "DiffReport",
    "Divergence",
    "diff_backends",
    "difftest_workload",
    "run_matrix",
    "snapshot_diff",
    "workload_events",
]
