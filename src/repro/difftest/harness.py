"""Differential-correctness harness: reference vs batched backend.

The batched backend (:mod:`repro.uarch.backend`) claims counter-for-counter
equivalence with the reference interpreter.  This module *enforces* that
claim mechanically rather than trusting it:

* :func:`diff_backends` runs the same materialised event stream through a
  reference CPU and a :class:`~repro.uarch.backend.BatchedBackend`-driven
  CPU built from the same factory.  At every backend sync point (batch
  boundary, no lookahead outstanding) the reference machine is advanced to
  the identical stream position and the two full :meth:`CPU.snapshot`
  payloads — every counter, every cache/TLB/BTB entry and LRU order, the
  float cycle clock, mechanism state, marks — are compared field by field.
* On divergence, the harness *shrinks*: it re-runs both machines from a
  cold start with ``batch_events=1`` so sync points land after (almost)
  every event, and reports the minimal event window ``[last-good,
  first-bad)`` together with the exact snapshot paths that differ.
* :func:`difftest_workload` / :func:`run_matrix` wrap this in the paper's
  workload profiles: seeded traces (startup + request window), base and
  enhanced machines at configurable ABTB sizes.

Reference-side chunking is sound because sync positions are *pair-closed*:
the backend never reports a sync point between a trampoline pair head and
its tail (boundary-crossing pairs retire through the fallback before the
sync fires), so replaying ``events[done:position]`` through the reference
interpreter cannot split a lookahead window either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MechanismConfig
from repro.core.mechanism import TrampolineSkipMechanism
from repro.errors import ConfigError
from repro.trace.engine import LinkMode
from repro.uarch.backend import BatchedBackend
from repro.uarch.cpu import CPU, CPUConfig
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import Workload

#: ABTB sizes every profile is differentially tested at (besides base).
DEFAULT_ABTB_SIZES = (64, 256)


def snapshot_diff(reference: object, fast: object, path: str = "") -> list[tuple]:
    """Recursively compare two snapshot payloads.

    Returns ``(path, reference_value, fast_value)`` triples for every leaf
    that differs.  Floats are compared exactly — the backends promise
    bit-identical cycle arithmetic, so approximate equality would mask
    exactly the drift this harness exists to catch.
    """
    if isinstance(reference, dict) and isinstance(fast, dict):
        diffs = []
        for key in sorted(set(reference) | set(fast), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in reference:
                diffs.append((sub, "<absent>", fast[key]))
            elif key not in fast:
                diffs.append((sub, reference[key], "<absent>"))
            else:
                diffs.extend(snapshot_diff(reference[key], fast[key], sub))
        return diffs
    if isinstance(reference, (list, tuple)) and isinstance(fast, (list, tuple)):
        if len(reference) != len(fast):
            return [(f"{path}.len", len(reference), len(fast))]
        diffs = []
        for i, (r, f) in enumerate(zip(reference, fast)):
            diffs.extend(snapshot_diff(r, f, f"{path}[{i}]"))
        return diffs
    if reference != fast:
        return [(path, reference, fast)]
    return []


@dataclass
class Divergence:
    """Where and how the two backends came apart."""

    #: Last sync position where the snapshots still matched.
    last_good: int
    #: First sync position where they differed.
    first_bad: int
    #: Differing snapshot leaves at ``first_bad``: (path, reference, fast).
    diffs: list[tuple] = field(default_factory=list)
    #: The minimal event window ``events[last_good:first_bad]`` (reprs),
    #: after shrinking with single-event batches.
    window: list[str] = field(default_factory=list)
    #: False when the single-event-batch re-run did not reproduce the
    #: divergence (a batch-size-dependent bug); the window is then the
    #: original batch, not a minimal one.
    shrunk: bool = True

    def render(self) -> str:
        head = f"divergence in events [{self.last_good}, {self.first_bad})"
        if not self.shrunk:
            head += "  (not reproducible at batch_events=1; window is one full batch)"
        lines = [head]
        for ev in self.window[:8]:
            lines.append(f"  event: {ev}")
        if len(self.window) > 8:
            lines.append(f"  ... {len(self.window) - 8} more event(s)")
        for p, r, f in self.diffs[:20]:
            lines.append(f"  {p}: reference={r!r} fast={f!r}")
        if len(self.diffs) > 20:
            lines.append(f"  ... {len(self.diffs) - 20} more differing field(s)")
        return "\n".join(lines)


@dataclass
class DiffReport:
    """Outcome of one differential run."""

    label: str
    events: int
    sync_points: int
    batch_events: int
    divergence: Divergence | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        head = (
            f"difftest {self.label}: {self.events} events, "
            f"{self.sync_points} sync point(s), batch={self.batch_events} — "
        )
        if self.ok:
            return head + "identical"
        return head + "DIVERGED\n" + self.divergence.render()


class _ReferenceRunner:
    """Advances a reference CPU along the shared event list on demand."""

    def __init__(self, cpu: CPU, events: list) -> None:
        self.cpu = cpu
        self.events = events
        self.done = 0

    def run_until(self, target: int) -> None:
        if target > self.done:
            self.cpu.run(self.events[self.done : target])
            self.done = target


class _DivergenceFound(Exception):
    """Internal control flow: stop the fast run at the first bad sync."""


def _run_and_compare(
    events: list, make_cpu, batch_events: int, fast_batches: list | None = None
) -> tuple[int, tuple[int, int, list] | None]:
    """One ref-vs-fast pass; returns (sync_points, found).

    ``found`` is ``(last_good, first_bad, diffs)`` or None.  Snapshots are
    compared at every sync point and once more at end of stream (the final
    partial batch syncs there too, so this is belt-and-braces for empty
    streams).

    When ``fast_batches`` is given the fast machine consumes those
    :class:`~repro.trace.batch.TraceBatch` objects zero-copy
    (:meth:`BatchedBackend.run_batches`) while the reference still walks
    ``events`` — so one pass proves generation *and* retirement
    equivalence.  A stream-length mismatch between the two is itself
    reported as a divergence (at position 0) rather than silently
    truncating the comparison.
    """
    reference = _ReferenceRunner(make_cpu(), events)
    fast_cpu = make_cpu()
    backend = BatchedBackend(fast_cpu, batch_events)
    if fast_batches is not None:
        total = sum(len(b) for b in fast_batches)
        if total != len(events):
            return 0, (0, min(total, len(events)), [("stream.len", len(events), total)])
    state = {"syncs": 0, "good": 0, "found": None}

    def sync_hook(position: int) -> None:
        state["syncs"] += 1
        reference.run_until(position)
        diffs = snapshot_diff(reference.cpu.snapshot(), fast_cpu.snapshot())
        if diffs:
            state["found"] = (state["good"], position, diffs)
            raise _DivergenceFound
        state["good"] = position

    try:
        if fast_batches is not None:
            backend.run_batches(fast_batches, sync_hook=sync_hook)
        else:
            backend.run(iter(events), sync_hook=sync_hook)
    except _DivergenceFound:
        return state["syncs"], state["found"]
    reference.run_until(len(events))
    diffs = snapshot_diff(reference.cpu.snapshot(), fast_cpu.snapshot())
    if diffs:
        return state["syncs"], (state["good"], len(events), diffs)
    return state["syncs"], None


def diff_backends(
    events,
    make_cpu,
    batch_events: int = 4096,
    label: str = "difftest",
    fast_batches: list | None = None,
) -> DiffReport:
    """Differentially run ``events`` through both backends.

    ``make_cpu`` is a zero-argument factory producing identically
    configured CPUs; it is called twice (reference and fast) and again
    for the shrinking re-run, so it must not share mutable state between
    calls.  Without ``fast_batches`` the stream is materialised once and
    both machines consume the same list — any divergence is the
    backend's, never the generator's.  With ``fast_batches`` the fast
    machine instead retires those batches zero-copy, so the comparison
    additionally covers the array-native generation path that produced
    them.
    """
    events = list(events)
    sync_points, found = _run_and_compare(events, make_cpu, batch_events, fast_batches)
    if found is None:
        return DiffReport(label, len(events), sync_points, batch_events)

    last_good, first_bad, diffs = found
    # Shrink: single-event batches make sync points as dense as the
    # backend allows (trampoline pairs still retire whole), so the first
    # bad position brackets a minimal window.
    shrunk = True
    if batch_events > 1:
        _, refound = _run_and_compare(events, make_cpu, 1, fast_batches)
        if refound is not None:
            last_good, first_bad, diffs = refound
        else:
            shrunk = False
    window = [repr(ev) for ev in events[last_good:first_bad]]
    return DiffReport(
        label,
        len(events),
        sync_points,
        batch_events,
        Divergence(last_good, first_bad, diffs, window, shrunk),
    )


def workload_events(
    workload: str,
    requests: int = 12,
    seed: int | None = None,
    include_startup: bool = True,
) -> list:
    """Materialise one seeded workload slice (startup + request window)."""
    try:
        module = ALL_WORKLOADS[workload]
    except KeyError:
        raise ConfigError(f"unknown workload {workload!r}") from None
    cfg = module.config() if seed is None else module.config(seed=seed)
    wl = Workload(cfg, LinkMode.DYNAMIC)
    events = list(wl.startup_trace()) if include_startup else []
    events.extend(wl.trace(requests))
    return events


def workload_batches(
    workload: str,
    requests: int = 12,
    seed: int | None = None,
    include_startup: bool = True,
) -> list:
    """The same seeded workload slice as :func:`workload_events`, generated
    through the array-native path (:meth:`Workload.startup_batch` /
    :meth:`Workload.trace_batch`) on a fresh workload instance."""
    try:
        module = ALL_WORKLOADS[workload]
    except KeyError:
        raise ConfigError(f"unknown workload {workload!r}") from None
    cfg = module.config() if seed is None else module.config(seed=seed)
    wl = Workload(cfg, LinkMode.DYNAMIC)
    batches = [wl.startup_batch()] if include_startup else []
    batches.append(wl.trace_batch(requests))
    return batches


def difftest_workload(
    workload: str,
    abtb_entries: int | None = None,
    requests: int = 12,
    seed: int | None = None,
    batch_events: int = 4096,
    cpu_config: CPUConfig | None = None,
    generation: str = "array",
    mechanism_config: MechanismConfig | None = None,
) -> DiffReport:
    """Differential run of one workload profile.

    ``abtb_entries=None`` builds base machines (no mechanism); an integer
    builds enhanced machines with that ABTB size.  ``mechanism_config``
    overrides the whole mechanism configuration instead (set-associative
    ABTB organizations, Bloom geometry, ...) — full-snapshot equality
    then covers the per-set state of the organization under test.

    ``generation`` picks what the *fast* machine consumes: ``"array"``
    (the default) feeds it batches from the vectorized generation path —
    legacy-iterator generation + reference retirement vs array-native
    generation + batched retirement, the full-pipeline equivalence the
    numpy-native pipeline must uphold; ``"legacy"`` feeds both machines
    the identical materialised event list, isolating backend behaviour
    (PR 4's original comparison).
    """
    if generation not in ("array", "legacy"):
        raise ConfigError(f"unknown generation {generation!r}; expected 'array' or 'legacy'")
    events = workload_events(workload, requests=requests, seed=seed)
    fast_batches = (
        workload_batches(workload, requests=requests, seed=seed)
        if generation == "array"
        else None
    )

    if mechanism_config is not None and abtb_entries is not None:
        raise ConfigError("pass abtb_entries or mechanism_config, not both")

    def make_cpu() -> CPU:
        mechanism = None
        if mechanism_config is not None:
            mechanism = TrampolineSkipMechanism(mechanism_config)
        elif abtb_entries is not None:
            mechanism = TrampolineSkipMechanism(MechanismConfig(abtb_entries=abtb_entries))
        return CPU(cpu_config, mechanism)

    if mechanism_config is not None:
        ways = mechanism_config.abtb_ways or "full"
        mech_label = f"abtb={mechanism_config.abtb_entries}/{ways}"
    elif abtb_entries is not None:
        mech_label = f"abtb={abtb_entries}"
    else:
        mech_label = "base"
    label = f"{workload}/{mech_label}"
    return diff_backends(
        events, make_cpu, batch_events=batch_events, label=label, fast_batches=fast_batches
    )


def run_matrix(
    workloads=None,
    abtb_sizes=DEFAULT_ABTB_SIZES,
    requests: int = 12,
    seed: int | None = None,
    batch_events: int = 4096,
    generation: str = "array",
) -> list[DiffReport]:
    """The full correctness matrix: every profile × {base, each ABTB size}.

    This is the gate EXPERIMENTS.md refers to: published numbers may only
    come from a backend that is difftest-clean on this matrix.  By default
    each cell compares legacy-iterator generation retired by the reference
    interpreter against array-native generation retired by the batched
    backend, with full-snapshot equality at every sync point.
    """
    reports = []
    for name in workloads if workloads is not None else sorted(ALL_WORKLOADS):
        for abtb in (None, *abtb_sizes):
            reports.append(
                difftest_workload(
                    name,
                    abtb_entries=abtb,
                    requests=requests,
                    seed=seed,
                    batch_events=batch_events,
                    generation=generation,
                )
            )
    return reports
