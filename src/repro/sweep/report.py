"""Self-contained HTML report for one sweep's analysis bundle.

Reuses the telemetry dashboard's stylesheet
(:data:`repro.obs.dashboard.DASHBOARD_CSS` — same palette, tiles,
cards and table styling) but renders everything server-side: the page
is static HTML with an inline SVG Pareto scatter, no JavaScript, so it
can be opened from ``analysis/report.html`` with no server and archived
alongside the JSON artifacts.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.obs.dashboard import DASHBOARD_CSS

#: Plot geometry (SVG user units; the chart scales to container width).
_W, _H = 720, 300
_ML, _MR, _MT, _MB = 62, 16, 14, 38


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _config_label(rec: dict) -> str:
    assoc = rec["abtb_ways"] or "full"
    return (
        f"abtb={rec['abtb_entries']}/{assoc}/{rec['abtb_policy']} "
        f"bloom={rec['bloom_bits']}x{rec['bloom_hashes']} "
        f"btb={rec['btb_entries']}x{rec['btb_ways']} "
        f"gshare={rec['gshare_entries']}"
    )


def _tile(label: str, value: str) -> str:
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div></div>'
    )


def _axis_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def _pareto_svg(configs: list[dict]) -> str:
    """Inline SVG scatter: cost (KiB) vs geomean speedup, frontier joined."""
    if not configs:
        return '<div class="empty">No completed configurations yet.</div>'
    xs = [rec["cost_bytes"] / 1024.0 for rec in configs]
    ys = [rec["speedup"] for rec in configs]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    # Breathe a little so edge points are not clipped by the plot border.
    x_pad = (x_hi - x_lo) * 0.06 or max(x_hi * 0.05, 0.5)
    y_pad = (y_hi - y_lo) * 0.08 or max(abs(y_hi) * 0.02, 0.01)
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def px(x: float) -> float:
        return _ML + (x - x_lo) / (x_hi - x_lo) * (_W - _ML - _MR)

    def py(y: float) -> float:
        return _H - _MB - (y - y_lo) / (y_hi - y_lo) * (_H - _MT - _MB)

    parts = [
        f'<svg class="chart" viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="Pareto frontier: speedup versus hardware cost" '
        f'style="height:{_H}px">'
    ]
    for tick in _axis_ticks(y_lo + y_pad, y_hi - y_pad):
        y = py(tick)
        parts.append(
            f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}" '
            f'stroke="var(--gridline)" stroke-width="1"/>'
            f'<text x="{_ML - 8}" y="{y + 4:.1f}" text-anchor="end">{tick:.3f}</text>'
        )
    for tick in _axis_ticks(x_lo + x_pad, x_hi - x_pad):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MT}" x2="{x:.1f}" y2="{_H - _MB}" '
            f'stroke="var(--gridline)" stroke-width="1"/>'
            f'<text x="{x:.1f}" y="{_H - _MB + 16}" text-anchor="middle">{tick:.1f}</text>'
        )
    parts.append(
        f'<text x="{(_ML + _W - _MR) / 2:.0f}" y="{_H - 4}" text-anchor="middle">'
        f"hardware cost (KiB)</text>"
    )
    parts.append(
        f'<text x="14" y="{(_MT + _H - _MB) / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {(_MT + _H - _MB) / 2:.0f})">geomean speedup</text>'
    )
    frontier = [rec for rec in configs if rec.get("on_frontier")]
    frontier.sort(key=lambda rec: rec["cost_bytes"])
    if len(frontier) > 1:
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{px(rec['cost_bytes'] / 1024.0):.1f} "
            f"{py(rec['speedup']):.1f}"
            for i, rec in enumerate(frontier)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="var(--series-1)" '
            f'stroke-width="1.5" stroke-dasharray="4 3"/>'
        )
    for rec in configs:
        x, y = px(rec["cost_bytes"] / 1024.0), py(rec["speedup"])
        on = rec.get("on_frontier")
        fill = "var(--series-1)" if on else "var(--text-muted)"
        r = 4.5 if on else 3
        label = _esc(
            f"{_config_label(rec)}: speedup {rec['speedup']:.4f} at "
            f"{rec['cost_bytes'] / 1024.0:.1f} KiB"
        )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{fill}" '
            f'fill-opacity="{1.0 if on else 0.55}"><title>{label}</title></circle>'
        )
    parts.append("</svg>")
    legend = (
        '<div class="legend">'
        '<span><span class="key" style="background:var(--series-1)"></span>'
        "Pareto frontier</span>"
        '<span><span class="key" style="background:var(--text-muted)"></span>'
        "dominated</span></div>"
    )
    return legend + "".join(parts)


def _sensitivity_cards(tables: list[dict]) -> str:
    if not tables:
        return (
            '<section class="card"><h2>Axis sensitivity</h2>'
            '<div class="empty">No axis varied across at least two values.</div>'
            "</section>"
        )
    cards = []
    for table in tables:
        rows = "".join(
            f"<tr><td>{_esc(v['value'])}</td>"
            f'<td class="num">{v["count"]}</td>'
            f'<td class="num">{v["mean"]:.4f}</td>'
            f'<td class="num">{v["min"]:.4f}</td>'
            f'<td class="num">{v["max"]:.4f}</td></tr>'
            for v in table["values"]
        )
        cards.append(
            f'<section class="card">'
            f"<h2>Sensitivity — {_esc(table['axis'])} "
            f"(effect {table['effect']:.4f})</h2>"
            f'<table><thead><tr><th>value</th><th class="num">points</th>'
            f'<th class="num">mean speedup</th><th class="num">min</th>'
            f'<th class="num">max</th></tr></thead>'
            f"<tbody>{rows}</tbody></table></section>"
        )
    return "".join(cards)


def _configs_table(configs: list[dict], limit: int = 20) -> str:
    if not configs:
        return '<div class="empty">No completed configurations yet.</div>'
    ranked = sorted(configs, key=lambda rec: -rec["speedup"])[:limit]
    rows = []
    for rec in ranked:
        chip = '<span class="chip">pareto</span>' if rec.get("on_frontier") else ""
        per_wl = " ".join(
            f"{_esc(w)}={s:.3f}" for w, s in sorted(rec["workloads"].items())
        )
        rows.append(
            f"<tr><td>{_esc(_config_label(rec))} {chip}</td>"
            f'<td class="num">{rec["cost_bytes"] / 1024.0:.1f}</td>'
            f'<td class="num">{rec["speedup"]:.4f}</td>'
            f"<td>{per_wl}</td></tr>"
        )
    note = ""
    if len(configs) > limit:
        note = (
            f'<div class="meta">top {limit} of {len(configs)} configurations '
            f"by geomean speedup; the full set is in configs of points.json</div>"
        )
    return (
        f'<table><thead><tr><th>configuration</th><th class="num">cost (KiB)</th>'
        f'<th class="num">geomean speedup</th><th>per-workload</th></tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table>{note}"
    )


def render_sweep_report(analysis: dict, summary: dict) -> str:
    """The complete static HTML page for one sweep analysis."""
    configs = analysis.get("configs", [])
    best = (analysis.get("best") or {}).get("overall")
    cache = summary.get("trace_cache") or {}
    tiles = [
        _tile("points", str(summary.get("points", 0))),
        _tile("completed", str(summary.get("completed", 0))),
        _tile("failed", str(summary.get("failed", 0))),
        _tile("pareto size", str(summary.get("pareto_size", 0))),
        _tile("best speedup", f"{best['speedup']:.4f}" if best else "—"),
        _tile("trace-cache hit rate", f"{cache.get('hit_rate', 0.0):.1%}"),
    ]
    best_line = ""
    if best:
        best_line = (
            f'<div class="meta">best configuration: '
            f"{_esc(_config_label(best))} at "
            f"{best['cost_bytes'] / 1024.0:.1f} KiB</div>"
        )
    per_wl = (analysis.get("best") or {}).get("per_workload") or {}
    best_rows = "".join(
        f"<tr><td>{_esc(w)}</td><td>{_esc(_config_label(row))}</td>"
        f'<td class="num">{row["speedup"]:.4f}</td>'
        f'<td class="num">{row.get("skip_rate", 0.0):.4f}</td></tr>'
        for w, row in per_wl.items()
    )
    best_card = ""
    if best_rows:
        best_card = (
            f'<section class="card"><h2>Best point per workload</h2>'
            f"<table><thead><tr><th>workload</th><th>configuration</th>"
            f'<th class="num">speedup</th><th class="num">skip rate</th>'
            f"</tr></thead><tbody>{best_rows}</tbody></table></section>"
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Sweep report — {_esc(summary.get("name", "sweep"))}</title>
<style>
{DASHBOARD_CSS}</style>
</head>
<body class="viz-root">
<main>
  <header class="top">
    <h1>Sweep report</h1>
    <span class="badge">{_esc(summary.get("name", "sweep"))}</span>
    <span class="meta">{summary.get("completed", 0)}/{summary.get("points", 0)}
      points completed, {summary.get("resumed", 0)} resumed,
      {summary.get("executed", 0)} executed this run</span>
  </header>
  <div class="tiles">{"".join(tiles)}</div>
  <section class="card">
    <h2>Pareto frontier — geomean speedup vs. modeled hardware cost</h2>
    {best_line}
    {_pareto_svg(configs)}
  </section>
  {best_card}
  <section class="card">
    <h2>Top configurations</h2>
    {_configs_table(configs)}
  </section>
  {_sensitivity_cards(analysis.get("sensitivity", []))}
</main>
</body>
</html>
"""


def write_sweep_report(path: str | Path, analysis: dict, summary: dict) -> Path:
    """Render and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_sweep_report(analysis, summary))
    return path
