"""Sweep analysis: Pareto frontier, per-axis sensitivity, best points.

Raw sweep output is one summary per (workload, configuration) point; the
questions a design-space exploration answers live one level up:

* **Pareto frontier** — which *configurations* are undominated in
  (modeled hardware cost, speedup)?  Speedups are aggregated across
  workloads by geometric mean (the conventional mean for ratios), cost
  comes from :func:`repro.experiments.hwcost.mechanism_storage_bytes`.
* **Sensitivity** — per axis, how much does the mean speedup move
  between the axis's best and worst value, all other axes marginalised?
  Ranks the axes by how much they matter.
* **Best points** — the highest-speedup configuration overall and per
  workload.

Everything here is pure computation over JSON-safe dicts; the engine
persists the results under ``analysis/`` and the report module renders
them.
"""

from __future__ import annotations

import math

from repro.sweep.spec import AXES

#: Configuration identity = every axis except the workload.
CONFIG_AXES = tuple(a for a in AXES if a != "workload")


def completed_rows(points, completed: dict) -> list[dict]:
    """Join expanded points with their campaign summaries.

    Points whose key is missing from ``completed`` (failed, quarantined,
    not yet run) are simply absent — analysis always reflects exactly
    the finished work.
    """
    rows = []
    for point in points:
        summary = completed.get(point.key)
        if not summary:
            continue
        row = {"key": point.key, "cost_bytes": point.cost_bytes}
        row.update(point.axes)
        for metric in (
            "speedup", "skip_rate", "instructions", "base_cycles", "enhanced_cycles",
        ):
            if metric in summary:
                row[metric] = summary[metric]
        rows.append(row)
    return rows


def _geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def config_id(row: dict) -> tuple:
    """The machine configuration of a row, workload marginalised out."""
    return tuple(row[a] for a in CONFIG_AXES)


def aggregate_configs(rows: list[dict]) -> list[dict]:
    """One record per configuration: per-workload speedups + geomean.

    Order is first-seen (i.e. the spec's deterministic expansion order),
    so repeated analyses of one sweep produce identical artifacts.
    """
    configs: dict[tuple, dict] = {}
    for row in rows:
        cid = config_id(row)
        rec = configs.get(cid)
        if rec is None:
            rec = {a: row[a] for a in CONFIG_AXES}
            rec["cost_bytes"] = row["cost_bytes"]
            rec["workloads"] = {}
            configs[cid] = rec
        rec["workloads"][row["workload"]] = row["speedup"]
    out = []
    for rec in configs.values():
        rec["speedup"] = _geomean(rec["workloads"].values())
        out.append(rec)
    return out


def pareto_frontier(configs: list[dict]) -> list[dict]:
    """Mark and return the undominated (cost, speedup) configurations.

    A configuration is on the frontier iff no strictly cheaper
    configuration achieves at least its speedup.  Every record in
    ``configs`` gains an ``on_frontier`` flag (mutated in place); the
    returned list holds the frontier sorted by cost ascending.
    """
    by_cost = sorted(configs, key=lambda r: (r["cost_bytes"], -r["speedup"]))
    frontier = []
    best = -math.inf
    last_cost = None
    for rec in by_cost:
        # Equal-cost configs: only the fastest can be undominated.
        if rec["cost_bytes"] == last_cost:
            rec["on_frontier"] = False
            continue
        if rec["speedup"] > best:
            rec["on_frontier"] = True
            frontier.append(rec)
            best = rec["speedup"]
            last_cost = rec["cost_bytes"]
        else:
            rec["on_frontier"] = False
    return frontier


def sensitivity(rows: list[dict], axis_values: dict) -> list[dict]:
    """Per-axis speedup statistics, ranked by effect size.

    For each axis with at least two distinct values among the completed
    rows: mean/min/max speedup per value (all other axes marginalised),
    and ``effect`` = spread between the best and worst value means — the
    first-order "does this axis matter" number.
    """
    tables = []
    for axis in AXES:
        declared = axis_values.get(axis, ())
        groups: dict = {}
        for row in rows:
            groups.setdefault(row[axis], []).append(row["speedup"])
        if len(groups) < 2:
            continue
        # Report values in declared-axis order so tables read like the spec.
        ordered = [v for v in declared if v in groups]
        ordered += [v for v in groups if v not in ordered]
        values = []
        for value in ordered:
            speedups = groups[value]
            values.append(
                {
                    "value": value,
                    "count": len(speedups),
                    "mean": sum(speedups) / len(speedups),
                    "min": min(speedups),
                    "max": max(speedups),
                }
            )
        means = [v["mean"] for v in values]
        tables.append(
            {"axis": axis, "values": values, "effect": max(means) - min(means)}
        )
    tables.sort(key=lambda t: -t["effect"])
    return tables


def best_points(rows: list[dict], configs: list[dict]) -> dict:
    """The winning configuration overall and the winning row per workload."""
    out: dict = {"overall": None, "per_workload": {}}
    if configs:
        out["overall"] = max(configs, key=lambda r: r["speedup"])
    per: dict = {}
    for row in rows:
        current = per.get(row["workload"])
        if current is None or row["speedup"] > current["speedup"]:
            per[row["workload"]] = row
    out["per_workload"] = {w: per[w] for w in sorted(per)}
    return out


def analyze_sweep(points, completed: dict, axis_values: dict) -> dict:
    """The full analysis bundle for one sweep's completed points."""
    rows = completed_rows(points, completed)
    configs = aggregate_configs(rows)
    frontier = pareto_frontier(configs)
    return {
        "points": rows,
        "configs": configs,
        "pareto": frontier,
        "sensitivity": sensitivity(rows, axis_values),
        "best": best_points(rows, configs),
    }
