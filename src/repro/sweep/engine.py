"""Sweep execution: expand, (re)run, analyze, report.

One sweep owns one output directory:

```
out/
  spec.json        the expanded SweepSpec (resume guard: must not change)
  checkpoint.json  campaign checkpoint (integrity-enveloped, incremental)
  trace-cache/     content-addressed trace bundles, shared by every point
  machine-cache/   warm machine checkpoints (base machines shared per
                   CPU geometry; enhanced machines per configuration)
  analysis/        points / pareto / sensitivity / best / summary JSON
                   + the self-contained HTML report
```

Execution rides the campaign runner end to end: points become
:class:`~repro.experiments.runner.CampaignPoint` tasks, ``jobs`` shards
them over the process pool, the checkpoint is written incrementally as
points land, and a rerun of the same output directory resumes — a fully
completed sweep re-executes *zero* points and goes straight to
analysis.  Trace generation is deduplicated by construction: the trace
key covers only (workload recipe, windows), so all points of one
workload share one stored bundle, prefilled before the fan-out.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.experiments.runner import (
    CampaignResult,
    RetryPolicy,
    _load_checkpoint,
    run_campaign,
)
from repro.sweep.analysis import analyze_sweep
from repro.sweep.report import write_sweep_report
from repro.sweep.spec import SweepSpec

#: Sweeps want jitter by default: shards share cache directories, so
#: correlated transient failures retrying in lockstep would collide
#: again.  Deterministic per-key jitter desynchronises them while
#: keeping reruns reproducible.
DEFAULT_POLICY = RetryPolicy(max_retries=2, backoff_max_s=30.0, jitter=0.25)


@dataclass
class SweepResult:
    """Everything one engine invocation produced."""

    spec: SweepSpec
    out_dir: Path
    campaign: CampaignResult
    analysis: dict
    summary: dict
    #: Grid combinations dropped by ``skip_invalid`` during expansion.
    dropped: int = 0

    @property
    def ok(self) -> bool:
        return self.campaign.ok

    def render(self) -> str:
        s = self.summary
        lines = [
            f"sweep {self.spec.name}: {s['completed']}/{s['points']} point(s) "
            f"completed ({s['resumed']} resumed, {s['executed']} executed, "
            f"{s['failed']} failed)"
        ]
        cache = s.get("trace_cache") or {}
        lines.append(
            f"trace-cache: {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es) "
            f"(hit rate {cache.get('hit_rate', 0.0):.1%})"
        )
        best = (self.analysis.get("best") or {}).get("overall")
        if best:
            assoc = best["abtb_ways"] or "full"
            lines.append(
                f"best: abtb={best['abtb_entries']}/{assoc}/{best['abtb_policy']} "
                f"bloom={best['bloom_bits']}x{best['bloom_hashes']} "
                f"btb={best['btb_entries']}x{best['btb_ways']} "
                f"gshare={best['gshare_entries']} "
                f"-> speedup {best['speedup']:.4f} "
                f"at {best['cost_bytes'] / 1024:.1f} KiB"
            )
        lines.append(
            f"pareto: {len(self.analysis.get('pareto', []))} frontier "
            f"configuration(s) of {len(self.analysis.get('configs', []))}"
        )
        lines.append(f"analysis: {self.out_dir / 'analysis'}")
        return "\n".join(lines)


def load_spec(out_dir: str | Path) -> SweepSpec:
    """The spec a sweep directory was created with."""
    spec_path = Path(out_dir) / "spec.json"
    if not spec_path.is_file():
        raise ConfigError(
            f"{spec_path} not found — not a sweep output directory "
            f"(run 'repro sweep run' first)"
        )
    return SweepSpec.load(spec_path)


def _pin_spec(spec: SweepSpec, out: Path) -> None:
    """Persist the spec, or verify it matches what the directory holds.

    A checkpoint is only meaningful against the exact grid that wrote
    it — resuming with a different spec would silently skip points whose
    keys happen to collide and re-run everything else, so a mismatch is
    an error, not a merge.
    """
    spec_path = out / "spec.json"
    payload = json.dumps(spec.to_dict(), indent=2, sort_keys=True)
    if spec_path.is_file():
        existing = SweepSpec.load(spec_path)
        if existing != spec:
            raise ConfigError(
                f"{out} already holds sweep {existing.name!r} with a "
                f"different spec; use a fresh --out directory (or delete "
                f"{spec_path}) to start a new sweep"
            )
        return
    spec_path.write_text(payload)


def _write_analysis(out: Path, analysis: dict, summary: dict) -> None:
    analysis_dir = out / "analysis"
    analysis_dir.mkdir(parents=True, exist_ok=True)
    for name, payload in (
        ("points", analysis["points"]),
        ("pareto", analysis["pareto"]),
        ("sensitivity", analysis["sensitivity"]),
        ("best", analysis["best"]),
        ("summary", summary),
    ):
        (analysis_dir / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
    write_sweep_report(analysis_dir / "report.html", analysis, summary)


def run_sweep(
    spec: SweepSpec | None,
    out_dir: str | Path,
    jobs: int = 1,
    policy: RetryPolicy | None = None,
    recorder=None,
    bus=None,
    supervise: bool = False,
) -> SweepResult:
    """Execute (or resume) a sweep into ``out_dir``.

    ``spec=None`` resumes whatever spec ``out_dir`` was created with.
    Completed points are skipped via the campaign checkpoint; everything
    else runs through the batched backend, sharded when ``jobs > 1``.
    Analysis artifacts are (re)written on every invocation, so a resumed
    or even fully-cached run still refreshes ``analysis/``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if spec is None:
        spec = load_spec(out)
    _pin_spec(spec, out)
    points = spec.expand()
    dropped = spec.size() - len(points)
    if not points:
        raise ConfigError(f"sweep {spec.name!r} expanded to zero valid points")
    campaign = run_campaign(
        [],
        spec.scale(),
        points=[p.to_campaign_point() for p in points],
        checkpoint_path=out / "checkpoint.json",
        policy=policy if policy is not None else DEFAULT_POLICY,
        jobs=jobs,
        machine_cache_dir=out / "machine-cache",
        trace_cache_dir=out / "trace-cache",
        backend="batched",
        recorder=recorder,
        bus=bus,
        supervise=supervise,
        campaign_id=f"sweep:{spec.name}",
    )
    return _finish(spec, out, points, campaign, dropped)


def report_sweep(out_dir: str | Path, recorder=None) -> SweepResult:
    """Recompute ``analysis/`` from the checkpoint without executing.

    Useful mid-sweep (analysis over the points finished so far) and
    after the fact (tweaked analysis code over a finished sweep).
    """
    out = Path(out_dir)
    spec = load_spec(out)
    points = spec.expand()
    completed = _load_checkpoint(out / "checkpoint.json", recorder)
    campaign = CampaignResult(completed=dict(completed), resumed=len(completed))
    return _finish(spec, out, points, campaign, spec.size() - len(points))


def _finish(
    spec: SweepSpec,
    out: Path,
    points: list,
    campaign: CampaignResult,
    dropped: int,
) -> SweepResult:
    analysis = analyze_sweep(points, campaign.completed, spec.axis_values())
    cache = {"hits": 0, "misses": 0}
    cache.update(campaign.cache_stats)
    cache["hit_rate"] = campaign.trace_hit_rate
    summary = {
        "name": spec.name,
        "points": len(points),
        "dropped_invalid": dropped,
        "completed": len(campaign.completed),
        "failed": len(campaign.failed),
        "quarantined": len(campaign.quarantined),
        "resumed": campaign.resumed,
        "executed": len(points) - campaign.resumed,
        "trace_cache": cache,
        "pareto_size": len(analysis["pareto"]),
    }
    _write_analysis(out, analysis, summary)
    return SweepResult(
        spec=spec,
        out_dir=out,
        campaign=campaign,
        analysis=analysis,
        summary=summary,
        dropped=dropped,
    )
