"""Declarative design-space sweeps over the trampoline-skip mechanism.

``spec`` declares the experiment matrix, ``engine`` executes it through
the campaign runner (sharded, checkpointed, cache-deduplicated),
``analysis`` computes the Pareto frontier / sensitivity / best-point
bundle, and ``report`` renders the self-contained HTML page.
"""

from repro.sweep.analysis import (
    aggregate_configs,
    analyze_sweep,
    completed_rows,
    pareto_frontier,
    sensitivity,
)
from repro.sweep.engine import (
    DEFAULT_POLICY,
    SweepResult,
    load_spec,
    report_sweep,
    run_sweep,
)
from repro.sweep.report import render_sweep_report, write_sweep_report
from repro.sweep.spec import AXES, SweepPoint, SweepSpec, point_key

__all__ = [
    "AXES",
    "DEFAULT_POLICY",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "aggregate_configs",
    "analyze_sweep",
    "completed_rows",
    "load_spec",
    "pareto_frontier",
    "point_key",
    "render_sweep_report",
    "report_sweep",
    "run_sweep",
    "sensitivity",
    "write_sweep_report",
]
