"""Declarative experiment matrices over the mechanism design space.

The paper evaluates one ABTB design point — 256 entries, fully
associative, one Bloom geometry.  A :class:`SweepSpec` declares *axes*
instead: per-axis value lists over the workload profile, ABTB geometry
(entries / associativity / replacement), Bloom configuration and the
front-end predictor shapes, which :meth:`SweepSpec.expand` turns into
the full cross product of :class:`SweepPoint` configurations.  Each
point carries everything the campaign runner needs — a stable
checkpoint key, a :class:`~repro.core.config.MechanismConfig` kwargs
dict and a partial :class:`~repro.uarch.cpu.CPUConfig` dict — plus the
modeled hardware cost used as the Pareto axis.

Specs are plain JSON (axis name → list of values), so a sweep is a
reviewable artifact: the engine persists the expanded spec next to its
checkpoint and refuses to resume an output directory whose spec
changed.

Cross-product grids can contain structurally invalid combinations (an
ABTB way count that does not divide an entry count); by default
expansion raises on the first one, naming it, and ``skip_invalid: true``
drops them instead — useful for deliberately ragged grids.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path

from repro.core.config import MechanismConfig
from repro.errors import ConfigError
from repro.experiments.hwcost import mechanism_storage_bytes
from repro.experiments.runner import CampaignPoint
from repro.experiments.scale import Scale
from repro.uarch.cpu import CPUConfig
from repro.workloads import ALL_WORKLOADS

#: Axes that expand combinatorially, in key order.  ``workload`` is the
#: outermost axis; the rest parameterize the machine.
AXES = (
    "workload",
    "abtb_entries",
    "abtb_ways",
    "abtb_policy",
    "bloom_bits",
    "bloom_hashes",
    "btb_entries",
    "btb_ways",
    "gshare_entries",
)

#: Axes that land in the MechanismConfig of each point.
_MECH_AXES = ("abtb_entries", "abtb_ways", "abtb_policy", "bloom_bits", "bloom_hashes")

#: Axes that land in the (partial) CPUConfig dict of each point.
_CPU_AXES = ("btb_entries", "btb_ways", "gshare_entries")


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point, ready to run as a campaign task."""

    key: str
    workload: str
    axes: dict
    mechanism: dict
    cpu: dict
    cost_bytes: int

    def to_campaign_point(self) -> CampaignPoint:
        return CampaignPoint(
            key=self.key,
            workload=self.workload,
            abtb_entries=int(self.mechanism["abtb_entries"]),
            mechanism=dict(self.mechanism),
            cpu=dict(self.cpu),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment matrix.

    Every ``*_entries``/``*_ways``/``*_bits`` field is an axis: a tuple
    of values whose cross product (together with ``workloads``) is the
    sweep.  ``warmup``/``measured`` set the per-workload window lengths
    (identical across workloads — the sweep compares configurations, not
    workload scales), and every point of one workload shares a single
    generated trace bundle by construction of the trace-store key.
    """

    name: str = "sweep"
    workloads: tuple = ("memcached",)
    warmup: int = 10
    measured: int = 50
    abtb_entries: tuple = (256,)
    abtb_ways: tuple = (0,)
    abtb_policy: tuple = ("lru",)
    bloom_bits: tuple = (1 << 17,)
    bloom_hashes: tuple = (4,)
    use_bloom: bool = True
    btb_entries: tuple = (2048,)
    btb_ways: tuple = (4,)
    gshare_entries: tuple = (4096,)
    #: Drop structurally invalid axis combinations instead of raising.
    skip_invalid: bool = False

    def __post_init__(self) -> None:
        for axis in ("workloads",) + AXES[1:]:
            values = getattr(self, axis)
            if isinstance(values, (list, tuple)):
                object.__setattr__(self, axis, tuple(values))
            else:
                raise ConfigError(
                    f"sweep axis {axis!r} must be a list of values, got "
                    f"{type(values).__name__}"
                )
            if not getattr(self, axis):
                raise ConfigError(f"sweep axis {axis!r} is empty")
            if len(set(getattr(self, axis))) != len(getattr(self, axis)):
                raise ConfigError(f"sweep axis {axis!r} has duplicate values")
        for workload in self.workloads:
            if workload not in ALL_WORKLOADS:
                raise ConfigError(f"unknown workload {workload!r} in sweep spec")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")
        if self.measured < 1:
            raise ConfigError(f"measured must be >= 1, got {self.measured}")
        if not self.name or "/" in self.name:
            raise ConfigError(f"sweep name must be a non-empty slug, got {self.name!r}")

    # ------------------------------------------------------------ plumbing

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Build a spec from parsed JSON; unknown keys are errors."""
        if not isinstance(data, dict):
            raise ConfigError(f"sweep spec must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown sweep spec field(s): {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Parse a spec from a JSON file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise ConfigError(f"cannot read sweep spec {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(f"sweep spec {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """JSON-safe dict; round-trips through :meth:`from_dict`."""
        out = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    def scale(self) -> Scale:
        """The campaign scale driving every point's windows."""
        return Scale(
            f"sweep-{self.name}",
            {w: (self.warmup, self.measured) for w in self.workloads},
        )

    def axis_values(self) -> dict:
        """Axis name → tuple of declared values (workload included)."""
        values = {"workload": self.workloads}
        for axis in AXES[1:]:
            values[axis] = getattr(self, axis)
        return values

    def size(self) -> int:
        """Grid cardinality before invalid-combination filtering."""
        n = 1
        for values in self.axis_values().values():
            n *= len(values)
        return n

    # ----------------------------------------------------------- expansion

    def expand(self) -> list:
        """The full cross product as :class:`SweepPoint` rows.

        Deterministic order: axes iterate in declaration order, workload
        outermost.  Raises :class:`ConfigError` on a structurally
        invalid combination unless ``skip_invalid`` is set, in which
        case the combination is silently dropped (the engine reports the
        dropped count).
        """
        points = []
        seen = set()
        for workload in self.workloads:
            for entries in self.abtb_entries:
                for ways in self.abtb_ways:
                    for abtb_policy in self.abtb_policy:
                        for bits in self.bloom_bits:
                            for hashes in self.bloom_hashes:
                                for btb_e in self.btb_entries:
                                    for btb_w in self.btb_ways:
                                        for gshare in self.gshare_entries:
                                            point = self._point(
                                                workload, entries, ways,
                                                abtb_policy, bits, hashes,
                                                btb_e, btb_w, gshare,
                                            )
                                            if point is None:
                                                continue
                                            points.append(point)
                                            seen.add(point.key)
        if len(seen) != len(points):
            raise ConfigError("sweep expansion produced duplicate point keys")
        return points

    def _point(
        self, workload, entries, ways, abtb_policy, bits, hashes,
        btb_entries, btb_ways, gshare,
    ):
        mechanism = {
            "abtb_entries": int(entries),
            "abtb_ways": int(ways),
            "abtb_policy": str(abtb_policy),
            "bloom_bits": int(bits),
            "bloom_hashes": int(hashes),
            "use_bloom": bool(self.use_bloom),
        }
        cpu = {
            "btb_entries": int(btb_entries),
            "btb_ways": int(btb_ways),
            "gshare_entries": int(gshare),
        }
        try:
            MechanismConfig(**mechanism)
            CPUConfig.from_dict(cpu)
        except (ConfigError, ValueError) as exc:
            if self.skip_invalid:
                return None
            raise ConfigError(
                f"invalid sweep point ({workload}, abtb={entries}/"
                f"{ways or 'full'}/{abtb_policy}, bloom={bits}x{hashes}, "
                f"btb={btb_entries}x{btb_ways}, gshare={gshare}): {exc}"
            ) from exc
        key = point_key(
            workload, entries, ways, abtb_policy, bits, hashes,
            btb_entries, btb_ways, gshare,
        )
        axes = {
            "workload": workload,
            "abtb_entries": int(entries),
            "abtb_ways": int(ways),
            "abtb_policy": str(abtb_policy),
            "bloom_bits": int(bits),
            "bloom_hashes": int(hashes),
            "btb_entries": int(btb_entries),
            "btb_ways": int(btb_ways),
            "gshare_entries": int(gshare),
        }
        return SweepPoint(
            key=key,
            workload=workload,
            axes=axes,
            mechanism=mechanism,
            cpu=cpu,
            cost_bytes=mechanism_storage_bytes(
                int(entries), bloom_bits=int(bits), use_bloom=self.use_bloom
            ),
        )


def point_key(
    workload, entries, ways, abtb_policy, bits, hashes,
    btb_entries, btb_ways, gshare,
) -> str:
    """Stable, human-readable checkpoint key for one grid point."""
    assoc = str(ways) if ways else "full"
    return (
        f"{workload}::abtb={entries}/{assoc}/{abtb_policy}"
        f"::bloom={bits}x{hashes}"
        f"::btb={btb_entries}x{btb_ways}::gshare={gshare}"
    )
