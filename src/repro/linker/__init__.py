"""ELF-like linking substrate: modules, layout, dynamic/static linking,
and the software call-site patching baseline."""

from repro.linker.dynamic import (
    IFUNC_SELECTOR_INSTRUCTIONS,
    RESOLVER_INSTRUCTIONS,
    RESOLVER_LOADS,
    CallBinding,
    DynamicLinker,
    LinkedProgram,
)
from repro.linker.layout import (
    REL32_REACH,
    ClassicLayout,
    CompatLayout,
    LayoutPolicy,
    within_rel32,
)
from repro.linker.module import (
    GOT_RESERVED_SLOTS,
    GOT_SLOT_SIZE,
    PLT_ENTRY_SIZE,
    PLT_PUSH_OFFSET,
    FunctionLayout,
    ModuleImage,
    ModuleSpec,
)
from repro.linker.patcher import CallSitePatcher, PatchRecord, PatchStats
from repro.linker.static import StaticLinker, StaticProgram
from repro.linker.symbols import FunctionSpec, Symbol, SymbolKind, SymbolTable

__all__ = [
    "CallBinding",
    "CallSitePatcher",
    "ClassicLayout",
    "CompatLayout",
    "DynamicLinker",
    "FunctionLayout",
    "FunctionSpec",
    "GOT_RESERVED_SLOTS",
    "GOT_SLOT_SIZE",
    "IFUNC_SELECTOR_INSTRUCTIONS",
    "LayoutPolicy",
    "LinkedProgram",
    "ModuleImage",
    "ModuleSpec",
    "PLT_ENTRY_SIZE",
    "PLT_PUSH_OFFSET",
    "PatchRecord",
    "PatchStats",
    "REL32_REACH",
    "RESOLVER_INSTRUCTIONS",
    "RESOLVER_LOADS",
    "StaticLinker",
    "StaticProgram",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
    "within_rel32",
]
