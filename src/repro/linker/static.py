"""Static-linking baseline.

A statically linked program has no PLT and no GOT: every call site encodes
its target directly.  This is the performance upper bound the paper's
hardware aims to match while keeping dynamic linking's benefits.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import LinkError
from repro.linker.dynamic import CallBinding
from repro.linker.layout import _align_up
from repro.linker.module import ModuleImage, ModuleSpec
from repro.linker.symbols import Symbol, SymbolKind, SymbolTable


class StaticProgram:
    """A statically linked image: one text segment, direct calls only.

    Exposes the same call-binding interface as
    :class:`repro.linker.dynamic.LinkedProgram` so the trace engine can run
    either, but ``via_plt`` is always False and there is no lazy state.
    """

    def __init__(self, modules: dict[str, ModuleImage], symbols: SymbolTable, heap_base: int) -> None:
        self.modules = modules
        self.symbols = symbols
        self.heap_base = heap_base
        self.load_order = list(modules)

    def module(self, name: str) -> ModuleImage:
        """The image of one input module (text only)."""
        try:
            return self.modules[name]
        except KeyError:
            raise LinkError(f"module {name!r} was not linked in") from None

    def bind_call(self, caller: str, symbol: str) -> CallBinding:
        """Bind a call: always a direct call to the definition."""
        definition = self.symbols.lookup(symbol)
        if definition is None:
            raise LinkError(f"undefined symbol {symbol!r}")
        func = self.modules[definition.module].function(symbol)
        entry = definition.address
        if definition.kind is SymbolKind.IFUNC and func.variant_entries:
            # Static linking bakes in the generic implementation: the
            # load-time hardware dispatch of ifuncs is a dynamic-linking
            # benefit that static linking loses.
            entry = func.entry
        return CallBinding(
            symbol=symbol,
            caller=caller,
            via_plt=False,
            plt_addr=0,
            plt_push_addr=0,
            plt0_addr=0,
            got_addr=0,
            func_addr=entry,
            func_size=func.size,
            first_call=False,
        )

    def trampoline_module(self, pc: int) -> str | None:
        """Static programs have no trampolines."""
        return None


class StaticLinker:
    """Combines an executable and libraries into one static image."""

    def link(self, exe: ModuleSpec, libraries: list[ModuleSpec], base: int = 0x400000) -> StaticProgram:
        """Lay all module texts out contiguously and resolve all symbols."""
        modules: dict[str, ModuleImage] = {}
        symbols = SymbolTable()
        cursor = base
        for spec in [exe] + libraries:
            # Strip imports: a static image has no PLT stubs.
            stripped = replace_spec_without_imports(spec)
            image = ModuleImage(stripped, cursor, cursor + stripped.text_size, cursor + stripped.text_size)
            modules[spec.name] = image
            for fn in spec.functions:
                symbols.define(Symbol(fn.name, spec.name, image.function(fn.name).entry, fn.kind))
            cursor = _align_up(image.text_end + 16, 64)
        # Verify closure: every import of every input must now resolve.
        for spec in [exe] + libraries:
            for sym in spec.imports:
                if symbols.lookup(sym) is None:
                    raise LinkError(f"static link failed: undefined symbol {sym!r}")
        heap_base = _align_up(cursor + (1 << 20), 4096)
        return StaticProgram(modules, symbols, heap_base)


def replace_spec_without_imports(spec: ModuleSpec) -> ModuleSpec:
    """A copy of ``spec`` with its import list removed."""
    return ModuleSpec(name=spec.name, functions=list(spec.functions), imports=[], text_align=spec.text_align)
